"""Network-facing telemetry: stream frames, publisher, bounded clients.

This module turns the in-process :class:`~repro.telemetry.bus.TelemetryBus`
into something a network service can expose (the squid cache-channels
idiom: publish cache events out-of-band to whoever is listening):

* :class:`StreamFrame` — one published item: a monotonically increasing
  ``event_id``, a frame ``type`` (``cache_event``, ``fault``, ``score``,
  ``alarm``, ``flip``, ``job``, ``mark``, …) and a JSON-friendly payload.
* :func:`ndjson_line` / :func:`sse_block` — the two wire framings served
  by the HTTP endpoints (``application/x-ndjson`` and
  ``text/event-stream``).
* :class:`StreamPublisher` — a bus subscriber that assigns event ids,
  keeps a bounded replay ring (``Last-Event-ID`` resume), and fans
  frames out to any number of :class:`StreamClient` queues.
* :class:`StreamClient` — one consumer's bounded queue.  A slow or dead
  client overflows *its own* queue (drop-oldest, counted); it can never
  stall the publisher, the scheduler, or the engine hot loop.

Determinism: event ids are assigned in publish order under one lock.
During a simulation run all publishing happens from the single engine
thread, so the id sequence is a pure function of the event stream —
attaching, detaching, or losing clients cannot perturb it (the golden
closed-loop test pins this).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Callable, Deque, Dict, List, NamedTuple, Optional

from repro.common.errors import ConfigurationError
from repro.telemetry.bus import Subscriber
from repro.telemetry.events import CacheEvent, EventKind


class StreamFrame(NamedTuple):
    """One item on a telemetry stream."""

    event_id: int
    type: str
    payload: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON view (``id`` and ``type`` first, payload merged)."""
        body: Dict[str, object] = {"id": self.event_id, "type": self.type}
        body.update(self.payload)
        return body


def ndjson_line(frame: StreamFrame) -> bytes:
    """The frame as one ``application/x-ndjson`` line."""
    return (json.dumps(frame.to_dict(), sort_keys=True) + "\n").encode("utf-8")


def sse_block(frame: StreamFrame) -> bytes:
    """The frame as one ``text/event-stream`` block.

    ``id:`` carries the resume cursor (the client echoes it back as
    ``Last-Event-ID``), ``event:`` the frame type, ``data:`` the payload
    as a single JSON line.
    """
    data = json.dumps(frame.to_dict(), sort_keys=True)
    return (
        f"id: {frame.event_id}\nevent: {frame.type}\ndata: {data}\n\n"
    ).encode("utf-8")


class StreamClient:
    """One consumer's bounded frame queue (drop-oldest on overflow)."""

    def __init__(
        self,
        capacity: int,
        accepts: Optional[Callable[[StreamFrame], bool]] = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"client capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.accepts = accepts
        self.dropped = 0
        self.closed = False
        self._queue: Deque[StreamFrame] = deque()
        self._cond = threading.Condition()

    def _offer(self, frame: StreamFrame) -> int:
        """Enqueue ``frame`` (publisher side); returns frames dropped."""
        if self.accepts is not None and not self.accepts(frame):
            return 0
        dropped = 0
        with self._cond:
            if self.closed:
                return 0
            if len(self._queue) >= self.capacity:
                self._queue.popleft()
                self.dropped += 1
                dropped = 1
            self._queue.append(frame)
            self._cond.notify()
        return dropped

    def get(self, timeout: Optional[float] = None) -> Optional[StreamFrame]:
        """Next frame, or ``None`` on timeout / after :meth:`close`."""
        with self._cond:
            if not self._queue:
                self._cond.wait(timeout)
            if not self._queue:
                return None
            return self._queue.popleft()

    def close(self) -> None:
        """Stop accepting frames and wake any blocked :meth:`get`."""
        with self._cond:
            self.closed = True
            self._queue.clear()
            self._cond.notify_all()


class StreamPublisher(Subscriber):
    """Serialises telemetry into an id-stamped frame stream with resume.

    Subscribe it to a :class:`~repro.telemetry.bus.TelemetryBus` to
    publish ``cache_event``/``fault`` frames, and/or call
    :meth:`publish` directly for application frames (detector scores,
    alarms, defense flips, job transitions).  Frames land in a bounded
    replay ring — :meth:`attach` with ``last_event_id`` replays what the
    ring still holds past that cursor, which is how an SSE client
    resumes after a reconnect — and are offered to every attached
    :class:`StreamClient`.
    """

    def __init__(
        self,
        ring_capacity: int = 4096,
        client_capacity: int = 1024,
        profiler: Optional[object] = None,
        mirror: Optional["StreamPublisher"] = None,
    ) -> None:
        if ring_capacity <= 0:
            raise ConfigurationError(
                f"ring_capacity must be positive, got {ring_capacity}"
            )
        self.ring_capacity = ring_capacity
        self.client_capacity = client_capacity
        self.profiler = profiler
        #: Optional upstream publisher every frame is forwarded to (the
        #: service hub).  The mirror assigns its *own* event ids, so a
        #: run-local id sequence stays a pure function of the run.
        self.mirror = mirror
        self.dropped_total = 0
        self.last_event_id = 0
        self._ring: Deque[StreamFrame] = deque(maxlen=ring_capacity)
        self._clients: List[StreamClient] = []
        self._lock = threading.Lock()

    # -- Subscriber surface -------------------------------------------
    def on_event(self, event: CacheEvent) -> None:
        kind = "fault" if event.kind == EventKind.FAULT else "cache_event"
        self.publish(kind, event.to_dict())

    def on_mark(self, label: str) -> None:
        self.publish("mark", {"label": label})

    def finish(self) -> None:
        """End of the producing run: a ``finish`` frame closes the story.

        Clients stay attached — a service-wide stream outlives any one
        run; per-run consumers treat the frame as end-of-stream.
        """
        self.publish("finish", {})

    # -- publishing ----------------------------------------------------
    def publish(self, type: str, payload: Dict[str, object]) -> StreamFrame:
        """Assign the next event id and fan the frame out; returns it."""
        with self._lock:
            self.last_event_id += 1
            frame = StreamFrame(self.last_event_id, type, dict(payload))
            self._ring.append(frame)
            clients = list(self._clients)
        dropped = 0
        for client in clients:
            dropped += client._offer(frame)
        if dropped:
            with self._lock:
                self.dropped_total += dropped
            record = getattr(self.profiler, "record_dropped", None)
            if record is not None:
                record(dropped)
        if self.mirror is not None:
            self.mirror.publish(type, payload)
        return frame

    # -- client management --------------------------------------------
    def attach(
        self,
        last_event_id: Optional[int] = None,
        capacity: Optional[int] = None,
        accepts: Optional[Callable[[StreamFrame], bool]] = None,
    ) -> StreamClient:
        """Register a client; replay ring frames past ``last_event_id``.

        When the ring has already evicted frames the client asked for,
        the replay starts at the oldest retained frame — the gap is
        visible to the consumer as non-contiguous ids.
        """
        client = StreamClient(
            capacity=capacity or self.client_capacity, accepts=accepts
        )
        with self._lock:
            if last_event_id is not None:
                for frame in self._ring:
                    if frame.event_id > last_event_id:
                        client._offer(frame)
            self._clients.append(client)
        return client

    def detach(self, client: StreamClient) -> None:
        """Unregister ``client`` (idempotent) and close its queue."""
        with self._lock:
            try:
                self._clients.remove(client)
            except ValueError:
                pass
        client.close()

    # -- introspection -------------------------------------------------
    @property
    def client_count(self) -> int:
        """Currently attached clients."""
        with self._lock:
            return len(self._clients)

    def snapshot(self) -> Dict[str, object]:
        """Gauge/counter view for ``/healthz`` and ``/metrics``."""
        with self._lock:
            return {
                "clients": len(self._clients),
                "last_event_id": self.last_event_id,
                "dropped_total": self.dropped_total,
                "ring_size": len(self._ring),
            }


# -- ambient publisher binding ----------------------------------------
#
# The service binds its hub publisher around job execution; deep layers
# (the closed-loop scenario engine) mirror their run-local frames into
# whatever is bound, without the scenario layer importing the service.
_ambient = threading.local()


def bind_publisher(
    publisher: Optional[StreamPublisher],
) -> Optional[StreamPublisher]:
    """Bind ``publisher`` as this thread's ambient stream target.

    Returns the previous binding so callers can restore it (bind ``None``
    to clear).  Thread-local: worker threads each bind their own job's
    publisher.
    """
    previous = getattr(_ambient, "publisher", None)
    _ambient.publisher = publisher
    return previous


def active_publisher() -> Optional[StreamPublisher]:
    """The ambient publisher bound to this thread, if any."""
    return getattr(_ambient, "publisher", None)


def publish_ambient(type: str, payload: Dict[str, object]) -> None:
    """Publish one frame to the ambient publisher; no-op when unbound.

    The hook deep measurement loops use for coarse progress frames
    (one per sweep point / suspect) without importing the service layer.
    """
    publisher = active_publisher()
    if publisher is not None:
        publisher.publish(type, dict(payload))


__all__ = [
    "StreamClient",
    "StreamFrame",
    "StreamPublisher",
    "active_publisher",
    "bind_publisher",
    "ndjson_line",
    "publish_ambient",
    "sse_block",
]
