"""Streaming cache-event telemetry: bus, subscribers, online detectors.

The observability subsystem for the reproduction.  A zero-cost-when-
disabled event bus (:mod:`repro.telemetry.bus`) receives structured
cache events (:mod:`repro.telemetry.events`) from the shared hierarchy
walk, fans them out to composable subscribers
(:mod:`repro.telemetry.subscribers`), and feeds the online
covert-channel detectors (:mod:`repro.telemetry.detectors`) that the
``online_detection`` experiment uses to test the paper's Section 7
stealth claim dynamically.  Process-global session plumbing lives in
:mod:`repro.telemetry.session`.

Import discipline: this package never imports from :mod:`repro.cache`
(the hierarchy imports the session hook from here, and the cache
package initialises first).
"""

from repro.telemetry.bus import (
    OVERFLOW_POLICIES,
    BufferedSubscriber,
    Subscriber,
    TelemetryBus,
)
from repro.telemetry.net import (
    StreamClient,
    StreamFrame,
    StreamPublisher,
    active_publisher,
    bind_publisher,
    ndjson_line,
    publish_ambient,
    sse_block,
)
from repro.telemetry.detectors import (
    Baseline,
    MissRateMonitor,
    WritebackBurstDetector,
    autocorrelation,
    detection_rate,
    suggest_threshold,
    threshold_sweep,
)
from repro.telemetry.events import AGGREGATE_OWNER, CacheEvent, EventKind
from repro.telemetry.session import (
    TelemetryConfig,
    TelemetrySession,
    active_session,
    configure,
    default_config,
    session_bus,
    telemetry_session,
)
from repro.telemetry.subscribers import (
    BusProfiler,
    TraceRecorder,
    WindowCounts,
    WindowedCounters,
)

__all__ = [
    "AGGREGATE_OWNER",
    "Baseline",
    "BufferedSubscriber",
    "BusProfiler",
    "CacheEvent",
    "EventKind",
    "MissRateMonitor",
    "OVERFLOW_POLICIES",
    "StreamClient",
    "StreamFrame",
    "StreamPublisher",
    "Subscriber",
    "TelemetryBus",
    "TelemetryConfig",
    "TelemetrySession",
    "TraceRecorder",
    "WindowCounts",
    "WindowedCounters",
    "WritebackBurstDetector",
    "active_publisher",
    "active_session",
    "autocorrelation",
    "bind_publisher",
    "configure",
    "default_config",
    "detection_rate",
    "ndjson_line",
    "publish_ambient",
    "session_bus",
    "sse_block",
    "suggest_threshold",
    "telemetry_session",
    "threshold_sweep",
]
