"""Built-in bus subscribers: windowed counters, trace recorder, profiler.

These are the composable consumers the tentpole asks for; the online
detectors in :mod:`repro.telemetry.detectors` build on the same windowing
discipline but keep their own (much smaller) state.
"""

from __future__ import annotations

import json
import time as _time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.telemetry.bus import Subscriber
from repro.telemetry.events import AGGREGATE_OWNER, CacheEvent, EventKind

_HIT = EventKind.HIT
_MISS = EventKind.MISS
_EVICT = EventKind.EVICT
_WRITEBACK = EventKind.WRITEBACK
_FLUSH = EventKind.FLUSH
_FAULT = EventKind.FAULT


@dataclass
class WindowCounts:
    """Event tallies for one (window, level, owner) cell."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    writebacks: int = 0
    flushes: int = 0
    #: Injected-fault markers (:data:`~repro.telemetry.events.EventKind.FAULT`)
    #: from :mod:`repro.faults`; zero on fault-free runs.
    faults: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses / accesses; 0.0 for an untouched cell."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def merge(self, other: "WindowCounts") -> None:
        """Accumulate ``other`` into this cell."""
        self.accesses += other.accesses
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.evictions += other.evictions
        self.writebacks += other.writebacks
        self.flushes += other.flushes
        self.faults += other.faults


#: One completed window: ``(level, owner) -> WindowCounts``.
Window = Dict[Tuple[int, int], WindowCounts]


class WindowedCounters(Subscriber):
    """Per-level, per-owner counters sliced into fixed logical windows.

    A window spans ``window`` consecutive logical-clock ticks (demand
    accesses).  Windows are contiguous: clock ranges in which no event
    arrived still produce (empty) windows, so ``series()`` values are
    evenly spaced in logical time — which is what the online detectors
    and any plotting need.

    A bus ``mark`` (stats reset) restarts the windowing: the open window
    is discarded and the next event begins window 0 of a new epoch,
    mirroring :meth:`repro.cache.stats.CacheStats.reset`.
    """

    def __init__(self, window: int = 256) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.windows: List[Window] = []
        self._origin: Optional[int] = None
        self._current_id = 0
        self._current: Window = {}

    # ------------------------------------------------------------------
    # Subscriber surface
    # ------------------------------------------------------------------
    def on_event(self, event: CacheEvent) -> None:
        if self._origin is None:
            self._origin = event.time
        window_id = (event.time - self._origin) // self.window
        if window_id != self._current_id:
            self._flush_through(window_id)
        kind = event.kind
        owners = (
            (AGGREGATE_OWNER,)
            if event.owner is None
            else (event.owner, AGGREGATE_OWNER)
        )
        for owner in owners:
            key = (event.level, owner)
            cell = self._current.get(key)
            if cell is None:
                cell = self._current[key] = WindowCounts()
            if kind == _HIT:
                cell.accesses += 1
                cell.hits += 1
                if event.write:
                    cell.stores += 1
            elif kind == _MISS:
                cell.accesses += 1
                cell.misses += 1
                if event.write:
                    cell.stores += 1
            elif kind == _WRITEBACK:
                cell.writebacks += 1
                cell.evictions += 1
            elif kind == _EVICT:
                cell.evictions += 1
            elif kind == _FLUSH:
                cell.flushes += 1
            elif kind == _FAULT:
                cell.faults += 1

    def on_mark(self, label: str) -> None:
        """Restart windowing at a measurement epoch (stats reset)."""
        del label
        self.windows.clear()
        self._origin = None
        self._current_id = 0
        self._current = {}

    def finish(self) -> None:
        """Flush the trailing (possibly partial) window."""
        if self._current:
            self.windows.append(self._current)
            self._current = {}
            self._current_id += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _flush_through(self, window_id: int) -> None:
        self.windows.append(self._current)
        # Gap-fill: clock ranges with no events still yield windows.
        for _ in range(self._current_id + 1, window_id):
            self.windows.append({})
        self._current = {}
        self._current_id = window_id

    def series(
        self, field: str, level: int, owner: Optional[int] = None
    ) -> List[int]:
        """Per-window values of ``field`` for ``(level, owner)``.

        ``owner=None`` selects the all-threads aggregate.
        """
        key = (level, AGGREGATE_OWNER if owner is None else owner)
        empty = WindowCounts()
        return [
            getattr(window.get(key, empty), field) for window in self.windows
        ]

    def totals(self, level: int, owner: Optional[int] = None) -> WindowCounts:
        """Sum of all completed windows for ``(level, owner)``."""
        key = (level, AGGREGATE_OWNER if owner is None else owner)
        total = WindowCounts()
        for window in self.windows:
            cell = window.get(key)
            if cell is not None:
                total.merge(cell)
        return total

    def miss_profile(
        self,
        level_names: Sequence[str] = ("L1D", "L2", "LLC"),
        owner: Optional[int] = None,
    ) -> Dict[str, float]:
        """Whole-run per-level miss rates, keyed like Table 6/7 profiles.

        This is the bridge the rebased
        :func:`repro.analysis.detection.compare_miss_profiles` consumes.
        """
        return {
            name: self.totals(index + 1, owner).miss_rate
            for index, name in enumerate(level_names)
        }

    def summary(self) -> Dict[str, object]:
        """Aggregate view for run manifests."""
        levels: Dict[str, Dict[str, int]] = {}
        seen = sorted({level for window in self.windows for level, _ in window})
        for level in seen:
            total = self.totals(level)
            levels[f"L{level}"] = {
                "accesses": total.accesses,
                "misses": total.misses,
                "stores": total.stores,
                "evictions": total.evictions,
                "writebacks": total.writebacks,
                "flushes": total.flushes,
                "faults": total.faults,
            }
        return {
            "window": self.window,
            "windows": len(self.windows),
            "levels": levels,
        }


class TraceRecorder(Subscriber):
    """Ring buffer of the most recent events, exportable as JSONL.

    ``capacity=None`` keeps everything (unit tests, short runs); the
    default bounds memory so a recorder can ride along any experiment.
    """

    def __init__(self, capacity: Optional[int] = 65536) -> None:
        self._buffer: Deque[CacheEvent] = deque(maxlen=capacity)
        self.capacity = capacity
        self.total_events = 0

    def on_event(self, event: CacheEvent) -> None:
        self._buffer.append(event)
        self.total_events += 1

    @property
    def events(self) -> List[CacheEvent]:
        """Retained events, oldest first."""
        return list(self._buffer)

    @property
    def dropped(self) -> int:
        """Events that fell out of the ring buffer."""
        return self.total_events - len(self._buffer)

    def clear(self) -> None:
        """Drop all retained events (the totals keep counting)."""
        self._buffer.clear()

    def to_jsonl(self, path: str) -> int:
        """Write retained events to ``path`` as JSON lines; returns count."""
        with open(path, "w") as handle:
            for event in self._buffer:
                handle.write(json.dumps(event.to_dict()))
                handle.write("\n")
        return len(self._buffer)


class BusProfiler(Subscriber):
    """Lightweight throughput profile: events/sec, wall time per phase."""

    def __init__(self) -> None:
        self.total_events = 0
        #: Events lost to bounded buffering anywhere on this bus —
        #: :class:`~repro.telemetry.bus.BufferedSubscriber` wrappers and
        #: stream publishers report their overflow here so one counter
        #: in the run summary answers "did observability lose data?".
        self.dropped_events = 0
        self._first: Optional[float] = None
        self._last: Optional[float] = None
        self.phases: Dict[str, Dict[str, float]] = {}
        self._active_phase: Optional[str] = None

    def record_dropped(self, count: int = 1) -> None:
        """Account ``count`` events lost to a bounded buffer."""
        self.dropped_events += count

    def on_event(self, event: CacheEvent) -> None:
        del event
        now = _time.perf_counter()
        if self._first is None:
            self._first = now
        self._last = now
        self.total_events += 1
        phase = self._active_phase
        if phase is not None:
            self.phases[phase]["events"] += 1

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute wall time and events to a named phase."""
        entry = self.phases.setdefault(name, {"events": 0, "seconds": 0.0})
        previous = self._active_phase
        self._active_phase = name
        start = _time.perf_counter()
        try:
            yield
        finally:
            entry["seconds"] += _time.perf_counter() - start
            self._active_phase = previous

    @property
    def wall_seconds(self) -> float:
        """Wall time between the first and last observed event."""
        if self._first is None or self._last is None:
            return 0.0
        return self._last - self._first

    @property
    def events_per_second(self) -> float:
        """Observed event throughput (0.0 before two events arrived)."""
        wall = self.wall_seconds
        if wall <= 0.0:
            return 0.0
        return self.total_events / wall

    def summary(self) -> Dict[str, object]:
        """JSON-friendly profile for run manifests."""
        return {
            "events": self.total_events,
            "dropped_events": self.dropped_events,
            "wall_seconds": round(self.wall_seconds, 6),
            "events_per_second": round(self.events_per_second),
            "phases": {
                name: {
                    "events": int(entry["events"]),
                    "seconds": round(entry["seconds"], 6),
                }
                for name, entry in self.phases.items()
            },
        }
