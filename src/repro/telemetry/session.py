"""Process-global telemetry session, mirroring engine selection.

The cache hierarchy cannot be handed a bus explicitly everywhere it is
constructed (testbenches, experiment factories, worker processes build
hierarchies deep inside library code), so — exactly like the engine
switch in :mod:`repro.engine.selection` — the active telemetry session
is process-global state consulted by
:class:`~repro.cache.hierarchy.CacheHierarchy` at construction time.

Experiments opt in through :class:`~repro.experiments.profiles.RunProfile
.telemetry` (CLI: ``--telemetry`` / ``--trace-out``); the experiment
registry opens a session around each run, attaches the standard
subscribers (windowed counters, trace recorder, profiler), and folds the
session summary into the experiment result's params — which the run
manifests persist.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Dict, Iterator, Optional

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.subscribers import (
    BusProfiler,
    TraceRecorder,
    WindowedCounters,
)


@dataclasses.dataclass(frozen=True)
class TelemetryConfig:
    """Knobs for the standard session subscribers."""

    #: Logical accesses per counter window.
    window: int = 256
    #: Ring-buffer size of the trace recorder (None = unbounded).
    trace_capacity: Optional[int] = 65536
    #: Directory for JSONL trace export (None = no export).
    trace_out: Optional[str] = None


class TelemetrySession:
    """One bus plus the standard subscriber set, with a summary."""

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig()
        self.bus = TelemetryBus()
        self.counters = WindowedCounters(window=self.config.window)
        self.recorder = TraceRecorder(capacity=self.config.trace_capacity)
        self.profiler = BusProfiler()
        for subscriber in (self.counters, self.recorder, self.profiler):
            self.bus.subscribe(subscriber)

    def finish(self) -> None:
        """Flush subscribers (idempotent for the standard set)."""
        self.bus.close()

    def export_trace(self, path: str) -> int:
        """Write the retained event ring to ``path`` (JSONL); returns count."""
        return self.recorder.to_jsonl(path)

    def summary(self) -> Dict[str, object]:
        """Manifest-ready digest of what the session observed."""
        return {
            "events": self.recorder.total_events,
            "dropped_trace_events": self.recorder.dropped,
            "counters": self.counters.summary(),
            "profile": self.profiler.summary(),
        }


_active: Optional[TelemetrySession] = None

_default_config = TelemetryConfig()


def configure(config: TelemetryConfig) -> TelemetryConfig:
    """Set the process-default session config; returns the previous one.

    The CLI uses this to carry ``--trace-out`` to the session the
    registry opens around each experiment run.
    """
    global _default_config
    previous = _default_config
    _default_config = config
    return previous


def default_config() -> TelemetryConfig:
    """The config sessions use when none is passed explicitly."""
    return _default_config


def active_session() -> Optional[TelemetrySession]:
    """The session currently in effect, if any."""
    return _active


def session_bus() -> Optional[TelemetryBus]:
    """Bus newly constructed hierarchies should attach to (or ``None``).

    This is the hook :class:`~repro.cache.hierarchy.CacheHierarchy`
    consults; with no active session it returns ``None`` and the
    hierarchy carries no bus at all — the zero-cost default.
    """
    if _active is None:
        return None
    return _active.bus


@contextlib.contextmanager
def telemetry_session(
    enabled: bool = True, config: Optional[TelemetryConfig] = None
) -> Iterator[Optional[TelemetrySession]]:
    """Activate a telemetry session for the dynamic extent of the block.

    ``enabled=False`` yields ``None`` and changes nothing, so callers
    can wrap unconditionally::

        with telemetry_session(enabled=profile.telemetry) as session:
            result = runner(profile, seed)
        if session is not None:
            result.params["telemetry"] = session.summary()

    Sessions do not nest: the inner ``with`` keeps the outer session
    active (hierarchies keep attaching to the outer bus) so a library
    call cannot silently steal an experiment's observability.
    """
    global _active
    if not enabled or _active is not None:
        yield None
        return
    session = TelemetrySession(config=config or _default_config)
    _active = session
    try:
        yield session
    finally:
        _active = None
        session.finish()
