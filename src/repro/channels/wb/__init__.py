"""The WB (write-back) covert channel — the paper's core contribution.

* :mod:`~repro.channels.wb.sender` — Algorithm 1: encode a symbol by
  dirtying ``d`` lines of the target set.
* :mod:`~repro.channels.wb.receiver` — Algorithm 2: decode by timing a
  pointer-chased replacement-set traversal, alternating two replacement
  sets so each decode also re-initialises the target set.
* :mod:`~repro.channels.wb.calibration` — offline latency probing used for
  Figure 4 and for threshold calibration.
* :mod:`~repro.channels.wb.protocol` — Algorithm 3: the paced covert
  channel protocol, returning a :class:`ChannelRunResult`.
* :mod:`~repro.channels.wb.framing` — self-identifying frames (sync word,
  sequence number, CRC over FEC) with a resynchronising scanner.
* :mod:`~repro.channels.wb.robust` — the self-healing stack: framing +
  online threshold recalibration + ACK/retransmission, built for the
  :mod:`repro.faults` regime.
* :mod:`~repro.channels.wb.cross_core` — the channel across cores of a
  :class:`~repro.coherence.CoherentHierarchy`, signalling through MESI
  downgrade write-backs instead of replacement evictions.
"""

from repro.channels.wb.sender import WBSenderProgram
from repro.channels.wb.receiver import WBReceiverProgram
from repro.channels.wb.calibration import (
    calibrate_decoder,
    measure_latency_distributions,
)
from repro.channels.wb.framing import (
    DEFAULT_SYNC,
    FrameConfig,
    FrameScanResult,
    encode_frame,
    encode_payload,
    scan_frames,
)
from repro.channels.wb.cross_core import (
    CrossCoreTransmission,
    CrossCoreWBChannelConfig,
    calibrate_cross_core,
    run_cross_core_wb_channel,
    transmit_cross_core_schedule,
)
from repro.channels.wb.l2 import (
    L2ChannelRunResult,
    L2WBChannelConfig,
    make_l2_channel_hierarchy,
    run_l2_wb_channel,
)
from repro.channels.wb.protocol import (
    ChannelRunResult,
    TransmissionTrace,
    WBChannelConfig,
    quick_channel_run,
    resolve_channel_decoder,
    run_wb_channel,
    transmit_symbol_schedule,
)
from repro.channels.wb.robust import (
    RobustProtocolConfig,
    RobustRunResult,
    run_robust_wb_channel,
)

__all__ = [
    "ChannelRunResult",
    "CrossCoreTransmission",
    "CrossCoreWBChannelConfig",
    "DEFAULT_SYNC",
    "FrameConfig",
    "FrameScanResult",
    "L2ChannelRunResult",
    "L2WBChannelConfig",
    "RobustProtocolConfig",
    "RobustRunResult",
    "TransmissionTrace",
    "WBChannelConfig",
    "WBReceiverProgram",
    "WBSenderProgram",
    "calibrate_cross_core",
    "calibrate_decoder",
    "encode_frame",
    "encode_payload",
    "make_l2_channel_hierarchy",
    "measure_latency_distributions",
    "quick_channel_run",
    "resolve_channel_decoder",
    "run_l2_wb_channel",
    "run_wb_channel",
    "run_cross_core_wb_channel",
    "run_robust_wb_channel",
    "scan_frames",
    "transmit_cross_core_schedule",
    "transmit_symbol_schedule",
]
