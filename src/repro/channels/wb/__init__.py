"""The WB (write-back) covert channel — the paper's core contribution.

* :mod:`~repro.channels.wb.sender` — Algorithm 1: encode a symbol by
  dirtying ``d`` lines of the target set.
* :mod:`~repro.channels.wb.receiver` — Algorithm 2: decode by timing a
  pointer-chased replacement-set traversal, alternating two replacement
  sets so each decode also re-initialises the target set.
* :mod:`~repro.channels.wb.calibration` — offline latency probing used for
  Figure 4 and for threshold calibration.
* :mod:`~repro.channels.wb.protocol` — Algorithm 3: the paced covert
  channel protocol, returning a :class:`ChannelRunResult`.
"""

from repro.channels.wb.sender import WBSenderProgram
from repro.channels.wb.receiver import WBReceiverProgram
from repro.channels.wb.calibration import (
    calibrate_decoder,
    measure_latency_distributions,
)
from repro.channels.wb.l2 import (
    L2ChannelRunResult,
    L2WBChannelConfig,
    make_l2_channel_hierarchy,
    run_l2_wb_channel,
)
from repro.channels.wb.protocol import (
    ChannelRunResult,
    WBChannelConfig,
    quick_channel_run,
    run_wb_channel,
)

__all__ = [
    "ChannelRunResult",
    "L2ChannelRunResult",
    "L2WBChannelConfig",
    "make_l2_channel_hierarchy",
    "run_l2_wb_channel",
    "WBChannelConfig",
    "WBReceiverProgram",
    "WBSenderProgram",
    "calibrate_decoder",
    "measure_latency_distributions",
    "quick_channel_run",
    "run_wb_channel",
]
