"""The self-healing WB protocol stack: framing + CRC + adaptation + ARQ.

The raw protocol (:func:`repro.channels.wb.protocol.run_wb_channel`)
aligns once on a preamble and decodes a single long bit stream against
frozen thresholds — the cheapest thing that works on a quiet machine,
and exactly what collapses under the :mod:`repro.faults` regime: one
symbol slip shifts everything after it, and a few cycles of threshold
drift flip every encoded 0.

:func:`run_robust_wb_channel` layers the classic fixes on the same
transmission core (:func:`~repro.channels.wb.protocol.transmit_symbol_schedule`):

* the payload travels in small self-identifying frames
  (:mod:`repro.channels.wb.framing`) — slips cost individual frames,
  and the scanner resynchronises on the next sync word;
* each frame carries a CRC over FEC, so corrupt frames are *rejected*,
  never silently delivered;
* the receiver recalibrates its thresholds online with an EWMA
  (:class:`repro.channels.threshold.AdaptiveThresholdDecoder`), tracking
  drift instead of being crossed by it;
* optionally, an ACK/retransmission loop re-sends exactly the frames
  still missing, round after round, until the payload is complete or
  the round budget is spent.  The feedback path is out-of-band and
  assumed reliable (in a real deployment: any low-rate reverse channel
  — the paper's own channel run in the other direction suffices).

Integrity is end-to-end: ``payload_intact`` compares the reassembled
payload bit-for-bit against what the sender meant to say.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.bits import flatten, random_bits
from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.rng import derive_rng, derive_seed, ensure_rng
from repro.channels.threshold import AdaptiveThresholdDecoder
from repro.channels.wb.framing import (
    FrameConfig,
    encode_payload,
    scan_frames,
)
from repro.channels.wb.protocol import (
    WBChannelConfig,
    resolve_channel_decoder,
    transmit_symbol_schedule,
)


@dataclass(frozen=True)
class RobustProtocolConfig:
    """Knobs of the self-healing stack (all layers on by default)."""

    frame: FrameConfig = field(default_factory=FrameConfig)
    #: Transmission rounds: 1 initial + up to ``max_rounds - 1`` ARQ
    #: retransmission rounds (ignored beyond round 1 when ``ack`` is off).
    max_rounds: int = 8
    #: Escalating in-round repetition.  Retransmission rounds send every
    #: still-missing frame ``1 + min(round, max_repeats - 1)`` times: a
    #: short tail round (one 43-bit frame) would otherwise be killed by
    #: any single fault event, since fault *rates* are per-symbol and do
    #: not shrink with the round.  The scanner de-duplicates by sequence
    #: number, so each extra copy is an independent chance at a clean
    #: decode.
    max_repeats: int = 4
    #: Simulated out-of-band ACK feedback driving retransmissions.
    ack: bool = True
    #: Online EWMA threshold recalibration in the receiver.
    adapt: bool = True
    adapt_alpha: float = 0.2
    adapt_max_step_cycles: float = 3.0
    adapt_outlier_cycles: float = 25.0

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )
        if self.max_repeats < 1:
            raise ConfigurationError(
                f"max_repeats must be >= 1, got {self.max_repeats}"
            )


@dataclass(frozen=True)
class RobustRunResult:
    """End-to-end outcome of one framed, self-healing transmission."""

    payload_bits: Tuple[int, ...]
    recovered_bits: Tuple[int, ...]
    #: End-to-end integrity: every frame recovered and the reassembled
    #: payload equals what was sent.
    payload_intact: bool
    frames_total: int
    frames_recovered: int
    rounds_used: int
    #: Frame transmissions beyond the first round.
    retransmissions: int
    crc_failures: int
    resync_bits: int
    duplicate_frames: int
    #: Channel bits spent across every round (goodput denominator).
    channel_bits_sent: int
    #: Raw channel bit rate of the underlying configuration.
    rate_kbps: float
    #: Delivered payload bits per unit time: ``rate × delivered/spent``.
    goodput_kbps: float
    #: Per-level adaptation distance of the receiver's thresholds.
    threshold_drift: Tuple[float, ...]
    #: Per-round injected-fault summaries (empty when faults are off).
    fault_summaries: Tuple[Dict[str, object], ...]

    def __str__(self) -> str:
        state = "intact" if self.payload_intact else "corrupt"
        return (
            f"robust WB channel: {state} payload, "
            f"{self.frames_recovered}/{self.frames_total} frames in "
            f"{self.rounds_used} round(s), goodput {self.goodput_kbps:.0f} Kbps"
        )


def run_robust_wb_channel(
    config: WBChannelConfig,
    robust: Optional[RobustProtocolConfig] = None,
    payload: Optional[Sequence[int]] = None,
) -> RobustRunResult:
    """Deliver ``payload`` over the WB channel with the full stack.

    ``config`` is the same object :func:`run_wb_channel` takes — period,
    codec, seed, fault spec — so raw and hardened runs of the identical
    faulted channel differ only in the protocol above the samples.
    ``payload`` defaults to ``message_bits`` random bits derived from the
    seed (label ``"payload"``, distinct from the raw protocol's
    ``"message"`` stream).
    """
    robust = robust or RobustProtocolConfig()
    if payload is None:
        payload = random_bits(
            config.message_bits, derive_rng(ensure_rng(config.seed), "payload")
        )
    payload = list(payload)
    frames = encode_payload(robust.frame, payload)
    bits_per_symbol = config.codec.bits_per_symbol

    decoder = resolve_channel_decoder(config)
    adaptive: Optional[AdaptiveThresholdDecoder] = None
    if robust.adapt:
        adaptive = AdaptiveThresholdDecoder(
            decoder,
            alpha=robust.adapt_alpha,
            max_step_cycles=robust.adapt_max_step_cycles,
            outlier_cycles=robust.adapt_outlier_cycles,
        )

    missing = set(range(len(frames)))
    recovered: Dict[int, List[int]] = {}
    rounds_used = 0
    frames_sent = 0
    channel_bits_sent = 0
    symbols_sent = 0
    crc_failures = 0
    resync_bits = 0
    duplicate_frames = 0
    fault_summaries: List[Dict[str, object]] = []

    max_rounds = robust.max_rounds if robust.ack else 1
    for round_index in range(max_rounds):
        if not missing:
            break
        sending = sorted(missing)
        # Whole-group repetition ([2, 5, 2, 5], not [2, 2, 5, 5]) so a
        # bursty fault window cannot take out every copy of one frame.
        copies = 1 + min(round_index, robust.max_repeats - 1)
        sending = sending * copies
        bits = flatten(frames[seq] for seq in sending)
        # Multi-bit codecs need whole symbols; pad with zeros (the
        # scanner ignores trailing junk that frames no sync word).
        remainder = len(bits) % bits_per_symbol
        if remainder:
            bits = bits + [0] * (bits_per_symbol - remainder)
        schedule = config.codec.encode_message(bits)
        trace = transmit_symbol_schedule(
            config,
            schedule,
            # Oversample beyond the slack so dropped probe windows do not
            # cut the tail frames off the stream.
            num_samples=(
                len(schedule)
                + config.alignment_slack_symbols
                + len(schedule) // 16
            ),
            fault_round=round_index,
            symbol_origin=symbols_sent,
            bench_seed=(
                config.seed
                if round_index == 0
                else derive_seed(config.seed, f"wb-arq-round{round_index}")
            ),
            # Hardened pacing: both parties spin to the agreed absolute
            # grid, so a descheduling window costs the symbols it covers
            # instead of desynchronising the rest of the round.
            absolute_pacing=True,
        )
        rounds_used += 1
        frames_sent += len(sending)
        channel_bits_sent += len(bits)
        symbols_sent += len(schedule)
        if trace.fault_summary is not None:
            fault_summaries.append(trace.fault_summary)

        if adaptive is not None:
            levels = adaptive.classify_many(trace.latencies())
        else:
            levels = decoder.classify_many(trace.latencies())
        received = config.codec.decode_message(levels)
        scan = scan_frames(robust.frame, received)
        crc_failures += scan.crc_failures
        resync_bits += scan.resync_bits
        duplicate_frames += scan.duplicates
        for seq, chunk in scan.payloads.items():
            if seq in missing:
                recovered[seq] = chunk
                missing.discard(seq)
            else:
                duplicate_frames += 1

    reassembled: List[int] = []
    delivered_bits = 0
    for seq in range(len(frames)):
        width = min(
            robust.frame.payload_bits,
            len(payload) - seq * robust.frame.payload_bits,
        )
        if seq in recovered:
            reassembled.extend(recovered[seq][:width])
            delivered_bits += width
        else:
            reassembled.extend([0] * width)
    if len(reassembled) != len(payload):
        raise ProtocolError(
            f"reassembled {len(reassembled)} bits for a "
            f"{len(payload)}-bit payload"
        )

    payload_intact = not missing and reassembled == payload
    goodput = 0.0
    if channel_bits_sent:
        goodput = config.rate_kbps * delivered_bits / channel_bits_sent
    return RobustRunResult(
        payload_bits=tuple(payload),
        recovered_bits=tuple(reassembled),
        payload_intact=payload_intact,
        frames_total=len(frames),
        frames_recovered=len(recovered),
        rounds_used=rounds_used,
        retransmissions=frames_sent - len(frames),
        crc_failures=crc_failures,
        resync_bits=resync_bits,
        duplicate_frames=duplicate_frames,
        channel_bits_sent=channel_bits_sent,
        rate_kbps=config.rate_kbps,
        goodput_kbps=goodput,
        threshold_drift=tuple(adaptive.drift()) if adaptive else (),
        fault_summaries=tuple(fault_summaries),
    )
