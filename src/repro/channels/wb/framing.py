"""Self-healing frame format for the WB channel.

The raw protocol sends one long bit stream and relies on a single
preamble alignment at the start — one symbol slip mid-message corrupts
everything after it.  This module chops the payload into small,
independently recoverable frames:

``[ sync | FEC( seq | payload | CRC-8(seq+payload) ) ]``

* **sync** — an 8-bit word with low autocorrelation (Barker-7 padded),
  matched with a Hamming-distance tolerance so a bit flip inside the
  sync itself does not lose the frame;
* **seq** — the frame's sequence number, so frames identify themselves
  and retransmissions/duplications deduplicate;
* **CRC-8** — rejects frames corrupted beyond the FEC's radius;
* **FEC** — any :class:`repro.channels.coding.BlockCode` over the body
  (Hamming(7,4) by default, correcting one flip per 7-bit block).

:func:`scan_frames` is the receiver half: it slides over the decoded
bit stream, accepts CRC-valid frames wherever they are found, and on
any failure advances one bit and rescans — so a slip, drop or burst
costs the frames it touched, not the rest of the message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.common.bits import bits_to_int, hamming_distance, int_to_bits
from repro.common.errors import ConfigurationError, ProtocolError
from repro.channels.coding import BlockCode, HammingCode, crc_bits

#: Barker-7 (+++--+-) zero-padded to a byte: the standard low-sidelobe
#: sync choice, so a shifted copy of the word rarely mimics the word.
DEFAULT_SYNC: Tuple[int, ...] = (1, 1, 1, 0, 0, 1, 0, 0)


@dataclass(frozen=True)
class FrameConfig:
    """Geometry of one frame."""

    payload_bits: int = 8
    seq_bits: int = 4
    crc_width: int = 8
    sync: Tuple[int, ...] = DEFAULT_SYNC
    #: Accept a sync match up to this Hamming distance from the word.
    sync_tolerance: int = 1
    #: FEC over the frame body (seq + payload + CRC).
    code: BlockCode = field(default_factory=HammingCode)

    def __post_init__(self) -> None:
        if self.payload_bits <= 0 or self.seq_bits <= 0 or self.crc_width <= 0:
            raise ConfigurationError(
                "payload_bits, seq_bits and crc_width must be positive"
            )
        if not self.sync:
            raise ConfigurationError("sync word must be non-empty")
        if not 0 <= self.sync_tolerance < len(self.sync):
            raise ConfigurationError(
                f"sync_tolerance must be in [0, {len(self.sync)}), "
                f"got {self.sync_tolerance}"
            )
        if self.body_data_bits % self.code.data_bits:
            raise ConfigurationError(
                f"frame body of {self.body_data_bits} bits is not a whole "
                f"number of {self.code.data_bits}-bit FEC blocks"
            )

    @property
    def body_data_bits(self) -> int:
        """Pre-FEC body width: sequence number, payload, CRC."""
        return self.seq_bits + self.payload_bits + self.crc_width

    @property
    def body_code_bits(self) -> int:
        """Post-FEC body width on the channel."""
        return (
            self.body_data_bits // self.code.data_bits
        ) * self.code.code_bits

    @property
    def frame_bits(self) -> int:
        """Total channel bits per frame, sync included."""
        return len(self.sync) + self.body_code_bits

    @property
    def max_frames(self) -> int:
        """Distinct sequence numbers (payload capacity in frames)."""
        return 1 << self.seq_bits

    @property
    def max_payload_bits(self) -> int:
        """Largest payload one framed message can carry."""
        return self.max_frames * self.payload_bits

    def overhead(self) -> float:
        """Channel bits per payload bit (goodput denominator)."""
        return self.frame_bits / self.payload_bits


def encode_frame(config: FrameConfig, seq: int, payload: Sequence[int]) -> List[int]:
    """One frame's channel bits for ``payload`` at sequence ``seq``."""
    if not 0 <= seq < config.max_frames:
        raise ProtocolError(
            f"sequence number {seq} out of range [0, {config.max_frames})"
        )
    if len(payload) != config.payload_bits:
        raise ProtocolError(
            f"frame payload must be {config.payload_bits} bits, "
            f"got {len(payload)}"
        )
    body = int_to_bits(seq, config.seq_bits) + list(payload)
    body = body + crc_bits(body, width=config.crc_width)
    return list(config.sync) + config.code.encode(body)


def encode_payload(
    config: FrameConfig, payload: Sequence[int]
) -> List[List[int]]:
    """Split ``payload`` into frames (the last one zero-padded).

    Returns one bit list per frame so callers (the ARQ loop) can
    retransmit individual frames.
    """
    if not payload:
        raise ProtocolError("cannot frame an empty payload")
    if len(payload) > config.max_payload_bits:
        raise ProtocolError(
            f"payload of {len(payload)} bits exceeds the "
            f"{config.seq_bits}-bit sequence space "
            f"({config.max_payload_bits} bits max)"
        )
    frames: List[List[int]] = []
    for seq, start in enumerate(range(0, len(payload), config.payload_bits)):
        chunk = list(payload[start : start + config.payload_bits])
        chunk += [0] * (config.payload_bits - len(chunk))
        frames.append(encode_frame(config, seq, chunk))
    return frames


@dataclass
class FrameScanResult:
    """What one pass of :func:`scan_frames` recovered."""

    #: CRC-valid frame payloads keyed by sequence number (first copy wins).
    payloads: Dict[int, List[int]]
    #: Sync candidates whose body failed the CRC.
    crc_failures: int
    #: Bit positions skipped hunting for the next sync (resync cost).
    resync_bits: int
    #: CRC-valid frames whose sequence number was already recovered.
    duplicates: int
    #: Bits of input consumed.
    scanned_bits: int

    @property
    def recovered(self) -> int:
        """Distinct frames recovered."""
        return len(self.payloads)


def scan_frames(config: FrameConfig, bits: Sequence[int]) -> FrameScanResult:
    """Recover every CRC-valid frame from a (possibly mangled) bit stream.

    The scanner is greedy: at each position it tests for a sync word
    (within ``sync_tolerance``); on a CRC-valid body it consumes the
    whole frame, otherwise it advances a single bit.  Slips and drops
    therefore desynchronise the scanner only until the next intact sync
    word — frames are lost one at a time, never "everything after the
    fault".
    """
    stream = list(bits)
    sync = list(config.sync)
    sync_len = len(sync)
    payloads: Dict[int, List[int]] = {}
    crc_failures = 0
    resync_bits = 0
    duplicates = 0
    position = 0
    while position + config.frame_bits <= len(stream):
        window = stream[position : position + sync_len]
        if hamming_distance(window, sync) > config.sync_tolerance:
            position += 1
            resync_bits += 1
            continue
        body = config.code.decode(
            stream[position + sync_len : position + config.frame_bits]
        )
        seq = bits_to_int(body[: config.seq_bits])
        payload = body[config.seq_bits : config.seq_bits + config.payload_bits]
        checksum = body[config.seq_bits + config.payload_bits :]
        if checksum != crc_bits(body[: config.seq_bits + config.payload_bits],
                                width=config.crc_width):
            crc_failures += 1
            position += 1
            resync_bits += 1
            continue
        if seq in payloads:
            duplicates += 1
        else:
            payloads[seq] = payload
        position += config.frame_bits
    return FrameScanResult(
        payloads=payloads,
        crc_failures=crc_failures,
        resync_bits=resync_bits,
        duplicates=duplicates,
        scanned_bits=len(stream),
    )
