"""WB channel receiver — Algorithm 2 + the receiver half of Algorithm 3.

Each sample is one pointer-chased traversal of a replacement set bracketed
by TSC reads (Listing 1 of the paper).  Two replacement sets, A and B, are
used alternately: after a traversal of A its lines occupy the L1 target
set, so the *next* decode must use B (whose lines the A-traversal just
pushed to L2) — and every decode leaves the target set full of clean lines,
doubling as the next symbol's initialisation phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.cpu.ops import Delay, Load, RdTSC, SpinUntil
from repro.cpu.thread import OpGenerator, Program
from repro.mem.pointer_chase import PointerChaseList


@dataclass
class WBReceiverProgram(Program):
    """Samples the target set's replacement latency once per period.

    Parameters
    ----------
    chase_a, chase_b:
        The two replacement sets as pointer-chase lists (Algorithm 2's
        sets A and B).
    period:
        ``Tr`` in cycles (the paper always uses ``Tr = Ts``).
    start_time:
        Protocol epoch shared with the sender.
    num_samples:
        How many symbol windows to sample.
    phase:
        Fraction of the first period to wait before the first measurement;
        0.6 places each sample inside its symbol's window, after the
        sender's encode but before the next window opens.
    """

    chase_a: PointerChaseList
    chase_b: PointerChaseList
    period: int
    start_time: int
    num_samples: int
    phase: float = 0.6
    #: Fault injection (``repro.faults``): ``{slot_index: cycles}`` of
    #: descheduling windows.  A window longer than the remaining period
    #: shifts the sampling grid, so the receiver skips sender symbols
    #: (deletions) — the slip the framing layer resynchronises around.
    desched: Optional[Mapping[int, int]] = None
    #: Hardened pacing: spin to the absolute sample grid
    #: ``start + phase·period + k·period`` instead of chaining off the
    #: previous wake-up, so a descheduling window costs the samples it
    #: covers and the grid re-locks.  Off by default — the raw protocol
    #: chains, and every baseline experiment measures that behaviour.
    absolute_pacing: bool = False

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"period must be positive, got {self.period}")
        if self.num_samples <= 0:
            raise ConfigurationError(
                f"num_samples must be positive, got {self.num_samples}"
            )
        if not 0.0 <= self.phase < 1.0:
            raise ConfigurationError(f"phase must be in [0, 1), got {self.phase}")
        overlap = set(self.chase_a.order) & set(self.chase_b.order)
        if overlap:
            raise ConfigurationError(
                "replacement sets A and B share addresses; Algorithm 2 "
                "requires them to be disjoint"
            )
        #: ``(tsc_at_measure_start, traversal_latency)`` per sample.
        self.samples: List[Tuple[int, int]] = []

    def run(self) -> OpGenerator:
        # Step 0 — initialisation phase: warm both replacement sets.  After
        # this, B's lines sit in the L1 target set and A's in L2, so the
        # first decode must traverse A.
        for line in self.chase_a:
            yield Load(line)
        for line in self.chase_b:
            yield Load(line)

        first_target = self.start_time + int(self.phase * self.period)
        t_last = yield SpinUntil(first_target)
        for index in range(self.num_samples):
            if self.desched and index in self.desched:
                yield Delay(self.desched[index])
            chase = self.chase_a if index % 2 == 0 else self.chase_b
            start = yield RdTSC()
            for line in chase:
                yield Load(line)
            end = yield RdTSC()
            self.samples.append((start, end - start))
            if self.absolute_pacing:
                t_last = yield SpinUntil(first_target + (index + 1) * self.period)
            else:
                t_last = yield SpinUntil(t_last + self.period)

    def latencies(self) -> List[int]:
        """Just the latency series, in sample order."""
        return [latency for _, latency in self.samples]
