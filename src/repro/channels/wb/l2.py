"""Extension: the WB channel on the **L2** cache.

Section 3 of the paper: "The WB time channel can be deployed not only on
the L1 cache but also on other levels of caches.  However, that requires
more operations from the sender."  The paper stops there; this module
builds it.

What changes relative to the L1 channel
---------------------------------------
* **Encoding** costs more: a store only dirties the *L1* copy, so the
  sender must additionally evict its line from L1 (by touching an L1
  eviction set of its own) before the dirty line lands in L2 — the
  "more operations" the paper predicts.
* **Decoding** times L2 replacements: the receiver's replacement set
  collides in one *L2* set; each traversal load misses L1 and L2, hits
  the LLC and fills L2, and every dirty L2 victim adds the L2 write-back
  penalty.  The hierarchy must charge deep write-backs for this to be
  measurable (``charge_deep_writebacks=True`` — an L2 with a single fill
  port stalls on the victim drain exactly like the L1 does).
* **Set agreement** is harder: the L2 is physically indexed, so the
  parties cannot aim at a set from virtual addresses alone.  Real
  attackers solve this with eviction-set profiling (see
  :func:`repro.defenses.randomized_mapping.find_eviction_set`); this
  module's :func:`build_l2_conflict_lines` performs the equivalent
  construction directly from the page tables and is documented as the
  stand-in for that profiling step.

Lines that share an L2 set also share their L1 set (the L1 index bits
are a subset of the L2 index bits), so the sender's L1 self-eviction set
doubles as extra L2-set pressure; the implementation keeps them separate
for clarity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.bits import random_bits
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import derive_rng, ensure_rng
from repro.common.units import cycles_to_kbps
from repro.analysis.ber import DEFAULT_PREAMBLE, evaluate_transmission
from repro.cache.cache import Cache
from repro.cache.configs import XeonE5_2650Config
from repro.cache.hierarchy import CacheHierarchy
from repro.channels.encoding import BinaryDirtyCodec, SymbolCodec
from repro.channels.testbench import ChannelTestbench, TestbenchConfig
from repro.channels.threshold import ThresholdDecoder
from repro.cpu.noise import SchedulerNoise
from repro.cpu.ops import Load, RdTSC, SpinUntil, Store
from repro.cpu.thread import OpGenerator, Program
from repro.mem.address_space import AddressSpace
from repro.replacement.registry import make_policy_factory

SENDER_TID = 0
RECEIVER_TID = 1


def make_l2_channel_hierarchy(rng: Optional[random.Random] = None) -> CacheHierarchy:
    """Xeon-like hierarchy that charges L2 write-back penalties.

    Identical to :func:`make_xeon_hierarchy` except
    ``charge_deep_writebacks=True``: an L2 fill over a dirty victim stalls
    on the drain to the LLC, which is the latency the L2 channel measures.
    """
    config = XeonE5_2650Config()
    master = ensure_rng(rng)
    levels = [
        Cache(
            "L1D",
            config.l1_size,
            config.l1_ways,
            config.line_size,
            make_policy_factory(config.l1_policy),
            rng=derive_rng(master, "l1"),
        ),
        Cache(
            "L2",
            config.l2_size,
            config.l2_ways,
            config.line_size,
            make_policy_factory(config.l2_policy),
            rng=derive_rng(master, "l2"),
        ),
        Cache(
            "LLC",
            config.llc_size,
            config.llc_ways,
            config.line_size,
            make_policy_factory(config.llc_policy),
            rng=derive_rng(master, "llc"),
        ),
    ]
    return CacheHierarchy(
        levels=levels,
        latency=config.latency,
        rng=derive_rng(master, "hierarchy"),
        charge_deep_writebacks=True,
    )


def build_l2_conflict_lines(
    space: AddressSpace,
    hierarchy: CacheHierarchy,
    target_l2_set: int,
    count: int,
    max_pages: int = 4096,
) -> List[int]:
    """Virtual lines of ``space`` whose *physical* L2 index is the target.

    Walks freshly-allocated pages and keeps the lines whose physical
    address falls into the target L2 set.  The L2 index bits inside the
    page offset are controllable from the virtual address; the frame bits
    are found by this scan — the simulator-level equivalent of the
    timing-based eviction-set profiling a real attacker performs.
    """
    l2 = hierarchy.levels[1]
    layout = l2.layout
    if not 0 <= target_l2_set < layout.num_sets:
        raise ConfigurationError(
            f"target_l2_set {target_l2_set} out of range [0, {layout.num_sets})"
        )
    lines: List[int] = []
    offset_within_page = (target_l2_set * layout.line_size) & 0xFFF
    for _ in range(max_pages):
        if len(lines) >= count:
            return lines
        base = space.allocate_buffer(4096)
        virtual = base + offset_within_page
        if layout.set_index(space.translate(virtual)) == target_l2_set:
            lines.append(virtual)
    raise SimulationError(
        f"could not find {count} L2-conflicting lines in {max_pages} pages"
    )


@dataclass
class L2WBSenderProgram(Program):
    """Encode by dirtying L2 lines: store, then self-evict from L1."""

    lines: Sequence[int]
    #: The sender's own L1 eviction set (evicts its dirty lines to L2).
    l1_eviction_lines: Sequence[int]
    schedule: Sequence[int]
    period: int
    start_time: int

    def __post_init__(self) -> None:
        needed = max(self.schedule, default=0)
        if needed > len(self.lines):
            raise ConfigurationError(
                f"schedule needs {needed} conflict lines, got {len(self.lines)}"
            )
        if not self.l1_eviction_lines:
            raise ConfigurationError("sender needs an L1 eviction set")

    def run(self) -> OpGenerator:
        for line in list(self.lines) + list(self.l1_eviction_lines):
            yield Load(line)
        t_last = yield SpinUntil(self.start_time)
        for dirty_count in self.schedule:
            # Encoding phase, step 1: dirty the L1 copies.
            for line in self.lines[:dirty_count]:
                yield Store(line)
            # Step 2 ("more operations from the sender"): push the dirty
            # lines down to L2 by sweeping the sender's own L1 set.
            if dirty_count:
                for line in self.l1_eviction_lines:
                    yield Load(line)
            t_last = yield SpinUntil(t_last + self.period)


@dataclass
class L2WBReceiverProgram(Program):
    """Time traversals of an L2 replacement set (alternating A/B)."""

    chase_a: Sequence[int]
    chase_b: Sequence[int]
    period: int
    start_time: int
    num_samples: int
    phase: float = 0.6

    def __post_init__(self) -> None:
        if set(self.chase_a) & set(self.chase_b):
            raise ConfigurationError("L2 replacement sets must be disjoint")
        if self.num_samples <= 0:
            raise ConfigurationError("num_samples must be positive")
        self.samples: List[Tuple[int, int]] = []

    def run(self) -> OpGenerator:
        for line in list(self.chase_a) + list(self.chase_b):
            yield Load(line)
        t_last = yield SpinUntil(self.start_time + int(self.phase * self.period))
        for index in range(self.num_samples):
            chase = self.chase_a if index % 2 == 0 else self.chase_b
            start = yield RdTSC()
            for line in chase:
                yield Load(line)
            end = yield RdTSC()
            self.samples.append((start, end - start))
            t_last = yield SpinUntil(t_last + self.period)

    def latencies(self) -> List[int]:
        """Latency series in sample order."""
        return [latency for _, latency in self.samples]


@dataclass
class L2WBChannelConfig:
    """One L2 WB covert-channel run.

    The default period is longer than the L1 channel's because both the
    encode (store + L1 sweep) and the measurement (LLC-latency loads)
    cost more — the paper's predicted bandwidth penalty for deeper levels.
    """

    codec: SymbolCodec = field(default_factory=lambda: BinaryDirtyCodec(d_on=4))
    period_cycles: int = 22000
    message_bits: int = 64
    preamble: Sequence[int] = field(default_factory=lambda: list(DEFAULT_PREAMBLE))
    target_l2_set: int = 137
    replacement_set_size: int = 12
    receiver_phase: Optional[float] = None
    alignment_slack_symbols: int = 4
    start_time: int = 60000
    seed: int = 0
    scheduler_noise: Optional[SchedulerNoise] = None
    calibration_repetitions: int = 40
    decoder: Optional[ThresholdDecoder] = None

    @property
    def rate_kbps(self) -> float:
        """Nominal transmission rate."""
        return cycles_to_kbps(self.period_cycles, self.codec.bits_per_symbol)

    def resolve_message(self) -> List[int]:
        """Preamble plus random payload."""
        preamble = list(self.preamble)
        payload = self.message_bits - len(preamble)
        if payload < 0:
            raise ConfigurationError("message_bits shorter than preamble")
        rng = derive_rng(ensure_rng(self.seed), "message")
        return preamble + random_bits(payload, rng)


def _calibrate(config: L2WBChannelConfig) -> ThresholdDecoder:
    """Single-process latency profiling on a fresh L2-channel machine."""
    bench = ChannelTestbench(
        TestbenchConfig(
            seed=config.seed,
            hierarchy_factory=make_l2_channel_hierarchy,
            scheduler_noise=SchedulerNoise.disabled(),
        )
    )
    space = bench.new_space(pid=1)
    hierarchy = bench.hierarchy
    writer = build_l2_conflict_lines(
        space, hierarchy, config.target_l2_set, config.codec.max_dirty_lines
    )
    chase_a = build_l2_conflict_lines(
        space, hierarchy, config.target_l2_set, config.replacement_set_size
    )
    chase_b = build_l2_conflict_lines(
        space, hierarchy, config.target_l2_set, config.replacement_set_size
    )
    # The calibration probe needs the sender's L1-sweep too: writer lines
    # share one L1 set (same page-offset), so sweeping any 10 L1-conflict
    # lines pushes them to L2.  The replacement-set lines themselves share
    # that L1 set, so the traversal doubles as the sweep.
    samples: Dict[int, List[float]] = {level: [] for level in config.codec.levels}

    class _Probe(Program):
        def run(self) -> OpGenerator:
            for line in writer + chase_a + chase_b:
                yield Load(line)
            for rep in range(config.calibration_repetitions):
                for level in config.codec.levels:
                    for line in writer[:level]:
                        yield Store(line)
                    chase = chase_a if rep % 2 == 0 else chase_b
                    start = yield RdTSC()
                    for line in chase:
                        yield Load(line)
                    end = yield RdTSC()
                    samples[level].append(float(end - start))

    bench.add_thread(1, space, _Probe(), name="l2-probe")
    bench.run()
    return ThresholdDecoder.calibrate(samples)


@dataclass(frozen=True)
class L2ChannelRunResult:
    """Outcome of one L2 WB channel transmission."""

    sent_bits: Tuple[int, ...]
    received_bits: Tuple[int, ...]
    bit_error_rate: float
    errors: int
    rate_kbps: float
    decoder: ThresholdDecoder
    elapsed_cycles: float

    def __str__(self) -> str:
        return (
            f"L2 WB channel @ {self.rate_kbps:.0f} Kbps: BER "
            f"{self.bit_error_rate:.2%} over {len(self.sent_bits)} bits"
        )


def run_l2_wb_channel(config: L2WBChannelConfig) -> L2ChannelRunResult:
    """Run one L2 WB covert-channel transmission."""
    message = config.resolve_message()
    schedule = config.codec.encode_message(message)
    decoder = config.decoder or _calibrate(config)

    bench = ChannelTestbench(
        TestbenchConfig(
            seed=config.seed,
            hierarchy_factory=make_l2_channel_hierarchy,
            scheduler_noise=config.scheduler_noise,
        )
    )
    hierarchy = bench.hierarchy
    sender_space = bench.new_space(pid=SENDER_TID)
    receiver_space = bench.new_space(pid=RECEIVER_TID)

    sender_lines = build_l2_conflict_lines(
        sender_space, hierarchy, config.target_l2_set,
        max(config.codec.max_dirty_lines, 1),
    )
    # The sender's lines share an L1 set (identical page offsets); an L1
    # sweep needs >= 10 lines in that set from anywhere in its own space.
    l1_layout = hierarchy.l1.layout
    l1_set = l1_layout.set_index(sender_lines[0])
    from repro.mem.sets import build_set_conflicting_lines

    sweep_lines = build_set_conflicting_lines(sender_space, l1_layout, l1_set, 10)
    chase_a = build_l2_conflict_lines(
        receiver_space, hierarchy, config.target_l2_set, config.replacement_set_size
    )
    chase_b = build_l2_conflict_lines(
        receiver_space, hierarchy, config.target_l2_set, config.replacement_set_size
    )

    phase = config.receiver_phase
    if phase is None:
        phase = derive_rng(bench.rng, "phase").random()
    sender = L2WBSenderProgram(
        lines=sender_lines,
        l1_eviction_lines=sweep_lines,
        schedule=schedule,
        period=config.period_cycles,
        start_time=config.start_time,
    )
    receiver = L2WBReceiverProgram(
        chase_a=chase_a,
        chase_b=chase_b,
        period=config.period_cycles,
        start_time=config.start_time,
        num_samples=len(schedule) + config.alignment_slack_symbols,
        phase=phase,
    )
    bench.add_thread(SENDER_TID, sender_space, sender, name="l2-sender")
    bench.add_thread(RECEIVER_TID, receiver_space, receiver, name="l2-receiver")
    core = bench.run()

    levels = decoder.classify_many(receiver.latencies())
    received_raw = config.codec.decode_message(levels)
    report = evaluate_transmission(
        sent=message,
        received_raw=received_raw,
        preamble_length=len(config.preamble),
        alignment_slack=config.alignment_slack_symbols * config.codec.bits_per_symbol,
    )
    return L2ChannelRunResult(
        sent_bits=tuple(message),
        received_bits=tuple(report.received),
        bit_error_rate=report.ber,
        errors=report.errors,
        rate_kbps=config.rate_kbps,
        decoder=decoder,
        elapsed_cycles=core.elapsed_cycles(),
    )
