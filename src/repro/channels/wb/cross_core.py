"""The WB channel **across cores**, over MESI downgrade write-backs.

The paper's channel lives inside one SMT core: sender and receiver share
an L1D, and the signal is the dirty-victim replacement penalty.  With the
multi-core model (:mod:`repro.coherence`) the same dirty state leaks
*across* cores:

* the **sender** (core 0) stores to ``d`` shared lines — an RFO that
  invalidates the receiver's copies and leaves the sender's Modified;
* the **receiver** (core 1) times loads of those lines each period.  A
  line the sender dirtied misses the receiver's L1, and the directory
  must first drain the sender's Modified copy into the shared L2 (the
  M→S downgrade write-back) before the fill completes —
  ``l2_hit + l1_writeback_penalty`` ≈ 22 cycles against ≈ 4 for an
  untouched line (the receiver still holds it Shared).

The probe itself re-acquires the lines Shared, resetting the state for
the next symbol: no eviction sets, no pointer chases — the coherence
protocol does both the delivery and the cleanup.  Latency grows
monotonically with ``d``, so the existing
:class:`~repro.channels.threshold.ThresholdDecoder`, symbol codecs and
framing stack are reused unchanged.

Sharing is modelled as page-table aliasing
(:func:`~repro.channels.testbench.share_buffer`) — the read-write shared
segment of the paper's covert-channel threat model.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.bits import random_bits
from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.common.units import cycles_to_kbps
from repro.analysis.ber import DEFAULT_PREAMBLE, evaluate_transmission
from repro.cache.configs import HierarchyParams
from repro.channels.encoding import BinaryDirtyCodec, SymbolCodec
from repro.channels.testbench import ChannelTestbench, TestbenchConfig, share_buffer
from repro.channels.threshold import ThresholdDecoder
from repro.channels.wb.protocol import ChannelRunResult
from repro.cpu.noise import SchedulerNoise
from repro.cpu.ops import Load, RdTSC, SpinUntil, Store
from repro.cpu.perf_counters import PerfReport
from repro.cpu.thread import OpGenerator, Program
from repro.mem.sets import build_set_conflicting_lines

#: Hardware thread ids; the coherent hierarchy maps tid -> core by
#: ``tid % cores``, so these also name the cores.
SENDER_TID = 0
RECEIVER_TID = 1

#: Phase used for calibration probes (mid-period, clear of the stores).
CALIBRATION_PHASE = 0.6


@dataclass
class CrossCoreSenderProgram(Program):
    """Encode by storing to shared lines: RFO → Modified on core 0."""

    lines: Sequence[int]
    schedule: Sequence[int]
    period: int
    start_time: int

    def __post_init__(self) -> None:
        needed = max(self.schedule, default=0)
        if needed > len(self.lines):
            raise ConfigurationError(
                f"schedule needs {needed} shared lines, got {len(self.lines)}"
            )

    def run(self) -> OpGenerator:
        for line in self.lines:
            yield Load(line)
        t_last = yield SpinUntil(self.start_time)
        for dirty_count in self.schedule:
            for line in self.lines[:dirty_count]:
                yield Store(line)
            t_last = yield SpinUntil(t_last + self.period)


@dataclass
class CrossCoreReceiverProgram(Program):
    """Time one load of every shared line per period, on core 1."""

    lines: Sequence[int]
    period: int
    start_time: int
    num_samples: int
    phase: float = CALIBRATION_PHASE

    def __post_init__(self) -> None:
        if not self.lines:
            raise ConfigurationError("receiver needs at least one shared line")
        if self.num_samples <= 0:
            raise ConfigurationError("num_samples must be positive")
        self.samples: List[Tuple[int, int]] = []

    def run(self) -> OpGenerator:
        for line in self.lines:
            yield Load(line)
        t_last = yield SpinUntil(
            self.start_time + int(self.phase * self.period)
        )
        for _ in range(self.num_samples):
            start = yield RdTSC()
            for line in self.lines:
                yield Load(line)
            end = yield RdTSC()
            self.samples.append((start, end - start))
            t_last = yield SpinUntil(t_last + self.period)

    def latencies(self) -> List[int]:
        """Latency series in sample order."""
        return [latency for _, latency in self.samples]


@dataclass
class CrossCoreWBChannelConfig:
    """One cross-core WB covert-channel run.

    The period sits between the L1 channel's (both endpoints pay only a
    handful of loads/stores per symbol) and the L2 channel's (no eviction
    sweeps are needed), dominated by the receiver's per-line downgrade
    round-trips.
    """

    codec: SymbolCodec = field(default_factory=lambda: BinaryDirtyCodec(d_on=4))
    period_cycles: int = 9000
    message_bits: int = 64
    preamble: Sequence[int] = field(default_factory=lambda: list(DEFAULT_PREAMBLE))
    #: Cores in the default topology when ``hierarchy`` is None.
    cores: int = 2
    #: L1 set the shared lines collide in (keeps detector geometry
    #: aligned with the single-core scenarios).
    target_set: int = 21
    receiver_phase: Optional[float] = None
    alignment_slack_symbols: int = 4
    start_time: int = 30000
    seed: int = 0
    scheduler_noise: Optional[SchedulerNoise] = None
    #: Multi-core topology; ``None`` = Xeon E5-2650 with ``cores`` cores.
    hierarchy: Optional[HierarchyParams] = None
    calibration_repetitions: int = 30
    decoder: Optional[ThresholdDecoder] = None

    def __post_init__(self) -> None:
        if self.period_cycles <= 0:
            raise ConfigurationError(
                f"period_cycles must be positive, got {self.period_cycles}"
            )
        if self.calibration_repetitions <= 0:
            raise ConfigurationError(
                "calibration_repetitions must be positive, "
                f"got {self.calibration_repetitions}"
            )

    def resolve_hierarchy(self) -> HierarchyParams:
        """The multi-core topology this run simulates (cores >= 2)."""
        params = self.hierarchy
        if params is None:
            params = HierarchyParams.xeon(cores=self.cores)
        if params.cores < 2:
            raise ConfigurationError(
                f"cross-core channel needs cores >= 2, got {params.cores}"
            )
        return params

    def resolve_message(self) -> List[int]:
        """Preamble plus random payload."""
        preamble = list(self.preamble)
        payload = self.message_bits - len(preamble)
        if payload < 0:
            raise ConfigurationError("message_bits shorter than preamble")
        rng = derive_rng(ensure_rng(self.seed), "message")
        return preamble + random_bits(payload, rng)

    @property
    def rate_kbps(self) -> float:
        """Nominal transmission rate."""
        return cycles_to_kbps(self.period_cycles, self.codec.bits_per_symbol)


@dataclass(frozen=True)
class CrossCoreTransmission:
    """What one paced cross-core transmission measured."""

    samples: Tuple[Tuple[int, int], ...]
    sender_perf: PerfReport
    receiver_perf: PerfReport
    elapsed_cycles: float
    #: Coherence protocol counters accumulated over the run.
    coherence: Dict[str, int]

    def latencies(self) -> List[int]:
        """The latency series, in sample order."""
        return [latency for _, latency in self.samples]


def transmit_cross_core_schedule(
    config: CrossCoreWBChannelConfig,
    schedule: Sequence[int],
    phase: float,
    num_samples: int,
    subscribers: Sequence[object] = (),
) -> CrossCoreTransmission:
    """Run sender and receiver over one symbol schedule.

    ``subscribers`` are attached to the hierarchy's telemetry bus for the
    duration of the run (per-core online detectors); with none, the run
    is telemetry-free unless a session is active.
    """
    params = config.resolve_hierarchy()
    bench = ChannelTestbench(
        TestbenchConfig(
            seed=config.seed,
            hierarchy_factory=lambda rng: params.build(rng=rng),
            scheduler_noise=config.scheduler_noise,
        )
    )
    hierarchy = bench.hierarchy
    target_set = bench.pick_target_set(config.target_set)
    sender_space = bench.new_space(pid=SENDER_TID)
    receiver_space = bench.new_space(pid=RECEIVER_TID)
    line_size = bench.l1_layout.line_size
    lines = build_set_conflicting_lines(
        sender_space,
        bench.l1_layout,
        target_set,
        max(config.codec.max_dirty_lines, 1),
    )
    # The shared segment: alias every line's page into the receiver's
    # space, so both processes address the same physical lines.
    for line in lines:
        share_buffer(sender_space, receiver_space, line, line_size)

    sender = CrossCoreSenderProgram(
        lines=lines,
        schedule=schedule,
        period=config.period_cycles,
        start_time=config.start_time,
    )
    receiver = CrossCoreReceiverProgram(
        lines=lines,
        period=config.period_cycles,
        start_time=config.start_time,
        num_samples=num_samples,
        phase=phase,
    )
    bench.add_thread(SENDER_TID, sender_space, sender, name="xc-sender")
    bench.add_thread(RECEIVER_TID, receiver_space, receiver, name="xc-receiver")

    bus = hierarchy.telemetry
    owned_bus = subscribers and (bus is None or not bus.enabled)
    if owned_bus:
        from repro.telemetry.bus import TelemetryBus

        bus = hierarchy.attach_telemetry(TelemetryBus())
    for subscriber in subscribers:
        bus.subscribe(subscriber)
    try:
        core = bench.run()
    finally:
        for subscriber in subscribers:
            finish = getattr(subscriber, "finish", None)
            if finish is not None:
                finish()
            bus.unsubscribe(subscriber)
        if owned_bus:
            hierarchy.detach_telemetry()

    elapsed = core.elapsed_cycles()
    stats = hierarchy.stats
    return CrossCoreTransmission(
        samples=tuple(receiver.samples),
        sender_perf=PerfReport.from_stats(stats, SENDER_TID, elapsed),
        receiver_perf=PerfReport.from_stats(stats, RECEIVER_TID, elapsed),
        elapsed_cycles=elapsed,
        coherence=dict(hierarchy.coherence.snapshot()),
    )


def calibrate_cross_core(config: CrossCoreWBChannelConfig) -> ThresholdDecoder:
    """Latency profiling: transmit a known level schedule, bucket by level.

    Unlike the single-core channels the cross-core receiver cannot
    profile alone — the signal *is* the other core's Modified copy — so
    calibration is a short two-party transmission of every codec level at
    a fixed phase, exactly what a real attacker pair would run before
    agreeing on thresholds.
    """
    levels = config.codec.levels
    schedule = [
        level for _ in range(config.calibration_repetitions) for level in levels
    ]
    transmission = transmit_cross_core_schedule(
        config, schedule, CALIBRATION_PHASE, num_samples=len(schedule)
    )
    samples: Dict[int, List[float]] = defaultdict(list)
    for level, latency in zip(schedule, transmission.latencies()):
        samples[level].append(float(latency))
    return ThresholdDecoder.calibrate(dict(samples))


def run_cross_core_wb_channel(
    config: CrossCoreWBChannelConfig,
    subscribers: Sequence[object] = (),
    coherence_out: Optional[Dict[str, int]] = None,
) -> ChannelRunResult:
    """Run one cross-core WB covert-channel transmission.

    ``coherence_out``, when given, is updated in place with the run's
    protocol counters (:meth:`CoherenceStats.snapshot`) —
    :class:`ChannelRunResult` is frozen and shared with the single-core
    channels, so the coherence view rides alongside it.
    """
    message = config.resolve_message()
    schedule = config.codec.encode_message(message)
    decoder = config.decoder or calibrate_cross_core(config)

    phase = config.receiver_phase
    if phase is None:
        phase = derive_rng(ensure_rng(config.seed), "phase").random()
    transmission = transmit_cross_core_schedule(
        config,
        schedule,
        phase,
        num_samples=len(schedule) + config.alignment_slack_symbols,
        subscribers=subscribers,
    )
    if coherence_out is not None:
        coherence_out.update(transmission.coherence)
    levels = decoder.classify_many(transmission.latencies())
    received_raw = config.codec.decode_message(levels)
    report = evaluate_transmission(
        sent=message,
        received_raw=received_raw,
        preamble_length=len(config.preamble),
        alignment_slack=(
            config.alignment_slack_symbols * config.codec.bits_per_symbol
        ),
    )
    return ChannelRunResult(
        sent_bits=tuple(message),
        received_bits=tuple(report.received),
        bit_error_rate=report.ber,
        errors=report.errors,
        alignment_offset=report.offset,
        rate_kbps=config.rate_kbps,
        period_cycles=config.period_cycles,
        samples=transmission.samples,
        decoder=decoder,
        sender_perf=transmission.sender_perf,
        receiver_perf=transmission.receiver_perf,
        elapsed_cycles=transmission.elapsed_cycles,
        fault_summary=None,
    )
