"""Offline latency probing: Figure 4 data and threshold calibration.

A single-threaded probe alternately dirties ``d`` writer lines and times a
replacement-set traversal, yielding the latency distribution for every
dirty-line count.  The same data calibrates the receiver's
:class:`~repro.channels.threshold.ThresholdDecoder` (the parties agree on
thresholds before communicating, exactly as a real attacker would profile
the machine first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng
from repro.cache.hierarchy import HierarchyFactory
from repro.channels.testbench import ChannelTestbench, TestbenchConfig
from repro.channels.threshold import ThresholdDecoder
from repro.cpu.noise import SchedulerNoise
from repro.cpu.ops import Load, RdTSC, Store
from repro.cpu.thread import OpGenerator, Program
from repro.mem.pointer_chase import PointerChaseList
from repro.mem.sets import build_replacement_set, build_set_conflicting_lines


@dataclass
class LatencyProbeProgram(Program):
    """Measures replacement latency for a schedule of dirty-line counts."""

    writer_lines: Sequence[int]
    chase_a: PointerChaseList
    chase_b: PointerChaseList
    schedule: Sequence[int]
    #: Mirror of the sender's adaptive mode (random-fill defenses): reload
    #: a writer line until it is resident before store-hitting it.
    ensure_resident: bool = False
    resident_threshold: float = 8.0
    max_residency_attempts: int = 40

    def __post_init__(self) -> None:
        needed = max(self.schedule, default=0)
        if needed > len(self.writer_lines):
            raise ConfigurationError(
                f"schedule needs {needed} writer lines, got {len(self.writer_lines)}"
            )
        #: ``(d, latency)`` per measurement, in schedule order.
        self.measurements: List[tuple] = []

    def run(self) -> OpGenerator:
        # Warm both replacement sets (leaves B resident in L1, A in L2).
        for line in self.chase_a:
            yield Load(line)
        for line in self.chase_b:
            yield Load(line)
        for index, dirty_count in enumerate(self.schedule):
            for line in self.writer_lines[:dirty_count]:
                if self.ensure_resident:
                    for _ in range(self.max_residency_attempts):
                        latency = yield Load(line)
                        if latency <= self.resident_threshold:
                            break
                yield Store(line)
            chase = self.chase_a if index % 2 == 0 else self.chase_b
            start = yield RdTSC()
            for line in chase:
                yield Load(line)
            end = yield RdTSC()
            self.measurements.append((dirty_count, end - start))


def measure_latency_distributions(
    levels: Sequence[int],
    repetitions: int = 1000,
    replacement_set_size: int = 10,
    target_set: int = 21,
    seed: int = 0,
    hierarchy_overrides: Optional[Dict[str, object]] = None,
    hierarchy_factory: Optional[HierarchyFactory] = None,
    interleave: bool = True,
    ensure_resident: bool = False,
) -> Dict[int, List[int]]:
    """Latency samples for each dirty-line count in ``levels``.

    This regenerates Figure 4 of the paper: for each ``d`` the traversal
    latency clusters ``d * l1_writeback_penalty`` cycles above the clean
    baseline.  ``interleave=True`` cycles through the levels round-robin
    (as the paper's alternating measurements do) rather than in blocks, so
    slow drifts cannot masquerade as level separation.
    """
    if not levels:
        raise ConfigurationError("levels must not be empty")
    if repetitions <= 0:
        raise ConfigurationError(f"repetitions must be positive, got {repetitions}")
    bench = ChannelTestbench(
        TestbenchConfig(
            seed=seed,
            hierarchy_overrides=dict(hierarchy_overrides or {}),
            hierarchy_factory=hierarchy_factory,
            scheduler_noise=SchedulerNoise.disabled(),
        )
    )
    chosen_set = bench.pick_target_set(target_set)
    layout = bench.l1_layout
    space = bench.new_space(pid=1)
    rng = derive_rng(bench.rng, "calibration")
    writer_lines = build_set_conflicting_lines(
        space, layout, chosen_set, max(max(levels), 1)
    )
    chase_a = PointerChaseList.from_lines(
        build_replacement_set(space, layout, chosen_set, replacement_set_size, rng),
        rng=rng,
    )
    chase_b = PointerChaseList.from_lines(
        build_replacement_set(space, layout, chosen_set, replacement_set_size, rng),
        rng=rng,
    )
    if interleave:
        schedule = [level for _ in range(repetitions) for level in levels]
    else:
        schedule = [level for level in levels for _ in range(repetitions)]
    probe = LatencyProbeProgram(
        writer_lines=writer_lines,
        chase_a=chase_a,
        chase_b=chase_b,
        schedule=schedule,
        ensure_resident=ensure_resident,
    )
    # The probe runs under the *receiver's* thread id: an attacker
    # calibrates from its own (unprivileged, unprotected) process, which
    # matters when a defense treats hardware threads differently.
    bench.add_thread(tid=1, space=space, program=probe, name="latency-probe")
    bench.run()
    samples: Dict[int, List[int]] = {level: [] for level in levels}
    for dirty_count, latency in probe.measurements:
        samples[dirty_count].append(latency)
    return samples


def calibrate_decoder(
    levels: Sequence[int],
    repetitions: int = 60,
    replacement_set_size: int = 10,
    target_set: int = 21,
    seed: int = 0,
    hierarchy_overrides: Optional[Dict[str, object]] = None,
    hierarchy_factory: Optional[HierarchyFactory] = None,
    ensure_resident: bool = False,
) -> ThresholdDecoder:
    """Profile the platform and build a threshold decoder for ``levels``."""
    samples = measure_latency_distributions(
        levels=levels,
        repetitions=repetitions,
        replacement_set_size=replacement_set_size,
        target_set=target_set,
        seed=seed,
        hierarchy_overrides=hierarchy_overrides,
        hierarchy_factory=hierarchy_factory,
        ensure_resident=ensure_resident,
    )
    return ThresholdDecoder.calibrate(
        {level: list(map(float, values)) for level, values in samples.items()}
    )
