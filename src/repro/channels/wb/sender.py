"""WB channel sender — Algorithm 1 + the sender half of Algorithm 3.

Per symbol the sender stores to the first ``d`` of its conflict lines
(putting them in the dirty state) and then spins until the next period
boundary.  Encoding a 0 with the binary codec performs *no* memory access
at all — one reason the channel is stealthy (Table 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.cpu.ops import Delay, Load, SpinUntil, Store
from repro.cpu.thread import OpGenerator, Program


@dataclass
class WBSenderProgram(Program):
    """Sends a fixed schedule of dirty-line counts, one per period.

    Parameters
    ----------
    lines:
        The sender's conflict lines for the target set (virtual addresses
        in the sender's space); at least ``max(schedule)`` of them.
    schedule:
        Dirty-line count per symbol (``codec.encode_message`` output).
    period:
        ``Ts`` in cycles.
    start_time:
        TSC value at which symbol 0's window opens; the receiver derives
        its sampling phase from the same constant (the "agree beforehand"
        step of the protocol).
    """

    lines: Sequence[int]
    schedule: Sequence[int]
    period: int
    start_time: int
    #: Adaptive mode for fill-decorrelating defenses (random-fill caches):
    #: before each store, reload the line until the load latency signals L1
    #: residency, so the store is a *hit* and sets the dirty bit despite
    #: the defense never filling demanded lines (Section 8's argument for
    #: why random fill does not stop the WB channel).
    ensure_resident: bool = False
    resident_threshold: float = 8.0
    max_residency_attempts: int = 40
    #: Fault injection (``repro.faults``): ``{symbol_index: cycles}`` of
    #: descheduling windows.  The delay lands before the symbol's encode,
    #: and because the period chain runs off actual wake-up times, a
    #: window longer than the remaining period permanently shifts this
    #: sender's symbol grid relative to the receiver's — a symbol slip.
    desched: Optional[Mapping[int, int]] = None
    #: Hardened pacing: spin to ``start_time + k * period`` (the absolute
    #: grid both parties agreed on) instead of chaining off the previous
    #: wake-up.  A descheduling window then costs the symbols it covers
    #: and the grid re-locks, instead of shifting by a fractional period
    #: for the rest of the message.  Off by default: the raw protocol
    #: chains, and every baseline experiment measures that behaviour.
    absolute_pacing: bool = False

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"period must be positive, got {self.period}")
        if self.start_time < 0:
            raise ConfigurationError("start_time must be non-negative")
        needed = max(self.schedule, default=0)
        if needed > len(self.lines):
            raise ConfigurationError(
                f"schedule needs {needed} conflict lines, got {len(self.lines)}"
            )
        if any(d < 0 for d in self.schedule):
            raise ConfigurationError("dirty-line counts must be non-negative")
        #: Per-symbol TSC timestamps at which encoding finished (diagnostics).
        self.encode_timestamps: List[int] = []

    def run(self) -> OpGenerator:
        # Warm-up: pull the conflict lines out of DRAM before the protocol
        # epoch so the first symbols' stores are not pathologically slow.
        for line in self.lines:
            yield Load(line)
        t_last = yield SpinUntil(self.start_time)
        for index, dirty_count in enumerate(self.schedule):
            if self.desched and index in self.desched:
                yield Delay(self.desched[index])
            # Encoding phase: put `dirty_count` lines into the dirty state.
            for line in self.lines[:dirty_count]:
                if self.ensure_resident:
                    for _ in range(self.max_residency_attempts):
                        latency = yield Load(line)
                        if latency <= self.resident_threshold:
                            break
                yield Store(line)
            self.encode_timestamps.append(t_last)
            # Sleep phase: allow the receiver to decode (Algorithm 3).
            if self.absolute_pacing:
                t_last = yield SpinUntil(self.start_time + (index + 1) * self.period)
            else:
                t_last = yield SpinUntil(t_last + self.period)
