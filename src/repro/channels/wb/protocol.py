"""Algorithm 3 — the paced WB covert-channel protocol, end to end.

One :func:`run_wb_channel` call performs what the paper's evaluation does
for a single message: calibrate thresholds, launch the sender and receiver
as two hyper-threads, decode the receiver's latency trace, align on the
preamble and score the transmission with the Wagner-Fischer edit distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.bits import random_bits
from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.rng import derive_rng, ensure_rng
from repro.common.units import cycles_to_kbps
from repro.analysis.ber import DEFAULT_PREAMBLE, evaluate_transmission
from repro.channels.encoding import BinaryDirtyCodec, SymbolCodec
from repro.channels.testbench import ChannelTestbench, TestbenchConfig
from repro.channels.threshold import ThresholdDecoder
from repro.cache.hierarchy import HierarchyFactory
from repro.channels.wb.calibration import calibrate_decoder
from repro.channels.wb.receiver import WBReceiverProgram
from repro.channels.wb.sender import WBSenderProgram
from repro.common.rng import derive_seed
from repro.cpu.noise import SchedulerNoise
from repro.cpu.perf_counters import PerfReport
from repro.cpu.tsc import TimestampCounterLike
from repro.faults.injector import (
    CORUNNER_TID,
    CoRunnerProgram,
    apply_measurement_faults,
    desched_plan,
    emit_fault_events,
)
from repro.faults.schedule import FaultSchedule, build_fault_schedule
from repro.faults.spec import FaultSpec
from repro.mem.pointer_chase import PointerChaseList
from repro.mem.sets import build_replacement_set, build_set_conflicting_lines

#: Hardware-thread ids used throughout (also the stats owner keys).
SENDER_TID = 0
RECEIVER_TID = 1


@dataclass
class WBChannelConfig:
    """Everything that defines one WB covert-channel run.

    The defaults mirror the paper's baseline experiment: 128-bit messages
    with a fixed 16-bit preamble, binary encoding with ``d = 1``, a
    replacement set of ten lines, and ``Ts = Tr``.
    """

    codec: SymbolCodec = field(default_factory=BinaryDirtyCodec)
    period_cycles: int = 5500
    message_bits: int = 128
    message: Optional[Sequence[int]] = None
    preamble: Sequence[int] = field(default_factory=lambda: list(DEFAULT_PREAMBLE))
    target_set: Optional[int] = 21
    replacement_set_size: int = 10
    #: Fraction of the first period the receiver waits before its first
    #: measurement.  ``None`` (the default, and the realistic setting)
    #: draws the phase uniformly at random: the two processes agree on the
    #: period but have no way to agree on the phase, and measurements that
    #: straddle the sender's encode are the channel's dominant error source
    #: at high rates (Figure 6).
    receiver_phase: Optional[float] = None
    #: Extra receiver samples beyond the symbol count, absorbed by the
    #: preamble alignment search (bit insertions push data rightward).
    alignment_slack_symbols: int = 4
    #: Protocol epoch: late enough that both parties finish their warm-up
    #: (cold DRAM fills of the replacement sets) before symbol 0 opens.
    start_time: int = 30000
    seed: int = 0
    scheduler_noise: Optional[SchedulerNoise] = None
    #: TSC model override (ablations disable read jitter through this).
    tsc: Optional[TimestampCounterLike] = None
    hierarchy_overrides: Dict[str, object] = field(default_factory=dict)
    #: Custom hierarchy builder (defense evaluations); see TestbenchConfig.
    hierarchy_factory: Optional[HierarchyFactory] = None
    #: Adaptive-sender mode against fill-decorrelating defenses.
    sender_ensure_resident: bool = False
    calibration_repetitions: int = 60
    #: Optional decoder reuse: experiments sweeping many messages on one
    #: platform calibrate once and inject the decoder here.
    decoder: Optional[ThresholdDecoder] = None
    #: Deterministic fault injection (``repro.faults``); ``None`` runs the
    #: benign regime every other experiment measures.  The fault schedule
    #: derives from ``derive_seed(seed, "faults/round<n>")`` — its own
    #: stream, so a faulted run's simulator randomness (hierarchy, noise,
    #: phase) is identical to the fault-free run at the same seed.
    faults: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if self.tsc is not None and not isinstance(self.tsc, TimestampCounterLike):
            raise ConfigurationError(
                f"tsc must implement TimestampCounterLike (read(), "
                f"read_overhead, read_jitter); got {type(self.tsc).__name__}"
            )
        if self.hierarchy_factory is not None and not callable(
            self.hierarchy_factory
        ):
            raise ConfigurationError(
                f"hierarchy_factory must be callable (rng -> CacheHierarchy); "
                f"got {type(self.hierarchy_factory).__name__}"
            )
        if self.period_cycles <= 0:
            raise ConfigurationError(
                f"period_cycles must be positive, got {self.period_cycles}"
            )
        if self.calibration_repetitions <= 0:
            raise ConfigurationError(
                f"calibration_repetitions must be positive, "
                f"got {self.calibration_repetitions}"
            )
        if self.replacement_set_size <= 0:
            raise ConfigurationError(
                f"replacement_set_size must be positive, "
                f"got {self.replacement_set_size}"
            )

    def resolve_message(self) -> List[int]:
        """The full bit message: preamble followed by payload."""
        preamble = list(self.preamble)
        if self.message is not None:
            message = list(self.message)
            if message[: len(preamble)] != preamble:
                raise ProtocolError(
                    "explicit message must start with the configured preamble"
                )
        else:
            payload_len = self.message_bits - len(preamble)
            if payload_len < 0:
                raise ConfigurationError(
                    f"message_bits {self.message_bits} shorter than the "
                    f"{len(preamble)}-bit preamble"
                )
            rng = derive_rng(ensure_rng(self.seed), "message")
            message = preamble + random_bits(payload_len, rng)
        if len(message) % self.codec.bits_per_symbol:
            raise ProtocolError(
                f"message of {len(message)} bits is not a whole number of "
                f"{self.codec.bits_per_symbol}-bit symbols"
            )
        return message

    @property
    def rate_kbps(self) -> float:
        """Nominal transmission rate of this configuration."""
        return cycles_to_kbps(self.period_cycles, self.codec.bits_per_symbol)


@dataclass(frozen=True)
class ChannelRunResult:
    """Everything measured during one covert-channel run."""

    sent_bits: Tuple[int, ...]
    received_bits: Tuple[int, ...]
    bit_error_rate: float
    errors: int
    alignment_offset: int
    rate_kbps: float
    period_cycles: int
    #: ``(tsc, latency)`` receiver samples, in order.
    samples: Tuple[Tuple[int, int], ...]
    decoder: ThresholdDecoder
    sender_perf: PerfReport
    receiver_perf: PerfReport
    elapsed_cycles: float
    #: Injected-fault event counts (``FaultSchedule.summary()``); ``None``
    #: for fault-free runs.
    fault_summary: Optional[Dict[str, object]] = None

    @property
    def payload_intact(self) -> bool:
        """True when the transmission was error-free."""
        return self.errors == 0

    def __str__(self) -> str:
        return (
            f"WB channel @ {self.rate_kbps:.0f} Kbps: BER "
            f"{self.bit_error_rate:.2%} over {len(self.sent_bits)} bits"
        )


@dataclass(frozen=True)
class TransmissionTrace:
    """What one paced transmission measured, before symbol decoding.

    :func:`run_wb_channel` (the raw protocol) and
    :func:`repro.channels.wb.robust.run_robust_wb_channel` (the framed,
    self-healing stack) both transmit through
    :func:`transmit_symbol_schedule` and decode this trace their own way.
    """

    #: The sample stream the decoder sees (measurement faults applied).
    samples: Tuple[Tuple[int, int], ...]
    #: The stream as the receiver measured it (pre-fault; equal to
    #: ``samples`` in fault-free runs).
    raw_samples: Tuple[Tuple[int, int], ...]
    sender_perf: PerfReport
    receiver_perf: PerfReport
    elapsed_cycles: float
    fault_schedule: Optional[FaultSchedule]

    @property
    def fault_summary(self) -> Optional[Dict[str, object]]:
        """Injected-fault counts, or ``None`` for fault-free runs."""
        if self.fault_schedule is None:
            return None
        return self.fault_schedule.summary()

    def latencies(self) -> List[int]:
        """The (post-fault) latency series, in sample order."""
        return [latency for _, latency in self.samples]


def transmit_symbol_schedule(
    config: WBChannelConfig,
    schedule: Sequence[int],
    *,
    num_samples: Optional[int] = None,
    fault_round: int = 0,
    symbol_origin: int = 0,
    bench_seed: Optional[int] = None,
    absolute_pacing: bool = False,
) -> TransmissionTrace:
    """Transmit one dirty-count schedule through a fresh testbench.

    The RNG draw order here is load-bearing: hierarchy, target set,
    replacement sets, phase, core — in that order, all off the bench's
    seed stream.  Fault randomness deliberately lives on a *separate*
    stream (``derive_seed(config.seed, "faults/...")``), so enabling
    faults never perturbs the simulated machine itself, and the parity
    suite can compare faulted runs across engines.

    ``fault_round``/``symbol_origin``/``bench_seed`` exist for the ARQ
    retransmission rounds: each round draws a fresh fault schedule and a
    fresh bench, while the drift ramp continues from ``symbol_origin``.
    """
    num_symbols = len(schedule)
    samples_wanted = (
        num_symbols + config.alignment_slack_symbols
        if num_samples is None
        else num_samples
    )

    bench_config = TestbenchConfig(
        seed=config.seed if bench_seed is None else bench_seed,
        hierarchy_overrides=dict(config.hierarchy_overrides),
        hierarchy_factory=config.hierarchy_factory,
        scheduler_noise=config.scheduler_noise,
    )
    if config.tsc is not None:
        bench_config.tsc = config.tsc
    bench = ChannelTestbench(bench_config)
    target_set = bench.pick_target_set(config.target_set)
    layout = bench.l1_layout

    sender_space = bench.new_space(pid=SENDER_TID)
    receiver_space = bench.new_space(pid=RECEIVER_TID)

    sender_lines = build_set_conflicting_lines(
        sender_space, layout, target_set, max(config.codec.max_dirty_lines, 1)
    )
    set_rng = derive_rng(bench.rng, "replacement-sets")
    chase_a = PointerChaseList.from_lines(
        build_replacement_set(
            receiver_space, layout, target_set, config.replacement_set_size, set_rng
        ),
        rng=set_rng,
    )
    chase_b = PointerChaseList.from_lines(
        build_replacement_set(
            receiver_space, layout, target_set, config.replacement_set_size, set_rng
        ),
        rng=set_rng,
    )

    phase = config.receiver_phase
    if phase is None:
        phase = derive_rng(bench.rng, "phase").random()

    fault_schedule: Optional[FaultSchedule] = None
    if config.faults is not None:
        fault_schedule = build_fault_schedule(
            config.faults,
            seed=derive_seed(config.seed, f"faults/round{fault_round}"),
            num_symbols=num_symbols,
            period=config.period_cycles,
            start_time=config.start_time,
            num_slots=samples_wanted,
            symbol_origin=symbol_origin,
        )

    sender = WBSenderProgram(
        lines=sender_lines,
        schedule=schedule,
        period=config.period_cycles,
        start_time=config.start_time,
        ensure_resident=config.sender_ensure_resident,
        desched=desched_plan(fault_schedule, "sender") if fault_schedule else None,
        absolute_pacing=absolute_pacing,
    )
    receiver = WBReceiverProgram(
        chase_a=chase_a,
        chase_b=chase_b,
        period=config.period_cycles,
        start_time=config.start_time,
        num_samples=samples_wanted,
        phase=phase,
        desched=desched_plan(fault_schedule, "receiver") if fault_schedule else None,
        absolute_pacing=absolute_pacing,
    )
    bench.add_thread(SENDER_TID, sender_space, sender, name="wb-sender")
    bench.add_thread(RECEIVER_TID, receiver_space, receiver, name="wb-receiver")
    if fault_schedule is not None and fault_schedule.corunner_bursts:
        corunner_space = bench.new_space(pid=CORUNNER_TID)
        corunner = CoRunnerProgram(
            lines=build_set_conflicting_lines(
                corunner_space, layout, target_set, 4
            ),
            bursts=fault_schedule.corunner_bursts,
        )
        bench.add_thread(CORUNNER_TID, corunner_space, corunner, name="corunner")
    core = bench.run()

    raw_samples = tuple(receiver.samples)
    if fault_schedule is None:
        samples = raw_samples
    else:
        samples = tuple(apply_measurement_faults(raw_samples, fault_schedule))
        bus = bench.hierarchy.telemetry
        if bus is not None:
            emit_fault_events(bus, fault_schedule, target_set)

    elapsed = core.elapsed_cycles()
    return TransmissionTrace(
        samples=samples,
        raw_samples=raw_samples,
        sender_perf=PerfReport.from_stats(
            bench.hierarchy.stats, SENDER_TID, elapsed
        ),
        receiver_perf=PerfReport.from_stats(
            bench.hierarchy.stats, RECEIVER_TID, elapsed
        ),
        elapsed_cycles=elapsed,
        fault_schedule=fault_schedule,
    )


def resolve_channel_decoder(config: WBChannelConfig) -> ThresholdDecoder:
    """The configured decoder, calibrating one if none was injected."""
    if config.decoder is not None:
        return config.decoder
    return calibrate_decoder(
        levels=config.codec.levels,
        repetitions=config.calibration_repetitions,
        replacement_set_size=config.replacement_set_size,
        target_set=config.target_set if config.target_set is not None else 21,
        seed=config.seed,
        hierarchy_overrides=config.hierarchy_overrides,
        hierarchy_factory=config.hierarchy_factory,
        ensure_resident=config.sender_ensure_resident,
    )


def run_wb_channel(config: WBChannelConfig) -> ChannelRunResult:
    """Run one complete WB covert-channel transmission."""
    message = config.resolve_message()
    schedule = config.codec.encode_message(message)

    decoder = resolve_channel_decoder(config)
    trace = transmit_symbol_schedule(config, schedule)

    levels = decoder.classify_many(trace.latencies())
    received_raw = config.codec.decode_message(levels)
    report = evaluate_transmission(
        sent=message,
        received_raw=received_raw,
        preamble_length=len(config.preamble),
        alignment_slack=config.alignment_slack_symbols * config.codec.bits_per_symbol,
    )
    return ChannelRunResult(
        sent_bits=tuple(message),
        received_bits=tuple(report.received),
        bit_error_rate=report.ber,
        errors=report.errors,
        alignment_offset=report.offset,
        rate_kbps=config.rate_kbps,
        period_cycles=config.period_cycles,
        samples=trace.samples,
        decoder=decoder,
        sender_perf=trace.sender_perf,
        receiver_perf=trace.receiver_perf,
        elapsed_cycles=trace.elapsed_cycles,
        fault_summary=trace.fault_summary,
    )


def quick_channel_run(
    message_bits: int = 64,
    period_cycles: int = 5500,
    d: int = 1,
    seed: int = 0,
) -> ChannelRunResult:
    """One-call demo run with the binary codec (see the README quickstart)."""
    return run_wb_channel(
        WBChannelConfig(
            codec=BinaryDirtyCodec(d_on=d),
            period_cycles=period_cycles,
            message_bits=message_bits,
            seed=seed,
        )
    )
