"""Prime+Probe covert channel (Osvik, Shamir & Tromer).

The classic contention-based Hit+Miss channel the paper contrasts with in
Sections 6 and 6.1.  The receiver *primes* the target set with its own W
lines, waits, then *probes* them in reverse order counting misses; the
sender evicts receiver lines by loading its own conflict lines to send 1.

Reproduced properties the experiments rely on:

* a noise line loaded by any third process also evicts a receiver line,
  so 0-symbols decode as false 1s under pollution (stability experiment);
* under a random replacement policy the receiver cannot reliably keep the
  set primed and 0-8 misses appear per probe (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.bits import random_bits
from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.common.units import cycles_to_kbps
from repro.analysis.ber import DEFAULT_PREAMBLE, evaluate_transmission
from repro.channels.results import TransmissionResult
from repro.channels.testbench import ChannelTestbench, TestbenchConfig
from repro.cpu.noise import SchedulerNoise
from repro.cpu.ops import Load, RdTSC, SpinUntil
from repro.cpu.perf_counters import PerfReport
from repro.cpu.thread import OpGenerator, Program
from repro.mem.sets import build_set_conflicting_lines

SENDER_TID = 0
RECEIVER_TID = 1


@dataclass
class PrimeProbeSenderProgram(Program):
    """Loads ``evict_lines`` of its conflict lines once per 1-window."""

    lines: Sequence[int]
    message: Sequence[int]
    period: int
    start_time: int
    evict_lines: int = 2

    def __post_init__(self) -> None:
        if not 1 <= self.evict_lines <= len(self.lines):
            raise ConfigurationError(
                f"evict_lines must be in [1, {len(self.lines)}], got {self.evict_lines}"
            )

    def run(self) -> OpGenerator:
        for line in self.lines:
            yield Load(line)  # warm-up (also leaves lines in L2)
        t_last = yield SpinUntil(self.start_time)
        for bit in self.message:
            if bit:
                for line in self.lines[: self.evict_lines]:
                    yield Load(line)
            t_last = yield SpinUntil(t_last + self.period)


@dataclass
class PrimeProbeReceiverProgram(Program):
    """Primes the set, waits one period, probes in reverse order."""

    lines: Sequence[int]
    period: int
    start_time: int
    num_samples: int
    phase: float = 0.5

    def __post_init__(self) -> None:
        if len(self.lines) < 2:
            raise ConfigurationError("Prime+Probe needs at least two lines")
        #: Per sample: (tsc, number of probe misses).
        self.samples: List[Tuple[int, int]] = []
        #: L1-hit/miss latency boundary used while probing.
        self.miss_threshold: float = 8.0

    def run(self) -> OpGenerator:
        # Initial prime.
        for line in self.lines:
            yield Load(line)
        t_last = yield SpinUntil(self.start_time + int(self.phase * self.period))
        for _ in range(self.num_samples):
            now = yield RdTSC()
            misses = 0
            # Reverse traversal avoids thrashing on LRU-like policies
            # (Section 6.1 notes this trick fails under random policies).
            for line in reversed(self.lines):
                latency = yield Load(line)
                if latency > self.miss_threshold:
                    misses += 1
            self.samples.append((now, misses))
            t_last = yield SpinUntil(t_last + self.period)

    def miss_counts(self) -> List[int]:
        """Probe miss counts in sample order."""
        return [misses for _, misses in self.samples]


@dataclass
class PrimeProbeConfig:
    """One Prime+Probe covert-channel run."""

    period_cycles: int = 5500
    message_bits: int = 128
    message: Optional[Sequence[int]] = None
    preamble: Sequence[int] = field(default_factory=lambda: list(DEFAULT_PREAMBLE))
    target_set: Optional[int] = 21
    seed: int = 0
    scheduler_noise: Optional[SchedulerNoise] = None
    hierarchy_overrides: Dict[str, object] = field(default_factory=dict)
    alignment_slack_symbols: int = 4
    start_time: int = 30000
    sender_evict_lines: int = 2

    def resolve_message(self) -> List[int]:
        """Preamble plus payload."""
        preamble = list(self.preamble)
        if self.message is not None:
            return list(self.message)
        payload = self.message_bits - len(preamble)
        if payload < 0:
            raise ConfigurationError("message_bits shorter than preamble")
        rng = derive_rng(ensure_rng(self.seed), "message")
        return preamble + random_bits(payload, rng)

    @property
    def rate_kbps(self) -> float:
        """Nominal rate of this configuration."""
        return cycles_to_kbps(self.period_cycles)


def run_prime_probe_channel(config: PrimeProbeConfig) -> TransmissionResult:
    """Run one Prime+Probe transmission and score it."""
    message = config.resolve_message()
    bench = ChannelTestbench(
        TestbenchConfig(
            seed=config.seed,
            hierarchy_overrides=dict(config.hierarchy_overrides),
            scheduler_noise=config.scheduler_noise,
        )
    )
    target_set = bench.pick_target_set(config.target_set)
    layout = bench.l1_layout
    ways = bench.hierarchy.l1.associativity

    sender_space = bench.new_space(pid=SENDER_TID)
    receiver_space = bench.new_space(pid=RECEIVER_TID)
    sender_lines = build_set_conflicting_lines(
        sender_space, layout, target_set, config.sender_evict_lines
    )
    receiver_lines = build_set_conflicting_lines(
        receiver_space, layout, target_set, ways
    )

    sender = PrimeProbeSenderProgram(
        lines=sender_lines,
        message=message,
        period=config.period_cycles,
        start_time=config.start_time,
        evict_lines=config.sender_evict_lines,
    )
    receiver = PrimeProbeReceiverProgram(
        lines=receiver_lines,
        period=config.period_cycles,
        start_time=config.start_time,
        num_samples=len(message) + config.alignment_slack_symbols,
    )
    bench.add_thread(SENDER_TID, sender_space, sender, name="pp-sender")
    bench.add_thread(RECEIVER_TID, receiver_space, receiver, name="pp-receiver")
    core = bench.run()

    received_raw = [1 if misses > 0 else 0 for misses in receiver.miss_counts()]
    report = evaluate_transmission(
        sent=message,
        received_raw=received_raw,
        preamble_length=len(config.preamble),
        alignment_slack=config.alignment_slack_symbols,
    )
    elapsed = core.elapsed_cycles()
    return TransmissionResult(
        channel="Prime+Probe",
        sent_bits=tuple(message),
        received_bits=tuple(report.received),
        bit_error_rate=report.ber,
        errors=report.errors,
        rate_kbps=config.rate_kbps,
        period_cycles=config.period_cycles,
        sender_perf=PerfReport.from_stats(bench.hierarchy.stats, SENDER_TID, elapsed),
        receiver_perf=PerfReport.from_stats(
            bench.hierarchy.stats, RECEIVER_TID, elapsed
        ),
        elapsed_cycles=elapsed,
    )
