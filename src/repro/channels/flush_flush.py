"""Flush+Flush covert channel (Gruss et al.).

A stealthier sibling of Flush+Reload: the receiver only ever executes
``clflush`` and decodes from the *flush* latency, which is higher when the
line was resident.  Like Flush+Reload it needs shared memory and
``clflush`` — the two deployment constraints the WB channel avoids
(Section 6 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.bits import random_bits
from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.common.units import cycles_to_kbps
from repro.analysis.ber import DEFAULT_PREAMBLE, evaluate_transmission
from repro.channels.flush_reload import FlushReloadSenderProgram
from repro.channels.results import TransmissionResult
from repro.channels.testbench import ChannelTestbench, TestbenchConfig, share_buffer
from repro.cpu.noise import SchedulerNoise
from repro.cpu.ops import Flush, RdTSC, SpinUntil
from repro.cpu.perf_counters import PerfReport
from repro.cpu.thread import OpGenerator, Program

SENDER_TID = 0
RECEIVER_TID = 1


@dataclass
class FlushFlushReceiverProgram(Program):
    """Times one ``clflush`` of the shared line per window."""

    shared_line: int
    period: int
    start_time: int
    num_samples: int
    phase: float = 0.9

    def __post_init__(self) -> None:
        #: (tsc, flush latency) per sample.
        self.samples: List[Tuple[int, int]] = []

    def run(self) -> OpGenerator:
        yield Flush(self.shared_line)  # start from a known-uncached state
        t_last = yield SpinUntil(self.start_time + int(self.phase * self.period))
        for _ in range(self.num_samples):
            now = yield RdTSC()
            latency = yield Flush(self.shared_line)
            self.samples.append((now, latency))
            t_last = yield SpinUntil(t_last + self.period)

    def latencies(self) -> List[int]:
        """Flush latency series."""
        return [latency for _, latency in self.samples]


@dataclass
class FlushFlushConfig:
    """One Flush+Flush covert-channel run."""

    period_cycles: int = 5500
    message_bits: int = 128
    message: Optional[Sequence[int]] = None
    preamble: Sequence[int] = field(default_factory=lambda: list(DEFAULT_PREAMBLE))
    seed: int = 0
    scheduler_noise: Optional[SchedulerNoise] = None
    hierarchy_overrides: Dict[str, object] = field(default_factory=dict)
    alignment_slack_symbols: int = 4
    start_time: int = 30000
    #: Flushes slower than this count as "line was cached" (bit 1).  The
    #: model's resident flush costs flush_base + flush_present_extra.
    cached_threshold: float = 17.0

    def resolve_message(self) -> List[int]:
        """Preamble plus payload."""
        preamble = list(self.preamble)
        if self.message is not None:
            return list(self.message)
        payload = self.message_bits - len(preamble)
        if payload < 0:
            raise ConfigurationError("message_bits shorter than preamble")
        rng = derive_rng(ensure_rng(self.seed), "message")
        return preamble + random_bits(payload, rng)

    @property
    def rate_kbps(self) -> float:
        """Nominal rate of this configuration."""
        return cycles_to_kbps(self.period_cycles)


def run_flush_flush_channel(config: FlushFlushConfig) -> TransmissionResult:
    """Run one Flush+Flush transmission and score it."""
    message = config.resolve_message()
    bench = ChannelTestbench(
        TestbenchConfig(
            seed=config.seed,
            hierarchy_overrides=dict(config.hierarchy_overrides),
            scheduler_noise=config.scheduler_noise,
        )
    )
    sender_space = bench.new_space(pid=SENDER_TID)
    receiver_space = bench.new_space(pid=RECEIVER_TID)
    shared_va = sender_space.allocate_buffer(4096)
    receiver_space.allocate_buffer(4096)
    share_buffer(sender_space, receiver_space, shared_va, 4096)

    sender = FlushReloadSenderProgram(
        shared_line=shared_va,
        message=message,
        period=config.period_cycles,
        start_time=config.start_time,
    )
    receiver = FlushFlushReceiverProgram(
        shared_line=shared_va,
        period=config.period_cycles,
        start_time=config.start_time,
        num_samples=len(message) + config.alignment_slack_symbols,
    )
    bench.add_thread(SENDER_TID, sender_space, sender, name="ff-sender")
    bench.add_thread(RECEIVER_TID, receiver_space, receiver, name="ff-receiver")
    core = bench.run()

    received_raw = [
        1 if latency > config.cached_threshold else 0
        for latency in receiver.latencies()
    ]
    report = evaluate_transmission(
        sent=message,
        received_raw=received_raw,
        preamble_length=len(config.preamble),
        alignment_slack=config.alignment_slack_symbols,
    )
    elapsed = core.elapsed_cycles()
    return TransmissionResult(
        channel="Flush+Flush",
        sent_bits=tuple(message),
        received_bits=tuple(report.received),
        bit_error_rate=report.ber,
        errors=report.errors,
        rate_kbps=config.rate_kbps,
        period_cycles=config.period_cycles,
        sender_perf=PerfReport.from_stats(bench.hierarchy.stats, SENDER_TID, elapsed),
        receiver_perf=PerfReport.from_stats(
            bench.hierarchy.stats, RECEIVER_TID, elapsed
        ),
        elapsed_cycles=elapsed,
    )
