"""Shared testbench: one physical core, a hierarchy, per-process spaces.

Every channel (WB and the baselines) and several experiments need the same
scaffolding: a frame allocator, a configured cache hierarchy, one address
space per simulated process, and an SMT core to interleave the programs.
The testbench centralises that assembly so channel code only describes the
*programs*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.cache.configs import XeonE5_2650Config, make_xeon_hierarchy
from repro.cache.hierarchy import CacheHierarchy, HierarchyFactory
from repro.cpu.noise import SchedulerNoise
from repro.cpu.smt import SMTCore
from repro.cpu.thread import HardwareThread, Program
from repro.cpu.tsc import TimestampCounter
from repro.mem.address_space import AddressSpace, FrameAllocator


@dataclass
class TestbenchConfig:
    """Platform-level knobs shared by every channel run."""

    seed: int = 0
    #: Overrides applied to :class:`XeonE5_2650Config` fields, e.g.
    #: ``{"l1_policy": "random"}``.
    hierarchy_overrides: Dict[str, object] = field(default_factory=dict)
    #: When set, builds the hierarchy instead of :func:`make_xeon_hierarchy`
    #: (the defense evaluations inject PLcache/partitioned/... variants
    #: this way).  Receives the bench's derived RNG.
    hierarchy_factory: Optional[HierarchyFactory] = None
    #: ``None`` enables the default OS noise; pass
    #: :meth:`SchedulerNoise.disabled` for clean-room runs.
    scheduler_noise: Optional[SchedulerNoise] = None
    tsc: TimestampCounter = field(default_factory=TimestampCounter)
    #: Upper bound on simulated cycles, guarding against runaway spins.
    max_cycles: float = 5e9


class ChannelTestbench:
    """Owns the simulated machine for one channel run."""

    def __init__(
        self,
        config: Optional[TestbenchConfig] = None,
        hierarchy: Optional[CacheHierarchy] = None,
    ) -> None:
        self.config = config or TestbenchConfig()
        self.rng = ensure_rng(self.config.seed)
        if hierarchy is not None:
            self.hierarchy = hierarchy
        elif self.config.hierarchy_factory is not None:
            self.hierarchy = self.config.hierarchy_factory(
                derive_rng(self.rng, "hierarchy")
            )
        else:
            self.hierarchy = make_xeon_hierarchy(
                rng=derive_rng(self.rng, "hierarchy"),
                **self.config.hierarchy_overrides,
            )
        self.allocator = FrameAllocator()
        self._spaces: Dict[int, AddressSpace] = {}
        self._threads: List[HardwareThread] = []

    # ------------------------------------------------------------------
    # Process/thread assembly
    # ------------------------------------------------------------------
    def new_space(self, pid: int) -> AddressSpace:
        """A fresh address space for process ``pid`` (no sharing)."""
        if pid in self._spaces:
            raise ConfigurationError(f"pid {pid} already has an address space")
        space = AddressSpace(pid=pid, allocator=self.allocator)
        self._spaces[pid] = space
        return space

    def space(self, pid: int) -> AddressSpace:
        """The address space previously created for ``pid``."""
        try:
            return self._spaces[pid]
        except KeyError:
            raise ConfigurationError(f"no address space for pid {pid}")

    def add_thread(
        self, tid: int, space: AddressSpace, program: Program, name: str
    ) -> HardwareThread:
        """Register a hardware thread to run in this bench."""
        thread = HardwareThread(tid=tid, space=space, program=program, name=name)
        self._threads.append(thread)
        return thread

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> SMTCore:
        """Run all registered threads to completion; returns the core."""
        if not self._threads:
            raise ConfigurationError("no threads registered on the testbench")
        noise = self.config.scheduler_noise
        if noise is None:
            noise = SchedulerNoise()
        core = SMTCore(
            hierarchy=self.hierarchy,
            threads=self._threads,
            tsc=self.config.tsc,
            scheduler_noise=noise,
            rng=derive_rng(self.rng, "core"),
            max_cycles=self.config.max_cycles,
        )
        core.run()
        return core

    @property
    def l1_layout(self):
        """Address layout of the L1 (what set builders index with)."""
        return self.hierarchy.l1.layout

    def pick_target_set(self, requested: Optional[int] = None) -> int:
        """Validate or choose the target set for a channel run."""
        num_sets = self.l1_layout.num_sets
        if requested is None:
            return self.rng.randrange(num_sets)
        if not 0 <= requested < num_sets:
            raise ConfigurationError(
                f"target set {requested} out of range [0, {num_sets})"
            )
        return requested


def share_buffer(
    source: AddressSpace, destination: AddressSpace, base: int, size: int
) -> None:
    """Map ``[base, base+size)`` of ``source`` into ``destination`` (shared).

    Flush+Reload and Flush+Flush require a shared read-only region (a
    shared library page in the paper's taxonomy).  Sharing is modelled by
    aliasing the page-table entries, so both processes' accesses hit the
    same physical lines.
    """
    if size <= 0:
        raise ConfigurationError(f"size must be positive, got {size}")
    first_page = base >> 12
    last_page = (base + size - 1) >> 12
    for page in range(first_page, last_page + 1):
        source.translate(page << 12)  # ensure mapped
        destination.page_table[page] = source.page_table[page]
