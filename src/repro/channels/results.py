"""Shared result type for the baseline channels.

The WB channel has its richer :class:`~repro.channels.wb.protocol.ChannelRunResult`;
the baselines (LRU, Prime+Probe, Flush+Reload, Flush+Flush) share this
simpler record, which is all the comparison experiments of Sections 6-7
need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cpu.perf_counters import PerfReport


@dataclass(frozen=True)
class TransmissionResult:
    """Outcome of one baseline-channel transmission."""

    channel: str
    sent_bits: Tuple[int, ...]
    received_bits: Tuple[int, ...]
    bit_error_rate: float
    errors: int
    rate_kbps: float
    period_cycles: int
    sender_perf: Optional[PerfReport]
    receiver_perf: Optional[PerfReport]
    elapsed_cycles: float

    def __str__(self) -> str:
        return (
            f"{self.channel} @ {self.rate_kbps:.0f} Kbps: BER "
            f"{self.bit_error_rate:.2%} over {len(self.sent_bits)} bits"
        )
