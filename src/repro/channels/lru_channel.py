"""The LRU-state covert channel of Xiong & Szefer (HPCA 2020).

The paper's closest relative and its main comparison baseline (Section 6).
In the no-shared-memory variant the receiver keeps the target set full of
its own lines with line 0 deliberately the oldest; the sender transmits 1
by *loading* one conflict line of its own, which evicts the receiver's
line 0.  The receiver decodes by timing a reload of line 0: an L1 hit means
0, a miss means 1.

Contrast with the WB channel, reproduced here deliberately:

* the sender must keep modulating within the window (we model the paper's
  description with ``accesses_per_symbol`` sender loads per 1-symbol),
  giving it roughly twice the WB sender's cache traffic (Table 7);
* any noise line loaded into the set by a third process also evicts
  line 0, producing false 1s (Figure 9a) — the stability experiment
  exploits exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.bits import random_bits
from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.common.units import cycles_to_kbps
from repro.analysis.ber import DEFAULT_PREAMBLE, evaluate_transmission
from repro.channels.results import TransmissionResult
from repro.channels.testbench import ChannelTestbench, TestbenchConfig
from repro.cpu.noise import SchedulerNoise
from repro.cpu.ops import Load, RdTSC, SpinUntil
from repro.cpu.perf_counters import PerfReport
from repro.cpu.thread import OpGenerator, Program
from repro.mem.sets import build_set_conflicting_lines

SENDER_TID = 0
RECEIVER_TID = 1


@dataclass
class LRUSenderProgram(Program):
    """Loads a conflict line ``accesses_per_symbol`` times per 1-window."""

    line: int
    message: Sequence[int]
    period: int
    start_time: int
    accesses_per_symbol: int = 1

    def __post_init__(self) -> None:
        if self.accesses_per_symbol <= 0:
            raise ConfigurationError("accesses_per_symbol must be positive")

    def run(self) -> OpGenerator:
        yield Load(self.line)  # warm-up
        t_last = yield SpinUntil(self.start_time)
        sub_period = self.period // self.accesses_per_symbol
        for bit in self.message:
            if bit:
                for step in range(self.accesses_per_symbol):
                    yield Load(self.line)
                    if step + 1 < self.accesses_per_symbol:
                        yield SpinUntil(t_last + (step + 1) * sub_period)
            t_last = yield SpinUntil(t_last + self.period)


@dataclass
class LRUReceiverProgram(Program):
    """Maintains the set with line 0 oldest; times line-0 reloads."""

    lines: Sequence[int]  # lines[0] is the probed line
    period: int
    start_time: int
    num_samples: int
    phase: float = 0.5

    def __post_init__(self) -> None:
        if len(self.lines) < 2:
            raise ConfigurationError("LRU receiver needs at least two lines")
        #: Latency of the line-0 probe per sample.
        self.samples: List[Tuple[int, int]] = []

    def run(self) -> OpGenerator:
        # Prime: line 0 first so it is the oldest, then the rest.
        for line in self.lines:
            yield Load(line)
        t_last = yield SpinUntil(self.start_time + int(self.phase * self.period))
        for _ in range(self.num_samples):
            now = yield RdTSC()
            # The probe uses the dependent-load measurement of Section 4.2,
            # so the recorded value is the load latency itself.
            latency = yield Load(self.lines[0])
            self.samples.append((now, latency))
            # Re-establish the set: line 0 was just loaded (now newest), so
            # refresh the others to push line 0 back toward LRU.
            for line in self.lines[1:]:
                yield Load(line)
            t_last = yield SpinUntil(t_last + self.period)

    def latencies(self) -> List[int]:
        """Probe latency series in sample order."""
        return [latency for _, latency in self.samples]


@dataclass
class LRUChannelConfig:
    """One LRU-channel run (defaults mirror the WB experiments' framing)."""

    period_cycles: int = 5500
    message_bits: int = 128
    message: Optional[Sequence[int]] = None
    preamble: Sequence[int] = field(default_factory=lambda: list(DEFAULT_PREAMBLE))
    target_set: Optional[int] = 21
    seed: int = 0
    scheduler_noise: Optional[SchedulerNoise] = None
    hierarchy_overrides: Dict[str, object] = field(default_factory=dict)
    alignment_slack_symbols: int = 4
    start_time: int = 30000
    #: How many times the sender re-touches its line per 1-window.  One
    #: access is enough against a receiver sampling once per window; the
    #: Table 7 stealth comparison uses 2 to model Xiong's Tr < Ts protocol
    #: where the sender must keep the LRU state fresh between receiver
    #: samples (that cadence is exactly why the LRU sender produces ~1.7x
    #: the WB sender's cache loads).
    sender_accesses_per_symbol: int = 1
    #: Latency above which a line-0 probe counts as a miss.  The L1 hit is
    #: ~4-5 cycles and an L2 hit ~11+, so 8 separates them cleanly; the
    #: probe bracket adds the TSC overhead, handled below.
    miss_threshold: float = 8.0

    def resolve_message(self) -> List[int]:
        """Preamble plus payload, like the WB config."""
        preamble = list(self.preamble)
        if self.message is not None:
            return list(self.message)
        payload = self.message_bits - len(preamble)
        if payload < 0:
            raise ConfigurationError("message_bits shorter than preamble")
        rng = derive_rng(ensure_rng(self.seed), "message")
        return preamble + random_bits(payload, rng)

    @property
    def rate_kbps(self) -> float:
        """Nominal rate of this configuration."""
        return cycles_to_kbps(self.period_cycles)


def run_lru_channel(config: LRUChannelConfig) -> TransmissionResult:
    """Run one LRU-channel transmission and score it."""
    message = config.resolve_message()
    bench = ChannelTestbench(
        TestbenchConfig(
            seed=config.seed,
            hierarchy_overrides=dict(config.hierarchy_overrides),
            scheduler_noise=config.scheduler_noise,
        )
    )
    target_set = bench.pick_target_set(config.target_set)
    layout = bench.l1_layout
    ways = bench.hierarchy.l1.associativity

    sender_space = bench.new_space(pid=SENDER_TID)
    receiver_space = bench.new_space(pid=RECEIVER_TID)
    sender_line = build_set_conflicting_lines(sender_space, layout, target_set, 1)[0]
    receiver_lines = build_set_conflicting_lines(
        receiver_space, layout, target_set, ways
    )

    sender = LRUSenderProgram(
        line=sender_line,
        message=message,
        period=config.period_cycles,
        start_time=config.start_time,
        accesses_per_symbol=config.sender_accesses_per_symbol,
    )
    receiver = LRUReceiverProgram(
        lines=receiver_lines,
        period=config.period_cycles,
        start_time=config.start_time,
        num_samples=len(message) + config.alignment_slack_symbols,
    )
    bench.add_thread(SENDER_TID, sender_space, sender, name="lru-sender")
    bench.add_thread(RECEIVER_TID, receiver_space, receiver, name="lru-receiver")
    core = bench.run()

    received_raw = [
        1 if latency > config.miss_threshold else 0
        for latency in receiver.latencies()
    ]
    report = evaluate_transmission(
        sent=message,
        received_raw=received_raw,
        preamble_length=len(config.preamble),
        alignment_slack=config.alignment_slack_symbols,
    )
    elapsed = core.elapsed_cycles()
    return TransmissionResult(
        channel="LRU",
        sent_bits=tuple(message),
        received_bits=tuple(report.received),
        bit_error_rate=report.ber,
        errors=report.errors,
        rate_kbps=config.rate_kbps,
        period_cycles=config.period_cycles,
        sender_perf=PerfReport.from_stats(bench.hierarchy.stats, SENDER_TID, elapsed),
        receiver_perf=PerfReport.from_stats(
            bench.hierarchy.stats, RECEIVER_TID, elapsed
        ),
        elapsed_cycles=elapsed,
    )
