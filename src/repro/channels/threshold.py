"""Latency-threshold decoding.

The receiver turns each measured replacement latency into a dirty-line
level.  Figure 4 of the paper shows the per-level latency CDFs as narrow,
well-separated bands; the decoder therefore calibrates one threshold at the
midpoint between the medians of adjacent levels (the dotted lines in
Figures 5 and 7) and classifies by interval.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.common.errors import ConfigurationError, ProtocolError


@dataclass(frozen=True)
class ThresholdDecoder:
    """Maps a latency to the nearest calibrated dirty-line level.

    ``levels`` are the dirty-line counts in ascending order and
    ``thresholds[i]`` separates ``levels[i]`` from ``levels[i + 1]``.
    """

    levels: Sequence[int]
    thresholds: Sequence[float]
    medians: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.levels) < 2:
            raise ConfigurationError("need at least two levels to decode")
        if len(self.thresholds) != len(self.levels) - 1:
            raise ConfigurationError(
                f"{len(self.levels)} levels need {len(self.levels) - 1} "
                f"thresholds, got {len(self.thresholds)}"
            )
        if list(self.levels) != sorted(self.levels):
            raise ConfigurationError("levels must be ascending")
        if list(self.thresholds) != sorted(self.thresholds):
            raise ConfigurationError("thresholds must be ascending")

    @classmethod
    def calibrate(
        cls,
        samples_by_level: Dict[int, Sequence[float]],
        min_separation: float = 3.0,
    ) -> "ThresholdDecoder":
        """Build a decoder from labelled calibration measurements.

        ``samples_by_level`` maps each dirty-line count to latency samples
        observed with exactly that many dirty lines in the target set.
        Adjacent level medians must be monotone and at least
        ``min_separation`` cycles apart; anything closer is
        indistinguishable from measurement noise and means the machine
        carries no dirty-state signal (write-through caches, partitioned
        caches from the victim's side, ...).
        """
        if len(samples_by_level) < 2:
            raise ConfigurationError("calibration needs at least two levels")
        levels = sorted(samples_by_level)
        medians: List[float] = []
        for level in levels:
            samples = samples_by_level[level]
            if not samples:
                raise ConfigurationError(f"no calibration samples for level {level}")
            medians.append(statistics.median(samples))
        gaps = [high - low for low, high in zip(medians, medians[1:])]
        if any(gap < min_separation for gap in gaps):
            raise ConfigurationError(
                "calibration medians are not separated in the dirty-line "
                f"count: {dict(zip(levels, medians))}; the latency signal "
                "is absent (is the cache write-through?)"
            )
        thresholds = [
            (low + high) / 2.0 for low, high in zip(medians, medians[1:])
        ]
        return cls(levels=tuple(levels), thresholds=tuple(thresholds), medians=tuple(medians))

    def classify(self, latency: float) -> int:
        """The dirty-line level whose calibrated band contains ``latency``."""
        for threshold, level in zip(self.thresholds, self.levels):
            if latency < threshold:
                return level
        return self.levels[-1]

    def classify_many(self, latencies: Sequence[float]) -> List[int]:
        """Vector form of :meth:`classify`."""
        return [self.classify(latency) for latency in latencies]

    def separation(self) -> float:
        """Smallest gap between adjacent level medians (signal strength)."""
        return min(high - low for low, high in zip(self.medians, self.medians[1:]))

    def describe(self) -> str:
        """One-line human-readable summary for experiment logs."""
        pairs = ", ".join(
            f"d={level}:{median:.0f}cy" for level, median in zip(self.levels, self.medians)
        )
        return f"ThresholdDecoder({pairs})"


class AdaptiveThresholdDecoder:
    """A :class:`ThresholdDecoder` that recalibrates itself online.

    Real machines drift: DVFS and thermal state move the whole latency
    distribution over seconds, and a decoder frozen at its calibration
    medians mistakes drift for signal — the raw channel's dominant
    failure under the ``drift`` fault class.  This wrapper tracks each
    level's median with an exponentially weighted moving average: every
    classified sample pulls its level's running median toward the
    observed latency, so thresholds (still the midpoints between
    adjacent medians) follow the drift instead of being crossed by it.

    Two guard rails keep adaptation from destroying the decoder:

    * per-update steps are clamped to ``max_step_cycles``, so one
      misclassified sample cannot teleport a median;
    * samples further than ``outlier_cycles`` from their nearest median
      (co-runner burst spikes, DRAM refills) classify normally but do
      not update anything.
    """

    def __init__(
        self,
        base: ThresholdDecoder,
        alpha: float = 0.2,
        max_step_cycles: float = 3.0,
        outlier_cycles: float = 25.0,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if max_step_cycles <= 0 or outlier_cycles <= 0:
            raise ConfigurationError(
                "max_step_cycles and outlier_cycles must be positive"
            )
        self.base = base
        self.levels = tuple(base.levels)
        self.alpha = alpha
        self.max_step_cycles = max_step_cycles
        self.outlier_cycles = outlier_cycles
        self._medians: List[float] = [float(m) for m in base.medians]
        self._initial: Sequence[float] = tuple(self._medians)
        self.updates = 0
        self.outliers = 0

    @property
    def medians(self) -> Sequence[float]:
        """Current (adapted) level medians."""
        return tuple(self._medians)

    @property
    def thresholds(self) -> Sequence[float]:
        """Current thresholds: midpoints between adjacent medians."""
        return tuple(
            (low + high) / 2.0
            for low, high in zip(self._medians, self._medians[1:])
        )

    def classify(self, latency: float) -> int:
        """Interval classification against the *current* thresholds."""
        for threshold, level in zip(self.thresholds, self.levels):
            if latency < threshold:
                return level
        return self.levels[-1]

    def observe(self, latency: float) -> int:
        """Classify ``latency`` and fold it into the running medians."""
        level = self.classify(latency)
        index = self.levels.index(level)
        residual = latency - self._medians[index]
        if abs(residual) > self.outlier_cycles:
            self.outliers += 1
            return level
        step = self.alpha * residual
        step = max(-self.max_step_cycles, min(self.max_step_cycles, step))
        updated = self._medians[index] + step
        # Keep the medians strictly ordered; an update that would cross a
        # neighbour is dropped (the neighbour's own updates will make room).
        lower_ok = index == 0 or updated > self._medians[index - 1]
        upper_ok = (
            index == len(self._medians) - 1 or updated < self._medians[index + 1]
        )
        if lower_ok and upper_ok:
            self._medians[index] = updated
            self.updates += 1
        return level

    def classify_many(self, latencies: Sequence[float]) -> List[int]:
        """Classify a latency series, adapting as it goes."""
        return [self.observe(latency) for latency in latencies]

    def drift(self) -> List[float]:
        """Per-level adaptation distance from the calibrated medians."""
        return [
            current - initial
            for current, initial in zip(self._medians, self._initial)
        ]

    def describe(self) -> str:
        """One-line summary mirroring :meth:`ThresholdDecoder.describe`."""
        pairs = ", ".join(
            f"d={level}:{median:.1f}cy"
            for level, median in zip(self.levels, self._medians)
        )
        return f"AdaptiveThresholdDecoder({pairs}, updates={self.updates})"


def majority_vote(bits: Sequence[int]) -> int:
    """Majority of a bit sequence (ties break to 1).

    Used when the receiver oversamples a symbol window and has several
    classifications for one symbol.
    """
    if not bits:
        raise ProtocolError("cannot vote on an empty sample list")
    ones = sum(bits)
    return 1 if ones * 2 >= len(bits) else 0
