"""Latency-threshold decoding.

The receiver turns each measured replacement latency into a dirty-line
level.  Figure 4 of the paper shows the per-level latency CDFs as narrow,
well-separated bands; the decoder therefore calibrates one threshold at the
midpoint between the medians of adjacent levels (the dotted lines in
Figures 5 and 7) and classifies by interval.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.common.errors import ConfigurationError, ProtocolError


@dataclass(frozen=True)
class ThresholdDecoder:
    """Maps a latency to the nearest calibrated dirty-line level.

    ``levels`` are the dirty-line counts in ascending order and
    ``thresholds[i]`` separates ``levels[i]`` from ``levels[i + 1]``.
    """

    levels: Sequence[int]
    thresholds: Sequence[float]
    medians: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.levels) < 2:
            raise ConfigurationError("need at least two levels to decode")
        if len(self.thresholds) != len(self.levels) - 1:
            raise ConfigurationError(
                f"{len(self.levels)} levels need {len(self.levels) - 1} "
                f"thresholds, got {len(self.thresholds)}"
            )
        if list(self.levels) != sorted(self.levels):
            raise ConfigurationError("levels must be ascending")
        if list(self.thresholds) != sorted(self.thresholds):
            raise ConfigurationError("thresholds must be ascending")

    @classmethod
    def calibrate(
        cls,
        samples_by_level: Dict[int, Sequence[float]],
        min_separation: float = 3.0,
    ) -> "ThresholdDecoder":
        """Build a decoder from labelled calibration measurements.

        ``samples_by_level`` maps each dirty-line count to latency samples
        observed with exactly that many dirty lines in the target set.
        Adjacent level medians must be monotone and at least
        ``min_separation`` cycles apart; anything closer is
        indistinguishable from measurement noise and means the machine
        carries no dirty-state signal (write-through caches, partitioned
        caches from the victim's side, ...).
        """
        if len(samples_by_level) < 2:
            raise ConfigurationError("calibration needs at least two levels")
        levels = sorted(samples_by_level)
        medians: List[float] = []
        for level in levels:
            samples = samples_by_level[level]
            if not samples:
                raise ConfigurationError(f"no calibration samples for level {level}")
            medians.append(statistics.median(samples))
        gaps = [high - low for low, high in zip(medians, medians[1:])]
        if any(gap < min_separation for gap in gaps):
            raise ConfigurationError(
                "calibration medians are not separated in the dirty-line "
                f"count: {dict(zip(levels, medians))}; the latency signal "
                "is absent (is the cache write-through?)"
            )
        thresholds = [
            (low + high) / 2.0 for low, high in zip(medians, medians[1:])
        ]
        return cls(levels=tuple(levels), thresholds=tuple(thresholds), medians=tuple(medians))

    def classify(self, latency: float) -> int:
        """The dirty-line level whose calibrated band contains ``latency``."""
        for threshold, level in zip(self.thresholds, self.levels):
            if latency < threshold:
                return level
        return self.levels[-1]

    def classify_many(self, latencies: Sequence[float]) -> List[int]:
        """Vector form of :meth:`classify`."""
        return [self.classify(latency) for latency in latencies]

    def separation(self) -> float:
        """Smallest gap between adjacent level medians (signal strength)."""
        return min(high - low for low, high in zip(self.medians, self.medians[1:]))

    def describe(self) -> str:
        """One-line human-readable summary for experiment logs."""
        pairs = ", ".join(
            f"d={level}:{median:.0f}cy" for level, median in zip(self.levels, self.medians)
        )
        return f"ThresholdDecoder({pairs})"


def majority_vote(bits: Sequence[int]) -> int:
    """Majority of a bit sequence (ties break to 1).

    Used when the receiver oversamples a symbol window and has several
    classifications for one symbol.
    """
    if not bits:
        raise ProtocolError("cannot vote on an empty sample list")
    ones = sum(bits)
    return 1 if ones * 2 >= len(bits) else 0
