"""Symbol codecs: mapping message bits to dirty-line counts.

Algorithm 1 of the paper: the sender encodes a symbol by putting ``d``
lines of the target set into the dirty state.

* Binary symbols: ``d = 0`` sends 0, ``d = d_on`` sends 1.  The paper
  evaluates ``d_on`` from 1 to 8 (Figure 6); larger values widen the
  latency gap at the cost of more sender stores.
* Multi-bit symbols: two bits per symbol using well-separated levels;
  the paper picks ``d ∈ {0, 3, 5, 8}`` for ``00, 01, 10, 11`` and avoids
  adjacent levels to keep symbols distinguishable under pollution
  (Section 5, "Symbols Encoding Multi-bits").
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

from repro.common.bits import chunk_bits, validate_bits
from repro.common.errors import ConfigurationError, ProtocolError


class SymbolCodec(abc.ABC):
    """Bidirectional mapping between bit groups and dirty-line counts."""

    @property
    @abc.abstractmethod
    def bits_per_symbol(self) -> int:
        """How many message bits one symbol carries."""

    @property
    @abc.abstractmethod
    def levels(self) -> List[int]:
        """The distinct dirty-line counts this codec uses, ascending."""

    @abc.abstractmethod
    def encode_symbol(self, bits: Sequence[int]) -> int:
        """Dirty-line count for one symbol's bits."""

    @abc.abstractmethod
    def decode_symbol(self, level: int) -> List[int]:
        """Bits for one received dirty-line level."""

    # ------------------------------------------------------------------
    # Whole-message helpers
    # ------------------------------------------------------------------
    def encode_message(self, bits: Sequence[int]) -> List[int]:
        """Dirty-line count per symbol for the whole message."""
        validate_bits(bits)
        return [self.encode_symbol(group) for group in chunk_bits(bits, self.bits_per_symbol)]

    def decode_message(self, levels: Sequence[int]) -> List[int]:
        """Bits for a whole received level sequence."""
        out: List[int] = []
        for level in levels:
            out.extend(self.decode_symbol(level))
        return out

    @property
    def max_dirty_lines(self) -> int:
        """Largest dirty-line count the codec can ask the sender for."""
        return max(self.levels)


class BinaryDirtyCodec(SymbolCodec):
    """One bit per symbol: 0 ↦ no dirty lines, 1 ↦ ``d_on`` dirty lines."""

    def __init__(self, d_on: int = 1, associativity: int = 8) -> None:
        if not 1 <= d_on <= associativity:
            raise ConfigurationError(
                f"d_on must be in [1, {associativity}], got {d_on}"
            )
        self.d_on = d_on
        self.associativity = associativity

    @property
    def bits_per_symbol(self) -> int:
        return 1

    @property
    def levels(self) -> List[int]:
        return [0, self.d_on]

    def encode_symbol(self, bits: Sequence[int]) -> int:
        (bit,) = bits
        if bit not in (0, 1):
            raise ProtocolError(f"binary symbol must be 0 or 1, got {bit!r}")
        return self.d_on if bit else 0

    def decode_symbol(self, level: int) -> List[int]:
        return [1 if level > 0 else 0]

    def __repr__(self) -> str:
        return f"BinaryDirtyCodec(d_on={self.d_on})"


class MultiBitDirtyCodec(SymbolCodec):
    """Multiple bits per symbol via distinct dirty-line levels.

    ``level_map`` maps each symbol value (as an integer) to a dirty-line
    count.  The default is the paper's 2-bit scheme {0, 3, 5, 8}.
    """

    DEFAULT_2BIT: Dict[int, int] = {0b00: 0, 0b01: 3, 0b10: 5, 0b11: 8}

    def __init__(
        self,
        level_map: Dict[int, int] = None,
        associativity: int = 8,
    ) -> None:
        if level_map is None:
            level_map = dict(self.DEFAULT_2BIT)
        if len(level_map) < 2:
            raise ConfigurationError("level_map needs at least two symbols")
        size = len(level_map)
        if size & (size - 1):
            raise ConfigurationError(
                f"level_map must have a power-of-two number of symbols, got {size}"
            )
        expected_symbols = set(range(size))
        if set(level_map) != expected_symbols:
            raise ConfigurationError(
                f"level_map keys must be exactly 0..{size - 1}, got {sorted(level_map)}"
            )
        counts = list(level_map.values())
        if len(set(counts)) != len(counts):
            raise ConfigurationError(f"duplicate dirty-line levels: {sorted(counts)}")
        if any(not 0 <= d <= associativity for d in counts):
            raise ConfigurationError(
                f"dirty-line levels must be within [0, {associativity}]"
            )
        self._bits = size.bit_length() - 1
        self._to_level = dict(level_map)
        self._from_level = {d: symbol for symbol, d in level_map.items()}

    @property
    def bits_per_symbol(self) -> int:
        return self._bits

    @property
    def levels(self) -> List[int]:
        return sorted(self._to_level.values())

    def encode_symbol(self, bits: Sequence[int]) -> int:
        if len(bits) != self._bits:
            raise ProtocolError(
                f"expected {self._bits} bits per symbol, got {len(bits)}"
            )
        value = 0
        for bit in bits:
            if bit not in (0, 1):
                raise ProtocolError(f"symbol bits must be 0/1, got {bit!r}")
            value = (value << 1) | bit
        return self._to_level[value]

    def decode_symbol(self, level: int) -> List[int]:
        try:
            value = self._from_level[level]
        except KeyError:
            raise ProtocolError(
                f"level {level} is not one of the codec levels {self.levels}"
            )
        return [(value >> shift) & 1 for shift in range(self._bits - 1, -1, -1)]

    def symbol_table(self) -> List[Tuple[int, int]]:
        """(symbol value, dirty-line count) pairs, for reports."""
        return sorted(self._to_level.items())

    def __repr__(self) -> str:
        return f"MultiBitDirtyCodec({self._to_level})"
