"""The paper's new classification of cache covert channels (Table 1).

Section 2.1 introduces a taxonomy orthogonal to the classic
contention/reuse split: what the *receiver's decoding access* does —

* **Hit+Miss** — the sender modulates whether a line is cached at all
  (Prime+Probe, Evict+Time, Flush+Reload, LRU channel);
* **Hit+Hit** — both outcomes are hits, distinguished by hit-completion
  time (CacheBleed's bank contention);
* **Miss+Miss** — both outcomes are misses, distinguished by
  miss-completion time (coherence-state channels, and the paper's WB
  channel via the dirty-victim write-back).

The table is encoded as data so documentation, tests and the CLI can render
it and so new channels register their own classification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class TimingClass(enum.Enum):
    """Which receiver-access outcomes carry the information."""

    HIT_MISS = "Hit+Miss"
    HIT_HIT = "Hit+Hit"
    MISS_MISS = "Miss+Miss"


class ContentionClass(enum.Enum):
    """The classic taxonomy the paper extends."""

    CONTENTION = "contention-based"
    REUSE = "reuse-based"


@dataclass(frozen=True)
class ChannelProfile:
    """Classification record for one known cache channel."""

    name: str
    timing_class: TimingClass
    contention_class: ContentionClass
    needs_shared_memory: bool
    needs_clflush: bool
    #: What microarchitectural state the channel modulates.
    modulated_state: str


#: Table 1 of the paper, as data (plus the two flush channels discussed in
#: the text).
KNOWN_CHANNELS: Tuple[ChannelProfile, ...] = (
    ChannelProfile(
        name="Prime+Probe",
        timing_class=TimingClass.HIT_MISS,
        contention_class=ContentionClass.CONTENTION,
        needs_shared_memory=False,
        needs_clflush=False,
        modulated_state="line presence (eviction by contention)",
    ),
    ChannelProfile(
        name="Evict+Time",
        timing_class=TimingClass.HIT_MISS,
        contention_class=ContentionClass.CONTENTION,
        needs_shared_memory=False,
        needs_clflush=False,
        modulated_state="line presence (victim execution time)",
    ),
    ChannelProfile(
        name="LRU",
        timing_class=TimingClass.HIT_MISS,
        contention_class=ContentionClass.CONTENTION,
        needs_shared_memory=False,
        needs_clflush=False,
        modulated_state="replacement metadata (LRU age)",
    ),
    ChannelProfile(
        name="Flush+Reload",
        timing_class=TimingClass.HIT_MISS,
        contention_class=ContentionClass.REUSE,
        needs_shared_memory=True,
        needs_clflush=True,
        modulated_state="line presence (flush vs reuse)",
    ),
    ChannelProfile(
        name="Flush+Flush",
        timing_class=TimingClass.HIT_MISS,
        contention_class=ContentionClass.REUSE,
        needs_shared_memory=True,
        needs_clflush=True,
        modulated_state="line presence (flush latency)",
    ),
    ChannelProfile(
        name="CacheBleed",
        timing_class=TimingClass.HIT_HIT,
        contention_class=ContentionClass.CONTENTION,
        needs_shared_memory=False,
        needs_clflush=False,
        modulated_state="cache bank occupancy",
    ),
    ChannelProfile(
        name="Coherence-state",
        timing_class=TimingClass.MISS_MISS,
        contention_class=ContentionClass.REUSE,
        needs_shared_memory=True,
        needs_clflush=False,
        modulated_state="coherence protocol state of shared blocks",
    ),
    ChannelProfile(
        name="WB",
        timing_class=TimingClass.MISS_MISS,
        contention_class=ContentionClass.CONTENTION,
        needs_shared_memory=False,
        needs_clflush=False,
        modulated_state="dirty bit of victim lines (replacement latency)",
    ),
)


def channels_by_class() -> Dict[TimingClass, List[ChannelProfile]]:
    """Group the known channels by timing class (Table 1's columns)."""
    grouped: Dict[TimingClass, List[ChannelProfile]] = {
        cls: [] for cls in TimingClass
    }
    for profile in KNOWN_CHANNELS:
        grouped[profile.timing_class].append(profile)
    return grouped


def profile(name: str) -> ChannelProfile:
    """Look up one channel's classification by name."""
    for candidate in KNOWN_CHANNELS:
        if candidate.name.lower() == name.lower():
            return candidate
    known = ", ".join(p.name for p in KNOWN_CHANNELS)
    raise KeyError(f"unknown channel {name!r}; known: {known}")


def render_table() -> str:
    """Plain-text rendering of Table 1 for the CLI and docs."""
    lines = ["Classification of cache covert channels (paper Table 1)", ""]
    grouped = channels_by_class()
    for timing_class in TimingClass:
        members = grouped[timing_class]
        names = ", ".join(p.name for p in members) or "-"
        lines.append(f"{timing_class.value:>10}: {names}")
    return "\n".join(lines)
