"""Covert-channel implementations.

:mod:`repro.channels.wb` is the paper's contribution; the sibling modules
implement the channels it compares against in Sections 6-7 (LRU channel,
Prime+Probe, Flush+Reload, Flush+Flush), all running on the same simulated
SMT core so that stability and stealthiness comparisons are apples to
apples.
"""

from repro.channels.encoding import BinaryDirtyCodec, MultiBitDirtyCodec, SymbolCodec
from repro.channels.threshold import ThresholdDecoder
from repro.channels.testbench import ChannelTestbench, TestbenchConfig
from repro.channels.results import TransmissionResult
from repro.channels.coding import BlockCode, HammingCode, RepetitionCode
from repro.channels.lru_channel import LRUChannelConfig, run_lru_channel
from repro.channels.prime_probe import PrimeProbeConfig, run_prime_probe_channel
from repro.channels.flush_reload import FlushReloadConfig, run_flush_reload_channel
from repro.channels.flush_flush import FlushFlushConfig, run_flush_flush_channel
from repro.channels.taxonomy import (
    KNOWN_CHANNELS,
    ChannelProfile,
    TimingClass,
    channels_by_class,
)

__all__ = [
    "BinaryDirtyCodec",
    "BlockCode",
    "ChannelProfile",
    "ChannelTestbench",
    "FlushFlushConfig",
    "FlushReloadConfig",
    "HammingCode",
    "KNOWN_CHANNELS",
    "LRUChannelConfig",
    "MultiBitDirtyCodec",
    "PrimeProbeConfig",
    "RepetitionCode",
    "SymbolCodec",
    "TestbenchConfig",
    "ThresholdDecoder",
    "TimingClass",
    "TransmissionResult",
    "channels_by_class",
    "run_flush_flush_channel",
    "run_flush_reload_channel",
    "run_lru_channel",
    "run_prime_probe_channel",
]
