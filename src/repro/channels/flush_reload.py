"""Flush+Reload covert channel (Yarom & Falkner).

The canonical reuse-based Hit+Miss channel: sender and receiver share a
read-only page (a shared library in practice).  The receiver flushes a
shared line with ``clflush``, waits one period, then reloads it and times
the access: a fast reload means the sender touched the line (bit 1).

Included as the paper's reference point for channels that *do* require
shared memory and ``clflush`` — two requirements the WB channel removes
(Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.bits import random_bits
from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng, ensure_rng
from repro.common.units import cycles_to_kbps
from repro.analysis.ber import DEFAULT_PREAMBLE, evaluate_transmission
from repro.channels.results import TransmissionResult
from repro.channels.testbench import ChannelTestbench, TestbenchConfig, share_buffer
from repro.cpu.noise import SchedulerNoise
from repro.cpu.ops import Flush, Load, RdTSC, SpinUntil
from repro.cpu.perf_counters import PerfReport
from repro.cpu.thread import OpGenerator, Program

SENDER_TID = 0
RECEIVER_TID = 1


@dataclass
class FlushReloadSenderProgram(Program):
    """Loads the shared line once per 1-window."""

    shared_line: int
    message: Sequence[int]
    period: int
    start_time: int

    def run(self) -> OpGenerator:
        t_last = yield SpinUntil(self.start_time)
        for bit in self.message:
            if bit:
                yield Load(self.shared_line)
            t_last = yield SpinUntil(t_last + self.period)


@dataclass
class FlushReloadReceiverProgram(Program):
    """Flush, wait, reload-and-time, once per window."""

    shared_line: int
    period: int
    start_time: int
    num_samples: int
    phase: float = 0.9

    def __post_init__(self) -> None:
        #: (tsc, reload latency) per sample.
        self.samples: List[Tuple[int, int]] = []

    def run(self) -> OpGenerator:
        yield Flush(self.shared_line)
        t_last = yield SpinUntil(self.start_time + int(self.phase * self.period))
        for _ in range(self.num_samples):
            now = yield RdTSC()
            latency = yield Load(self.shared_line)
            self.samples.append((now, latency))
            # Flush immediately so the next window starts uncached.
            yield Flush(self.shared_line)
            t_last = yield SpinUntil(t_last + self.period)

    def latencies(self) -> List[int]:
        """Reload latency series."""
        return [latency for _, latency in self.samples]


@dataclass
class FlushReloadConfig:
    """One Flush+Reload covert-channel run."""

    period_cycles: int = 5500
    message_bits: int = 128
    message: Optional[Sequence[int]] = None
    preamble: Sequence[int] = field(default_factory=lambda: list(DEFAULT_PREAMBLE))
    seed: int = 0
    scheduler_noise: Optional[SchedulerNoise] = None
    hierarchy_overrides: Dict[str, object] = field(default_factory=dict)
    alignment_slack_symbols: int = 4
    start_time: int = 30000
    #: Reloads faster than this count as cache hits (sender touched the
    #: line).  The boundary separates LLC hits from DRAM in the model.
    hit_threshold: float = 100.0

    def resolve_message(self) -> List[int]:
        """Preamble plus payload."""
        preamble = list(self.preamble)
        if self.message is not None:
            return list(self.message)
        payload = self.message_bits - len(preamble)
        if payload < 0:
            raise ConfigurationError("message_bits shorter than preamble")
        rng = derive_rng(ensure_rng(self.seed), "message")
        return preamble + random_bits(payload, rng)

    @property
    def rate_kbps(self) -> float:
        """Nominal rate of this configuration."""
        return cycles_to_kbps(self.period_cycles)


def run_flush_reload_channel(config: FlushReloadConfig) -> TransmissionResult:
    """Run one Flush+Reload transmission and score it."""
    message = config.resolve_message()
    bench = ChannelTestbench(
        TestbenchConfig(
            seed=config.seed,
            hierarchy_overrides=dict(config.hierarchy_overrides),
            scheduler_noise=config.scheduler_noise,
        )
    )
    sender_space = bench.new_space(pid=SENDER_TID)
    receiver_space = bench.new_space(pid=RECEIVER_TID)
    # One shared read-only page; both parties address it at the same VA
    # (shared libraries are usually mapped at different VAs, but the model
    # keys on physical lines, so equal VAs lose no generality).
    shared_va = sender_space.allocate_buffer(4096)
    receiver_space.allocate_buffer(4096)
    share_buffer(sender_space, receiver_space, shared_va, 4096)
    shared_line = shared_va

    sender = FlushReloadSenderProgram(
        shared_line=shared_line,
        message=message,
        period=config.period_cycles,
        start_time=config.start_time,
    )
    receiver = FlushReloadReceiverProgram(
        shared_line=shared_line,
        period=config.period_cycles,
        start_time=config.start_time,
        num_samples=len(message) + config.alignment_slack_symbols,
    )
    bench.add_thread(SENDER_TID, sender_space, sender, name="fr-sender")
    bench.add_thread(RECEIVER_TID, receiver_space, receiver, name="fr-receiver")
    core = bench.run()

    received_raw = [
        1 if latency < config.hit_threshold else 0 for latency in receiver.latencies()
    ]
    report = evaluate_transmission(
        sent=message,
        received_raw=received_raw,
        preamble_length=len(config.preamble),
        alignment_slack=config.alignment_slack_symbols,
    )
    elapsed = core.elapsed_cycles()
    return TransmissionResult(
        channel="Flush+Reload",
        sent_bits=tuple(message),
        received_bits=tuple(report.received),
        bit_error_rate=report.ber,
        errors=report.errors,
        rate_kbps=config.rate_kbps,
        period_cycles=config.period_cycles,
        sender_perf=PerfReport.from_stats(bench.hierarchy.stats, SENDER_TID, elapsed),
        receiver_perf=PerfReport.from_stats(
            bench.hierarchy.stats, RECEIVER_TID, elapsed
        ),
        elapsed_cycles=elapsed,
    )
