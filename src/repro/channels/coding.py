"""Forward error correction over the covert channel.

Section 5 of the paper closes with: "We note that more complex encoding
mechanisms may achieve higher information transmission rates, but our
goal is to illustrate a way for senders to achieve higher bandwidths."
This module follows that thread with two classic codes an attacker would
actually deploy:

* :class:`RepetitionCode` — each bit sent ``n`` times, majority decode;
  trivially robust, pays a factor-``n`` rate cost;
* :class:`HammingCode` — Hamming(7,4): four data bits per seven channel
  bits with single-error correction per block, the standard choice when
  the raw BER is a few percent (exactly the channel's high-rate regime).

Both operate on bit lists, composing with any symbol codec: encode the
message, send the codeword bits through the channel, decode what arrives.
Codes correct *flips*; insertions/losses (preemption bursts) defeat the
block framing, which is why the experiments pair coding with the
preamble alignment already in place.

For *detection* (rather than correction) the module also provides a
bitwise CRC (:func:`crc_bits` / :func:`crc_check`): the self-healing
frame format in :mod:`repro.channels.wb.framing` protects each frame
with a CRC-8 over its sequence number and payload, so a frame corrupted
beyond the FEC's correction radius is rejected instead of delivered.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

from repro.common.errors import ConfigurationError, ProtocolError

#: CRC-8/ATM generator polynomial (x^8 + x^2 + x + 1, the x^8 implicit).
CRC8_POLY = 0x07


def crc_bits(bits: Sequence[int], width: int = 8, poly: int = CRC8_POLY) -> List[int]:
    """CRC remainder of ``bits``, MSB-first, as a ``width``-bit list.

    Plain long-division CRC with a zero initial register — table-driven
    variants buy nothing at frame sizes of a few dozen bits, and the
    bitwise form is the specification.
    """
    if width <= 0:
        raise ConfigurationError(f"CRC width must be positive, got {width}")
    if not 0 < poly < (1 << width):
        raise ConfigurationError(
            f"CRC polynomial {poly:#x} out of range for width {width}"
        )
    mask = (1 << width) - 1
    register = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ProtocolError(f"bits must be 0/1, got {bit!r}")
        top = (register >> (width - 1)) & 1
        register = (register << 1) & mask
        if top ^ bit:
            register ^= poly
    return [(register >> shift) & 1 for shift in range(width - 1, -1, -1)]


def crc_check(
    bits: Sequence[int],
    checksum: Sequence[int],
    width: int = 8,
    poly: int = CRC8_POLY,
) -> bool:
    """True when ``checksum`` is the CRC of ``bits``."""
    if len(checksum) != width:
        raise ProtocolError(
            f"checksum must be {width} bits, got {len(checksum)}"
        )
    return list(checksum) == crc_bits(bits, width=width, poly=poly)


class BlockCode(abc.ABC):
    """A binary block code over the covert channel."""

    @property
    @abc.abstractmethod
    def data_bits(self) -> int:
        """Data bits per block."""

    @property
    @abc.abstractmethod
    def code_bits(self) -> int:
        """Channel bits per block."""

    @abc.abstractmethod
    def encode_block(self, block: Sequence[int]) -> List[int]:
        """Encode ``data_bits`` bits into ``code_bits`` bits."""

    @abc.abstractmethod
    def decode_block(self, block: Sequence[int]) -> List[int]:
        """Decode ``code_bits`` received bits into ``data_bits`` bits."""

    @property
    def rate(self) -> float:
        """Code rate (data bits per channel bit)."""
        return self.data_bits / self.code_bits

    # ------------------------------------------------------------------
    # Whole-message helpers
    # ------------------------------------------------------------------
    def encode(self, bits: Sequence[int]) -> List[int]:
        """Encode a whole message (length must be a multiple of data_bits)."""
        if len(bits) % self.data_bits:
            raise ProtocolError(
                f"message of {len(bits)} bits is not a whole number of "
                f"{self.data_bits}-bit blocks"
            )
        out: List[int] = []
        for start in range(0, len(bits), self.data_bits):
            out.extend(self.encode_block(bits[start : start + self.data_bits]))
        return out

    def decode(self, bits: Sequence[int]) -> List[int]:
        """Decode a whole received stream (truncates a ragged tail block)."""
        out: List[int] = []
        usable = len(bits) - (len(bits) % self.code_bits)
        for start in range(0, usable, self.code_bits):
            out.extend(self.decode_block(bits[start : start + self.code_bits]))
        return out


class RepetitionCode(BlockCode):
    """Send every bit ``n`` times; decode by majority."""

    def __init__(self, repetitions: int = 3) -> None:
        if repetitions < 1 or repetitions % 2 == 0:
            raise ConfigurationError(
                f"repetitions must be odd and positive, got {repetitions}"
            )
        self.repetitions = repetitions

    @property
    def data_bits(self) -> int:
        return 1

    @property
    def code_bits(self) -> int:
        return self.repetitions

    def encode_block(self, block: Sequence[int]) -> List[int]:
        (bit,) = block
        return [bit] * self.repetitions

    def decode_block(self, block: Sequence[int]) -> List[int]:
        return [1 if sum(block) * 2 > len(block) else 0]


class HammingCode(BlockCode):
    """Hamming(7,4): single-error correction per 7-bit block.

    Bit layout (1-indexed positions): parity at 1, 2, 4; data at
    3, 5, 6, 7 — the classic arrangement, so the syndrome *is* the error
    position.
    """

    _DATA_POSITIONS = (3, 5, 6, 7)
    _PARITY_POSITIONS = (1, 2, 4)

    @property
    def data_bits(self) -> int:
        return 4

    @property
    def code_bits(self) -> int:
        return 7

    def encode_block(self, block: Sequence[int]) -> List[int]:
        if len(block) != 4:
            raise ProtocolError(f"Hamming(7,4) block needs 4 bits, got {len(block)}")
        word = [0] * 8  # 1-indexed
        for position, bit in zip(self._DATA_POSITIONS, block):
            if bit not in (0, 1):
                raise ProtocolError(f"bits must be 0/1, got {bit!r}")
            word[position] = bit
        for parity in self._PARITY_POSITIONS:
            value = 0
            for position in range(1, 8):
                if position != parity and position & parity:
                    value ^= word[position]
            word[parity] = value
        return word[1:]

    def decode_block(self, block: Sequence[int]) -> List[int]:
        if len(block) != 7:
            raise ProtocolError(f"Hamming(7,4) block needs 7 bits, got {len(block)}")
        word = [0] + [1 if bit else 0 for bit in block]  # 1-indexed
        syndrome = 0
        for parity in self._PARITY_POSITIONS:
            value = 0
            for position in range(1, 8):
                if position & parity:
                    value ^= word[position]
            if value:
                syndrome |= parity
        if syndrome:  # single-bit error at position `syndrome`
            word[syndrome] ^= 1
        return [word[position] for position in self._DATA_POSITIONS]
