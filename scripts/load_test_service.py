#!/usr/bin/env python
"""Load-test the experiment service: dedup, memoisation, throughput.

Fires a concurrent burst of submissions at a service — a block of
*duplicate* jobs (all the same content address, exercising in-flight
coalescing) plus a block of *distinct* jobs (different seeds, exercising
the queue) — then replays one duplicate after everything settled to
exercise the warm store path.  Reports throughput, dedup ratio and cache
hit rate as JSON.

By default the script boots a private in-process server on an ephemeral
port with a temporary store; point ``--url`` at a running
``python -m repro.service`` to load-test that instead.

``--smoke`` is the CI mode: a scaled-down fig6 burst with built-in
assertions — the duplicate block must coalesce into exactly one
computation, and the warm resubmission must be served from the store
without any new computation.  Exit status is non-zero when an assertion
fails.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import pathlib
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.service.client import ServiceClient, ServiceError  # noqa: E402

#: Profile used by ``--smoke``: fig6 at ~a third of the quick budget.
#: (Scale must keep fig6's message_bits at or above its 16-bit preamble,
#: so 0.1 is too aggressive: 64 * 0.3 = 19 bits is the floor that works.)
SMOKE_PROFILE = {"name": "smoke", "reduced": True, "scale": 0.3}


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="load-test a running service instead of "
                             "booting one in-process")
    parser.add_argument("--experiment", default="fig6",
                        help="experiment id to submit (default: %(default)s)")
    parser.add_argument("--profile", default=None,
                        help="profile name, or a RunProfile JSON object")
    parser.add_argument("--duplicates", type=int, default=8,
                        help="identical submissions in the burst "
                             "(default: %(default)s)")
    parser.add_argument("--distinct", type=int, default=4,
                        help="distinct-seed submissions in the burst "
                             "(default: %(default)s)")
    parser.add_argument("--workers", type=int, default=2,
                        help="scheduler workers for the in-process server "
                             "(default: %(default)s)")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="queue depth for the in-process server "
                             "(default: %(default)s)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="store directory for the in-process server "
                             "(default: a fresh temp dir)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-job wait budget in seconds "
                             "(default: %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: scaled-down fig6 burst with "
                             "assertions; non-zero exit on failure")
    return parser.parse_args(argv)


def resolve_profile_arg(args: argparse.Namespace):
    if args.smoke and args.profile is None:
        return SMOKE_PROFILE
    if args.profile is None:
        return "quick"
    text = args.profile.strip()
    if text.startswith("{"):
        return json.loads(text)
    return text


def run_burst(
    client: ServiceClient,
    experiment: str,
    profile,
    duplicates: int,
    distinct: int,
    timeout: float,
) -> Dict[str, object]:
    """Submit all jobs concurrently; wait for every one; return stats."""

    def submit_and_wait(seed: int) -> Dict[str, object]:
        job = client.submit(
            experiment, profile=profile, seed=seed, wait=timeout
        )
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        return client.wait(str(job["job_id"]), timeout=timeout)

    # Duplicates all share seed 0; distinct jobs take seeds 1..M.
    seeds = [0] * duplicates + list(range(1, distinct + 1))
    started = time.monotonic()
    with concurrent.futures.ThreadPoolExecutor(
        max_workers=max(1, len(seeds))
    ) as pool:
        jobs = list(pool.map(submit_and_wait, seeds))
    elapsed = time.monotonic() - started

    failed = [job for job in jobs if job["state"] != "done"]
    sources = [job.get("source") for job in jobs]
    return {
        "jobs": len(jobs),
        "elapsed_seconds": round(elapsed, 3),
        "throughput_jobs_per_second": round(len(jobs) / elapsed, 3)
        if elapsed else 0.0,
        "failed": len(failed),
        "failures": [job.get("error") for job in failed],
        "sources": {
            str(source): sources.count(source) for source in set(sources)
        },
        "result_keys": sorted(
            {str(job["result_key"]) for job in jobs if job.get("result_key")}
        ),
    }


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(argv)
    profile = resolve_profile_arg(args)
    report: Dict[str, object] = {
        "experiment": args.experiment,
        "profile": profile,
        "duplicates": args.duplicates,
        "distinct": args.distinct,
        "mode": "smoke" if args.smoke else "load",
    }

    server = None
    app = None
    temp_dir = None
    try:
        if args.url:
            client = ServiceClient(args.url, timeout=args.timeout)
        else:
            from repro.service.http import ServiceApp, make_server
            from repro.service.metrics import ServiceTelemetry
            from repro.service.store import ResultStore

            if args.store is None:
                temp_dir = tempfile.TemporaryDirectory(
                    prefix="repro-load-test-"
                )
                store_root = temp_dir.name
            else:
                store_root = args.store
            store = ResultStore(store_root)
            app = ServiceApp(
                store,
                workers=args.workers,
                queue_depth=args.queue_depth,
                telemetry=ServiceTelemetry(),
            ).start()
            server = make_server(app)
            threading.Thread(
                target=server.serve_forever, daemon=True
            ).start()
            host, port = server.server_address[:2]
            client = ServiceClient(
                f"http://{host}:{port}", timeout=args.timeout
            )

        # ---- cold burst -------------------------------------------------
        report["burst"] = run_burst(
            client, args.experiment, profile,
            args.duplicates, args.distinct, args.timeout,
        )
        health = client.healthz()
        scheduler_after_burst = dict(health["scheduler"])
        report["scheduler_after_burst"] = scheduler_after_burst

        # ---- warm resubmission ------------------------------------------
        warm = client.submit(
            args.experiment, profile=profile, seed=0, wait=args.timeout
        )
        if warm["state"] not in ("done", "failed", "cancelled"):
            warm = client.wait(str(warm["job_id"]), timeout=args.timeout)
        health = client.healthz()
        scheduler_after_warm = dict(health["scheduler"])
        report["warm"] = {
            "state": warm["state"],
            "source": warm.get("source"),
            "new_computations": (
                int(scheduler_after_warm["computations"])
                - int(scheduler_after_burst["computations"])
            ),
        }
        report["store"] = health["store"]
        report["telemetry"] = health["telemetry"]

        submitted = int(scheduler_after_warm["submitted"])
        deduplicated = int(scheduler_after_warm["deduplicated"])
        store_counters = dict(health["store"])
        lookups = (
            int(store_counters["hits"]) + int(store_counters["misses"])
        )
        report["dedup_ratio"] = round(
            deduplicated / submitted if submitted else 0.0, 4
        )
        report["store_hit_rate"] = round(
            int(store_counters["hits"]) / lookups if lookups else 0.0, 4
        )
        report["computations"] = int(scheduler_after_warm["computations"])

        # /metrics must render and carry the headline series.
        metrics_text = client.metrics_text()
        report["metrics_ok"] = all(
            name in metrics_text
            for name in (
                "repro_service_jobs_submitted_total",
                "repro_service_store_hit_rate",
                "repro_service_bus_events_total",
            )
        )

        failures: List[str] = []
        burst = report["burst"]
        if burst["failed"]:
            failures.append(f"{burst['failed']} job(s) failed: "
                            f"{burst['failures']}")
        if not report["metrics_ok"]:
            failures.append("/metrics is missing headline series")
        if args.smoke:
            if report["dedup_ratio"] <= 0.0:
                failures.append(
                    f"dedup ratio {report['dedup_ratio']} is not > 0 — "
                    f"duplicate submissions did not coalesce"
                )
            expected = 1 + args.distinct
            if report["computations"] != expected:
                failures.append(
                    f"expected exactly {expected} computations "
                    f"(1 for the duplicates + {args.distinct} distinct), "
                    f"saw {report['computations']}"
                )
            if report["warm"]["source"] != "store":
                failures.append(
                    f"warm resubmission source was "
                    f"{report['warm']['source']!r}, not 'store'"
                )
            if report["warm"]["new_computations"] != 0:
                failures.append(
                    "warm resubmission spawned "
                    f"{report['warm']['new_computations']} computation(s)"
                )
        report["failures"] = failures
        report["ok"] = not failures
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if not failures else 1
    except ServiceError as exc:
        report["failures"] = [str(exc)]
        report["ok"] = False
        print(json.dumps(report, indent=2, sort_keys=True))
        return 1
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        if app is not None:
            app.stop()
        if temp_dir is not None:
            temp_dir.cleanup()


if __name__ == "__main__":
    sys.exit(main())
