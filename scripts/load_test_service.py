#!/usr/bin/env python
"""Load-test the experiment service: dedup, memoisation, throughput.

Fires a concurrent burst of submissions at a service — a block of
*duplicate* jobs (all the same content address, exercising in-flight
coalescing) plus a block of *distinct* jobs (different seeds, exercising
the queue) — then replays one duplicate after everything settled to
exercise the warm store path.  Reports throughput, dedup ratio and cache
hit rate as JSON.

By default the script boots a private in-process server on an ephemeral
port with a temporary store; point ``--url`` at a running
``python -m repro.service`` to load-test that instead.

``--smoke`` is the CI mode: a scaled-down fig6 burst with built-in
assertions — the duplicate block must coalesce into exactly one
computation, and the warm resubmission must be served from the store
without any new computation.  Exit status is non-zero when an assertion
fails.

``--bench`` is the **multi-worker saturation benchmark**: rounds of
sleep-bound stub jobs (``repro.service.bench:stub_experiment``, so the
per-job cost is known and hardware-neutral) are pushed through fleets of
1, 2 and 4 lease-protocol workers to measure throughput scaling, a
duplicate block measures the dedup ratio under fleet dispatch, and a
failover round kills a lease-holding worker to measure the expiry →
re-dispatch → completion latency.  ``--out`` writes the report
(committed as ``BENCH_service.json``); ``--baseline`` gates CI against
regressions: throughput per round within 30%, fleet scaling preserved,
dedup ratio exact, failover latency bounded.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import pathlib
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.service.client import ServiceClient, ServiceError  # noqa: E402

#: Profile used by ``--smoke``: fig6 at ~a third of the quick budget.
#: (Scale must keep fig6's message_bits at or above its 16-bit preamble,
#: so 0.1 is too aggressive: 64 * 0.3 = 19 bits is the floor that works.)
SMOKE_PROFILE = {"name": "smoke", "reduced": True, "scale": 0.3}


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="load-test a running service instead of "
                             "booting one in-process")
    parser.add_argument("--experiment", default="fig6",
                        help="experiment id to submit (default: %(default)s)")
    parser.add_argument("--profile", default=None,
                        help="profile name, or a RunProfile JSON object")
    parser.add_argument("--duplicates", type=int, default=8,
                        help="identical submissions in the burst "
                             "(default: %(default)s)")
    parser.add_argument("--distinct", type=int, default=4,
                        help="distinct-seed submissions in the burst "
                             "(default: %(default)s)")
    parser.add_argument("--workers", type=int, default=2,
                        help="scheduler workers for the in-process server "
                             "(default: %(default)s)")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="queue depth for the in-process server "
                             "(default: %(default)s)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="store directory for the in-process server "
                             "(default: a fresh temp dir)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-job wait budget in seconds "
                             "(default: %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: scaled-down fig6 burst with "
                             "assertions; non-zero exit on failure")
    bench = parser.add_argument_group("saturation benchmark (--bench)")
    bench.add_argument("--bench", action="store_true",
                       help="multi-worker fleet saturation benchmark "
                            "(throughput, dedup ratio, failover latency)")
    bench.add_argument("--bench-jobs", type=int, default=24,
                       help="stub jobs per saturation round "
                            "(default: %(default)s)")
    bench.add_argument("--bench-workers", default="1,2,4",
                       help="comma-separated fleet sizes to sweep "
                            "(default: %(default)s)")
    bench.add_argument("--out", default=None, metavar="FILE",
                       help="also write the --bench report JSON here")
    bench.add_argument("--baseline", default=None, metavar="FILE",
                       help="committed BENCH_service.json to gate "
                            "regressions against (non-zero exit)")
    return parser.parse_args(argv)


def resolve_profile_arg(args: argparse.Namespace):
    if args.smoke and args.profile is None:
        return SMOKE_PROFILE
    if args.profile is None:
        return "quick"
    text = args.profile.strip()
    if text.startswith("{"):
        return json.loads(text)
    return text


def run_burst(
    client: ServiceClient,
    experiment: str,
    profile,
    duplicates: int,
    distinct: int,
    timeout: float,
) -> Dict[str, object]:
    """Submit all jobs concurrently; wait for every one; return stats."""

    def submit_and_wait(seed: int) -> Dict[str, object]:
        job = client.submit(
            experiment, profile=profile, seed=seed, wait=timeout
        )
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        return client.wait(str(job["job_id"]), timeout=timeout)

    # Duplicates all share seed 0; distinct jobs take seeds 1..M.
    seeds = [0] * duplicates + list(range(1, distinct + 1))
    started = time.monotonic()
    with concurrent.futures.ThreadPoolExecutor(
        max_workers=max(1, len(seeds))
    ) as pool:
        jobs = list(pool.map(submit_and_wait, seeds))
    elapsed = time.monotonic() - started

    failed = [job for job in jobs if job["state"] != "done"]
    sources = [job.get("source") for job in jobs]
    return {
        "jobs": len(jobs),
        "elapsed_seconds": round(elapsed, 3),
        "throughput_jobs_per_second": round(len(jobs) / elapsed, 3)
        if elapsed else 0.0,
        "failed": len(failed),
        "failures": [job.get("error") for job in failed],
        "sources": {
            str(source): sources.count(source) for source in set(sources)
        },
        "result_keys": sorted(
            {str(job["result_key"]) for job in jobs if job.get("result_key")}
        ),
    }


STUB_ENTRY = "repro.service.bench:stub_experiment"
#: Profile for bench stub jobs: scale 1.0 → one job sleeps BASE_SECONDS.
BENCH_PROFILE = {"name": "bench", "reduced": True, "scale": 1.0}


class _BenchService:
    """A private in-process fleet-enabled service for one bench phase."""

    def __init__(self, fleet_kwargs: Dict[str, object], timeout: float):
        from repro.service.fleet import FleetConfig
        from repro.service.http import ServiceApp, make_server
        from repro.service.metrics import ServiceTelemetry
        from repro.service.store import ResultStore

        self.temp_dir = tempfile.TemporaryDirectory(prefix="repro-bench-")
        self.app = ServiceApp(
            ResultStore(self.temp_dir.name),
            workers=1,
            queue_depth=4096,
            telemetry=ServiceTelemetry(),
            fleet=FleetConfig(**fleet_kwargs),
        ).start()
        self.server = make_server(self.app)
        threading.Thread(target=self.server.serve_forever, daemon=True).start()
        host, port = self.server.server_address[:2]
        self.client = ServiceClient(f"http://{host}:{port}", timeout=timeout)

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.app.stop()
        self.temp_dir.cleanup()


def _start_fleet(client: ServiceClient, count: int, timeout: float):
    """``count`` in-thread FleetWorkers, registered live before return."""
    from repro.service.worker import FleetWorker

    workers = [
        FleetWorker(client.base_url, f"bench-w{i}", poll_seconds=0.01)
        for i in range(count)
    ]
    threads = [
        threading.Thread(target=worker.run, daemon=True) for worker in workers
    ]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + timeout
    while client.fleet()["workers_live"] < count:
        if time.monotonic() > deadline:
            raise RuntimeError("bench fleet workers never registered")
        time.sleep(0.01)
    return workers, threads


def _stop_fleet(workers, threads, timeout: float) -> None:
    for worker in workers:
        worker.stop()
    for thread in threads:
        thread.join(timeout=timeout)


def _submit_stub_batch(
    client: ServiceClient, seeds: List[int], timeout: float
) -> List[Dict[str, object]]:
    def submit_and_wait(seed: int) -> Dict[str, object]:
        job = client.submit(
            "bench", entry_point=STUB_ENTRY, profile=BENCH_PROFILE,
            seed=seed,
        )
        return client.wait(str(job["job_id"]), timeout=timeout)

    with concurrent.futures.ThreadPoolExecutor(
        max_workers=max(1, len(seeds))
    ) as pool:
        return list(pool.map(submit_and_wait, seeds))


def run_bench(args: argparse.Namespace) -> Dict[str, object]:
    """The multi-worker saturation benchmark; returns the report dict."""
    import platform

    from repro.service.bench import BASE_SECONDS

    fleet_sizes = [
        int(token) for token in args.bench_workers.split(",") if token.strip()
    ]
    report: Dict[str, object] = {
        "schema_version": 1,
        "mode": "bench",
        "python": platform.python_version(),
        "stub_base_seconds": BASE_SECONDS,
        "bench_jobs": args.bench_jobs,
    }
    failures: List[str] = []

    # ---- saturation sweep: throughput vs fleet size --------------------
    saturation: List[Dict[str, object]] = []
    for round_index, count in enumerate(fleet_sizes):
        service = _BenchService({"lease_ttl": 10.0}, args.timeout)
        try:
            workers, threads = _start_fleet(
                service.client, count, args.timeout
            )
            seeds = [
                round_index * 100_000 + offset
                for offset in range(args.bench_jobs)
            ]
            started = time.monotonic()
            records = _submit_stub_batch(service.client, seeds, args.timeout)
            elapsed = time.monotonic() - started
            _stop_fleet(workers, threads, args.timeout)
            bad = [r for r in records if r["state"] != "done"]
            if bad:
                failures.append(
                    f"saturation round with {count} worker(s): "
                    f"{len(bad)} job(s) not done"
                )
            throughput = len(records) / elapsed if elapsed else 0.0
            saturation.append(
                {
                    "workers": count,
                    "jobs": len(records),
                    "elapsed_seconds": round(elapsed, 3),
                    "throughput_jobs_per_second": round(throughput, 3),
                    # Sleep-bound ideal: count / BASE_SECONDS jobs per
                    # second; efficiency is hardware-neutral.
                    "efficiency": round(
                        throughput * BASE_SECONDS / count, 3
                    ),
                }
            )
        finally:
            service.close()
    report["saturation"] = saturation
    if len(saturation) >= 2 and saturation[0]["throughput_jobs_per_second"]:
        report["fleet_scaling"] = round(
            saturation[-1]["throughput_jobs_per_second"]
            / saturation[0]["throughput_jobs_per_second"],
            3,
        )
    else:
        report["fleet_scaling"] = 0.0

    # ---- dedup under fleet dispatch ------------------------------------
    service = _BenchService({"lease_ttl": 10.0}, args.timeout)
    try:
        workers, threads = _start_fleet(service.client, 2, args.timeout)
        duplicates, distinct = 8, 8
        seeds = [0] * duplicates + list(range(1, distinct + 1))
        records = _submit_stub_batch(service.client, seeds, args.timeout)
        _stop_fleet(workers, threads, args.timeout)
        scheduler = service.client.healthz()["scheduler"]
        dedup_ratio = round(
            int(scheduler["deduplicated"]) / int(scheduler["submitted"]), 4
        )
        report["dedup"] = {
            "duplicates": duplicates,
            "distinct": distinct,
            "dedup_ratio": dedup_ratio,
            "computations": int(scheduler["computations"]),
        }
        if any(r["state"] != "done" for r in records):
            failures.append("dedup round left non-done jobs")
        if int(scheduler["computations"]) > duplicates + distinct:
            failures.append(
                f"dedup round ran {scheduler['computations']} computations "
                f"for {duplicates + distinct} submissions"
            )
    finally:
        service.close()

    # ---- failover latency: kill a lease holder, measure recovery -------
    lease_ttl, backoff_cap = 0.5, 0.5
    service = _BenchService(
        {
            "lease_ttl": lease_ttl,
            "backoff_cap": backoff_cap,
            "supervisor_interval": 0.05,
            "worker_ttl": 30.0,
        },
        args.timeout,
    )
    try:
        # A fake worker registers (idle claim), the job queues for the
        # fleet, the fake worker claims it and "dies" (never heartbeats).
        service.client.fleet_claim("bench-dead")
        job = service.client.submit(
            "bench", entry_point=STUB_ENTRY, profile=BENCH_PROFILE, seed=0
        )
        started = time.monotonic()
        grant = service.client.fleet_claim("bench-dead")
        if not grant.get("lease"):
            failures.append("failover round: the doomed claim got no lease")
        workers, threads = _start_fleet(service.client, 1, args.timeout)
        record = service.client.wait(
            str(job["job_id"]), timeout=args.timeout
        )
        latency = time.monotonic() - started
        _stop_fleet(workers, threads, args.timeout)
        counters = service.client.fleet()["counters"]
        report["failover"] = {
            "lease_ttl": lease_ttl,
            "backoff_cap": backoff_cap,
            "latency_seconds": round(latency, 3),
            "leases_expired": int(counters["leases_expired"]),
            "redispatches": int(counters["redispatches"]),
            "state": record["state"],
        }
        if record["state"] != "done":
            failures.append(
                f"failover job ended {record['state']!r}, not 'done'"
            )
        if int(counters["redispatches"]) < 1:
            failures.append("failover round never re-dispatched the lease")
        # Physics bound: TTL + supervisor tick + capped backoff (with
        # jitter) + worker poll + the job itself, padded 2x for CI noise.
        bound = 2 * (lease_ttl + 0.05 + backoff_cap * 1.5 + 0.1) + 1.0
        if latency > bound:
            failures.append(
                f"failover latency {latency:.3f}s exceeds bound {bound:.3f}s"
            )
    finally:
        service.close()

    report["failures"] = failures
    report["ok"] = not failures
    return report


def gate_against_baseline(
    report: Dict[str, object], baseline: Dict[str, object]
) -> List[str]:
    """Regression gates for CI; returns human-readable violations."""
    problems: List[str] = []
    base_rounds = {
        entry["workers"]: entry for entry in baseline.get("saturation", [])
    }
    for entry in report["saturation"]:
        base = base_rounds.get(entry["workers"])
        if base is None:
            continue
        floor = 0.7 * float(base["throughput_jobs_per_second"])
        if float(entry["throughput_jobs_per_second"]) < floor:
            problems.append(
                f"throughput with {entry['workers']} worker(s) regressed: "
                f"{entry['throughput_jobs_per_second']} < 0.7 x baseline "
                f"{base['throughput_jobs_per_second']}"
            )
    # Fleet scaling is hardware-neutral (jobs are sleep-bound): adding
    # workers must keep buying real throughput.
    if float(report.get("fleet_scaling", 0.0)) < 1.8:
        problems.append(
            f"fleet scaling {report.get('fleet_scaling')} < 1.8 — extra "
            f"workers no longer increase throughput"
        )
    base_dedup = baseline.get("dedup", {}).get("dedup_ratio")
    if base_dedup is not None:
        if report["dedup"]["dedup_ratio"] != base_dedup:
            problems.append(
                f"dedup ratio drifted: {report['dedup']['dedup_ratio']} "
                f"!= baseline {base_dedup} (coalescing is deterministic)"
            )
    base_failover = baseline.get("failover", {}).get("latency_seconds")
    if base_failover is not None:
        ceiling = max(2.5 * float(base_failover), 3.0)
        if float(report["failover"]["latency_seconds"]) > ceiling:
            problems.append(
                f"failover latency {report['failover']['latency_seconds']}s "
                f"exceeds {ceiling:.2f}s (2.5 x baseline, min 3s)"
            )
    return problems


def bench_main(args: argparse.Namespace) -> int:
    report = run_bench(args)
    if args.baseline:
        baseline = json.loads(
            pathlib.Path(args.baseline).read_text(encoding="utf-8")
        )
        gate = gate_against_baseline(report, baseline)
        report["baseline_violations"] = gate
        if gate:
            report["failures"] = list(report["failures"]) + gate
            report["ok"] = False
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out:
        pathlib.Path(args.out).write_text(text + "\n", encoding="utf-8")
    return 0 if report["ok"] else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(argv)
    if args.bench:
        return bench_main(args)
    profile = resolve_profile_arg(args)
    report: Dict[str, object] = {
        "experiment": args.experiment,
        "profile": profile,
        "duplicates": args.duplicates,
        "distinct": args.distinct,
        "mode": "smoke" if args.smoke else "load",
    }

    server = None
    app = None
    temp_dir = None
    try:
        if args.url:
            client = ServiceClient(args.url, timeout=args.timeout)
        else:
            from repro.service.http import ServiceApp, make_server
            from repro.service.metrics import ServiceTelemetry
            from repro.service.store import ResultStore

            if args.store is None:
                temp_dir = tempfile.TemporaryDirectory(
                    prefix="repro-load-test-"
                )
                store_root = temp_dir.name
            else:
                store_root = args.store
            store = ResultStore(store_root)
            app = ServiceApp(
                store,
                workers=args.workers,
                queue_depth=args.queue_depth,
                telemetry=ServiceTelemetry(),
            ).start()
            server = make_server(app)
            threading.Thread(
                target=server.serve_forever, daemon=True
            ).start()
            host, port = server.server_address[:2]
            client = ServiceClient(
                f"http://{host}:{port}", timeout=args.timeout
            )

        # ---- cold burst -------------------------------------------------
        report["burst"] = run_burst(
            client, args.experiment, profile,
            args.duplicates, args.distinct, args.timeout,
        )
        health = client.healthz()
        scheduler_after_burst = dict(health["scheduler"])
        report["scheduler_after_burst"] = scheduler_after_burst

        # ---- warm resubmission ------------------------------------------
        warm = client.submit(
            args.experiment, profile=profile, seed=0, wait=args.timeout
        )
        if warm["state"] not in ("done", "failed", "cancelled"):
            warm = client.wait(str(warm["job_id"]), timeout=args.timeout)
        health = client.healthz()
        scheduler_after_warm = dict(health["scheduler"])
        report["warm"] = {
            "state": warm["state"],
            "source": warm.get("source"),
            "new_computations": (
                int(scheduler_after_warm["computations"])
                - int(scheduler_after_burst["computations"])
            ),
        }
        report["store"] = health["store"]
        report["telemetry"] = health["telemetry"]

        submitted = int(scheduler_after_warm["submitted"])
        deduplicated = int(scheduler_after_warm["deduplicated"])
        store_counters = dict(health["store"])
        lookups = (
            int(store_counters["hits"]) + int(store_counters["misses"])
        )
        report["dedup_ratio"] = round(
            deduplicated / submitted if submitted else 0.0, 4
        )
        report["store_hit_rate"] = round(
            int(store_counters["hits"]) / lookups if lookups else 0.0, 4
        )
        report["computations"] = int(scheduler_after_warm["computations"])

        # /metrics must render and carry the headline series.
        metrics_text = client.metrics_text()
        report["metrics_ok"] = all(
            name in metrics_text
            for name in (
                "repro_service_jobs_submitted_total",
                "repro_service_store_hit_rate",
                "repro_service_bus_events_total",
            )
        )

        failures: List[str] = []
        burst = report["burst"]
        if burst["failed"]:
            failures.append(f"{burst['failed']} job(s) failed: "
                            f"{burst['failures']}")
        if not report["metrics_ok"]:
            failures.append("/metrics is missing headline series")
        if args.smoke:
            if report["dedup_ratio"] <= 0.0:
                failures.append(
                    f"dedup ratio {report['dedup_ratio']} is not > 0 — "
                    f"duplicate submissions did not coalesce"
                )
            expected = 1 + args.distinct
            if report["computations"] != expected:
                failures.append(
                    f"expected exactly {expected} computations "
                    f"(1 for the duplicates + {args.distinct} distinct), "
                    f"saw {report['computations']}"
                )
            if report["warm"]["source"] != "store":
                failures.append(
                    f"warm resubmission source was "
                    f"{report['warm']['source']!r}, not 'store'"
                )
            if report["warm"]["new_computations"] != 0:
                failures.append(
                    "warm resubmission spawned "
                    f"{report['warm']['new_computations']} computation(s)"
                )
        report["failures"] = failures
        report["ok"] = not failures
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if not failures else 1
    except ServiceError as exc:
        report["failures"] = [str(exc)]
        report["ok"] = False
        print(json.dumps(report, indent=2, sort_keys=True))
        return 1
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        if app is not None:
            app.stop()
        if temp_dir is not None:
            temp_dir.cleanup()


if __name__ == "__main__":
    sys.exit(main())
