#!/usr/bin/env python
"""Two-worker fleet smoke: kill a worker mid-job, results stay bit-exact.

The CI-level end-to-end proof of the lease protocol with *real
processes* (no in-process shortcuts):

1. start ``python -m repro.service`` on an ephemeral port;
2. start two ``python -m repro.service.worker`` processes;
3. submit one slow stub job plus a block of quick ones;
4. ``SIGKILL`` the worker holding the slow job's lease — no drain, no
   goodbye, exactly the crash the supervisor exists for;
5. assert every job still completes, the recovered job's blob is
   byte-identical to a direct in-process computation, the lease was
   expired and re-dispatched, and the survivor did the work;
6. ``SIGTERM`` the service and assert it drains cleanly.

Exit status is non-zero on any violation.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.service.client import ServiceClient, ServiceError  # noqa: E402

STUB_ENTRY = "repro.service.bench:stub_experiment"
#: The slow job computes for ~3 s — a wide window to land the SIGKILL in.
SLOW_PROFILE = {"name": "smoke-slow", "reduced": True, "scale": 60.0}
QUICK_PROFILE = {"name": "smoke-quick", "reduced": True, "scale": 1.0}
WAIT = 60.0


def child_env() -> Dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def start_service(store: str) -> tuple:
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--port", "0", "--store", store, "--quiet",
            "--lease-ttl", "1.0", "--dead-letter-after", "5",
            "--drain-timeout", "30",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=child_env(),
    )
    deadline = time.monotonic() + WAIT
    while True:
        line = process.stdout.readline()
        if "listening on http://" in line:
            url = line.split("listening on ", 1)[1].split()[0]
            return process, url
        if process.poll() is not None or time.monotonic() > deadline:
            raise RuntimeError(f"service never came up (last: {line!r})")


def start_worker(url: str, worker_id: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.worker",
            "--url", url, "--worker-id", worker_id, "--poll", "0.05",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=child_env(),
    )


def eventually(predicate, what: str, timeout: float = WAIT):
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() > deadline:
            raise RuntimeError(f"timed out waiting for {what}")
        time.sleep(0.05)


def main() -> int:
    failures: List[str] = []
    report: Dict[str, object] = {}
    with tempfile.TemporaryDirectory(prefix="repro-fleet-smoke-") as tmp:
        service, url = start_service(os.path.join(tmp, "store"))
        workers: Dict[str, subprocess.Popen] = {}
        try:
            client = ServiceClient(url, timeout=WAIT)
            for worker_id in ("smoke-w0", "smoke-w1"):
                workers[worker_id] = start_worker(url, worker_id)
            eventually(
                lambda: client.fleet()["workers_live"] >= 2,
                "both workers to register",
            )

            slow = client.submit(
                "bench", entry_point=STUB_ENTRY,
                profile=SLOW_PROFILE, seed=100,
            )
            # The slow job's lease names its holder: that's the victim.
            lease = eventually(
                lambda: next(iter(client.fleet()["leases"]), None),
                "a worker to claim the slow job",
            )
            victim_id = str(lease["worker_id"])
            victim_key = str(lease["key"])
            quick = [
                client.submit(
                    "bench", entry_point=STUB_ENTRY,
                    profile=QUICK_PROFILE, seed=seed,
                )
                for seed in range(4)
            ]
            workers[victim_id].send_signal(signal.SIGKILL)
            workers[victim_id].wait(timeout=WAIT)
            report["victim"] = victim_id

            records = [
                client.wait(str(job["job_id"]), timeout=WAIT)
                for job in [slow] + quick
            ]
            states = [record["state"] for record in records]
            report["states"] = states
            if states != ["done"] * len(records):
                failures.append(f"job states after the kill: {states}")

            # The recovered blob must be byte-identical to a direct
            # in-process computation of the same configuration.
            from repro.experiments.profiles import RunProfile
            from repro.service.bench import stub_experiment

            expected = stub_experiment(
                profile=RunProfile.from_dict(SLOW_PROFILE), seed=100
            ).to_json().encode("utf-8")
            served = client.result_bytes(str(records[0]["result_key"]))
            if served != expected:
                failures.append(
                    "recovered job's blob differs from a direct run"
                )
            if str(records[0]["result_key"]) != victim_key:
                failures.append("lease key does not match the slow job")

            history = records[0].get("lease_history", [])
            report["slow_job_lease_history"] = history
            outcomes = [entry["outcome"] for entry in history]
            if "expired" not in outcomes or outcomes[-1] != "completed":
                failures.append(
                    f"slow job never traversed expiry -> re-dispatch -> "
                    f"success: {outcomes}"
                )
            survivor = {"smoke-w0", "smoke-w1"} - {victim_id}
            if history and history[-1]["worker_id"] not in survivor:
                failures.append(
                    f"final attempt ran on {history[-1]['worker_id']}, "
                    f"not the survivor"
                )

            counters = client.fleet()["counters"]
            report["fleet_counters"] = counters
            if counters["leases_expired"] < 1:
                failures.append("no lease ever expired")
            if counters["redispatches"] < 1:
                failures.append("no lease was ever re-dispatched")
            if counters["dead_letter"] != 0:
                failures.append("a job was wrongly dead-lettered")

            # Graceful shutdown: SIGTERM must drain and exit zero.
            service.send_signal(signal.SIGTERM)
            output, _ = service.communicate(timeout=WAIT)
            report["service_exit"] = service.returncode
            if service.returncode != 0:
                failures.append(
                    f"service exited {service.returncode} on SIGTERM"
                )
            if "drained cleanly" not in output:
                failures.append(f"service did not drain cleanly: {output!r}")
        except (ServiceError, RuntimeError, subprocess.TimeoutExpired) as exc:
            failures.append(str(exc))
        finally:
            for process in workers.values():
                if process.poll() is None:
                    process.terminate()
                    try:
                        process.wait(timeout=10)
                    except subprocess.TimeoutExpired:
                        process.kill()
            if service.poll() is None:
                service.kill()

    report["failures"] = failures
    report["ok"] = not failures
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
