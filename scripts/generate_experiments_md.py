#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md by running every experiment at full scale.

Usage::

    python scripts/generate_experiments_md.py [--profile quick] [--jobs N] \
        [--out EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
import io

from repro.experiments import available_experiments
from repro.runner import run_experiments
from repro.scenario.library import available_library_specs

#: Paper-vs-measured commentary per experiment, maintained alongside the
#: experiment code.  The measured tables below each entry are regenerated
#: by this script; the commentary states what the paper reported and
#: whether the reproduction preserves the shape.
PAPER_CONTEXT = {
    "table2": (
        "Paper: LRU 100/100/100, Tree-PLRU 94.3/100/100, E5-2650 "
        "68.8/81.7/100 (percent, N=8/9/10). Reproduced: LRU exact; "
        "Tree-PLRU certain from N=9 as in the paper but already certain at "
        "N=8 here (our miss-victim walk provably covers all ways; gem5's "
        "implementation evidently differs in a tail case); the E5-2650 "
        "column is matched by the calibrated DirtyProtectingLRU surrogate "
        "(bounded dirty-victim protection, see DESIGN.md)."
    ),
    "table4": (
        "Paper: L1 hit 4-5, L2-hit+clean-replace 10-12, L2-hit+dirty-"
        "replace 22-23 cycles. These are the model's calibration anchors; "
        "the experiment confirms the assembled hierarchy reproduces them "
        "end to end, including the ~2x dirty-vs-clean gap that is the "
        "channel's signal."
    ),
    "table5": (
        "Paper (gem5 pseudo-random): d=2 row 63.6-95.0%, d=3 row "
        "89.5-99.5% across L=8..13, plus the analytic bound "
        "p=1-((W-d)/W)^L (99.1% at d=3,L=10). Reproduced: the uniform "
        "policy tracks the analytic bound; the LFSR pseudo-random variant "
        "sits below it at small L exactly as gem5's generator does "
        "(without matching gem5's PRNG point-for-point); monotone in d "
        "and L throughout."
    ),
    "table6": (
        "Paper: sender L1D miss 0.04%(WB) vs 0.16%(g++) vs 0.003%(alone); "
        "L2 miss 3.59 vs 26.84 vs 35.16; LLC 34.38 vs 2.23 vs 34.42 "
        "(binary; multi-bit analogous). Absolute rates depend on the "
        "process's non-channel traffic, which we model explicitly; the "
        "reproduced content is the ordering pattern: attack L1-miss "
        "profile indistinguishable from benign co-running, WB run has the "
        "lowest L2 miss rate, LLC miss rate collapses only in the g++ "
        "scenario, and multi-bit > binary on L1 misses. One deviation: "
        "our compiler model pressures the shared L2 harder than the "
        "paper's g++, so its L2 column lands above sender-only."
    ),
    "table7": (
        "Paper: WB sender generates 59.8% of the LRU sender's cache loads "
        "at Ts=11000 (3.15e8 vs 5.27e8 total). Reproduced ratio is within "
        "a few points of the paper's (see wb_to_lru_ratio in the params); "
        "the structural cause is identical - one posted store per bit vs "
        "continuous LRU-state refreshing."
    ),
    "fig4": (
        "Paper: nine narrow latency bands, ~10 cycles apart, for d=0..8 "
        "with a 10-line replacement set (1000 measurements each). "
        "Reproduced: median step ~11 cycles per dirty line (the L1 "
        "write-back penalty), bands a few cycles wide, all nine states "
        "distinguishable."
    ),
    "fig5": (
        "Paper: received traces at 400 Kbps for d=1/4/8 with the 16-bit "
        "alignment preamble; higher d widens the gap between the 0- and "
        "1-bands. Reproduced: separation grows ~11 cycles per extra dirty "
        "line and the preamble decodes cleanly at this rate for all three "
        "encodings."
    ),
    "fig6": (
        "Paper: BER grows with rate; all d below 5% at 1375 Kbps; d=1 the "
        "worst curve; d=8 usable at 2700 Kbps (4.5%). Reproduced: same "
        "orderings and crossovers; our absolute BER at the highest rates "
        "is milder than the paper's because the simulated ambient noise "
        "is cleaner than a live Xeon's."
    ),
    "fig7": (
        "Paper: four latency bands for d=0/3/5/8 carrying two bits per "
        "symbol at 1100 Kbps. Reproduced: the four bands sit at the "
        "calibrated medians with >=2 write-back penalties between "
        "adjacent levels, and the trace decodes with low error."
    ),
    "fig8": (
        "Paper: two-bit symbols reach 4400 Kbps at 3.5% BER. Reproduced: "
        "the 4400 Kbps point lands in single-digit BER and the curve "
        "rises with rate, doubling binary throughput at every period."
    ),
    "random_policy": (
        "Paper (Section 6.1): random replacement does not defeat the "
        "channel; the analytic eviction probability is 99.1% at d=3,L=10 "
        "and a stable channel needs d,L around (3,12). Reproduced: BER "
        "falls monotonically in d and L; d=8,L=12 is solid. Residual "
        "errors come from dirty lines that survive one traversal and "
        "leak into the next symbol."
    ),
    "stability": (
        "Paper (Section 6 / Figure 9): noise lines loaded by third "
        "processes break LRU and Prime+Probe (false evictions) but not "
        "the WB channel; only noise *stores* reach it. Reproduced "
        "exactly: WB BER stays near zero under load noise that pushes "
        "the baselines to ~20%."
    ),
    "defenses": (
        "Paper (Section 8): PLcache and DAWG/Nomo partitioning mitigate; "
        "random fill does NOT (store-hits still set the dirty bit); "
        "write-through removes the signal; fixed-key randomized mapping "
        "blocks stride-built sets but remains profileable. All five "
        "verdicts reproduced; overhead is a benign-workload elapsed-cycle "
        "ratio (the sub-1.0 ratios for random-fill/randomized mapping "
        "are an artifact of the synthetic workload's reuse pattern)."
    ),
    "extension_3bit": (
        "Extension beyond the paper: the theoretical 3-bit-per-symbol "
        "encoding (all eight dirty-line counts) vs the paper's 2-bit "
        "non-adjacent scheme. Measured: adjacent levels roughly double "
        "the BER at every rate, quantifying the paper's design choice; "
        "in this simulator's clean noise regime the raw-rate advantage "
        "still nets out positive, which would not survive real ambient "
        "noise comparable to the 11-cycle level spacing."
    ),
    "extension_l2": (
        "Extension beyond the paper: the WB channel deployed on the L2 "
        "cache, which Section 3 predicts is possible 'but requires more "
        "operations from the sender'. Built and measured: the channel "
        "works with the sender paying a 10-load L1 sweep per symbol to "
        "push dirty lines to L2, at roughly a quarter of the L1 "
        "deployment's rate (LLC-bound measurements, longer periods)."
    ),
    "cross_core_wb": (
        "Coherence extension beyond the paper: the WB channel without "
        "the shared-SMT-core requirement. On the multi-core MESI model "
        "(repro.coherence) the sender's stores leave lines Modified in "
        "its private L1D; the receiver's timed loads on another core "
        "force M-to-S downgrade write-backs whose drain latency "
        "(l2_hit + writeback penalty, ~22 cycles/line vs ~4 clean) "
        "carries the bit. The Section 7 stealth question is re-asked "
        "with detectors on every core: the coherence write-back train "
        "is periodic and burst-detectable on the sender core, so the "
        "cross-core deployment buys reach, not stealth."
    ),
    "closed_loop_defense": (
        "Operational extension beyond the paper: Section 7's stealth "
        "asymmetry closed into a live detect→fuse→respond loop. Each "
        "suspect co-runs with a decoding receiver while three "
        "benign-calibrated detectors stream z-scores into a 2-of-3 "
        "fleet aggregator; the fused alarm flips the running hierarchy "
        "to write-through at a pinned stream-event boundary. Measured: "
        "the continuously-modulating (LRU-style) sender scores "
        "hundreds of sigma above baseline, trips the fused alarm "
        "within its first symbols, and loses the channel — post-flip "
        "capacity collapses by far more than the 10x acceptance bar — "
        "while the WB sender's one-store-per-bit pattern completes its "
        "whole payload without the alarm ever firing. The alarm clock, "
        "flip event id and pre/post capacities are bit-deterministic "
        "across engines and across stream clients dropping and "
        "resuming mid-run (tests/test_closed_loop.py)."
    ),
    "fault_tolerance": (
        "Robustness extension beyond the paper: the same faulted channel "
        "(descheduling slips, co-runner bursts, threshold drift, dropped "
        "and duplicated probe windows) run raw vs through the "
        "self-healing stack (sync-framed payload, per-frame CRC over "
        "FEC, resynchronising scanner, EWMA threshold recalibration, "
        "ACK/retransmission). At intensity 1.0 the raw protocol's BER "
        "exceeds 20% while the hardened stack still delivers the payload "
        "bit-exact, trading rate for integrity (goodput column)."
    ),
    "ablation_errors": (
        "Ablation of the simulator's error model at 1375 Kbps, d=1: "
        "turning off OS preemptions, TSC read jitter and phase "
        "uncertainty one at a time attributes the error budget to each "
        "source; with all three removed the channel is exactly "
        "error-free, i.e. the simulator has no hidden error source."
    ),
    "ablation_replacement_set": (
        "Ablation of the Section 4.1 design rule: the channel's BER vs "
        "replacement-set size L on Tree-PLRU and the E5-2650 surrogate. "
        "L below the guaranteed-eviction threshold leaves dirty residue "
        "that corrupts later symbols; L=10 (the paper's choice) is the "
        "smallest clean setting on both policies."
    ),
    "sidechannel": (
        "Paper (Section 9): three attack scenarios on the Listing 2 "
        "gadgets, including the same-set case Prime+Probe cannot decode. "
        "Reproduced: all scenarios recover the secret; scenario 3 "
        "(victim-call timing) succeeds more cleanly here than on real "
        "hardware, where the paper needed two serial loads per branch."
    ),
    "online_detection": (
        "Extension of the paper's Section 7 stealth argument from "
        "end-of-run counter totals (Table 7) to *online* monitors: a "
        "CloudRadar-style windowed counter monitor and a CC-Hunter-style "
        "conflict-train autocorrelation detector, both calibrated on a "
        "benign co-runner carrying the identical whole-process activity "
        "and applied at matched bit period (Ts=11000). Measured: the LRU "
        "sender's continuous modulation is flagged at a far higher rate "
        "than the WB sender on both views, while the WB sender's flag "
        "rate equals the benign false-positive rate — the stealth claim "
        "in its strongest online form. Built on the repro.telemetry "
        "event bus; see DESIGN.md for the detector design."
    ),
}

HEADER = """# EXPERIMENTS — paper vs measured

Regenerated by ``python scripts/generate_experiments_md.py``{mode}.

Every table and figure of the paper's evaluation is reproduced by a
module in ``repro.experiments`` (see DESIGN.md for the per-experiment
index).  For each, this file records what the paper reported, what this
reproduction measures, and whether the *shape* — orderings, crossovers,
rough factors — holds.  Absolute cycle counts and Kbps match only at the
calibration anchors (Table 4), by construction.

Reproduce any entry interactively::

    wb-experiments <experiment-id>                  # full scale
    wb-experiments <experiment-id> --profile quick  # CI scale

or run everything in parallel, persisting a manifest::

    wb-experiments --all --jobs 4 --out results/

Every experiment also runs on the fast struct-of-arrays engine
(``--engine fast``); results are bit-identical to the reference engine
(enforced by ``tests/test_engine_parity.py``), only faster — see the
committed ``BENCH_engine.json`` from ``scripts/bench_engine.py``.

Re-runs are memoisable: ``python -m repro.service`` serves every entry
over HTTP from a content-addressed result store, so resubmitting an
``(experiment, profile, seed)`` already computed returns the stored
bytes (bit-identical to a direct run) without recomputation, and N
identical concurrent submissions coalesce into one computation — see
the README's "Serving experiments" section.

The WB-channel family — ``fig6``, ``fig7``, ``fig8``, ``extension_l2``,
``cross_core_wb``, ``closed_loop_defense``, ``fault_tolerance``,
``online_detection``, ``defenses`` — is
**spec-backed**: each experiment's full configuration lives in a
declarative ``ScenarioSpec`` (``repro.scenario.library``, committed as
JSON in ``scenarios/``), the module body only shapes results from the
spec-compiled measurement, and ``tests/test_scenario_golden.py`` pins
the rebase bit-identical to the pre-spec output.  The same specs (and
arbitrary variants) run unregistered via ``repro.scenario.run_scenario``
or an inline ``{"scenario": ...}`` job submission — see the README's
"Declarative scenarios" section.

"""

#: Line appended under the paper-reference of spec-backed experiments.
SPEC_BACKED_NOTE = (
    "*Spec-backed: compiled from `scenarios/{experiment_id}.json` "
    "(`repro.scenario.library.{experiment_id}_spec`).*\n\n"
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=["full", "quick"], default="full")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args()
    profile = args.profile

    manifest = run_experiments(
        available_experiments(), profile=profile, jobs=args.jobs
    )
    spec_backed = set(available_library_specs())
    out = io.StringIO()
    mode = " (quick mode)" if profile == "quick" else ""
    out.write(HEADER.format(mode=mode))
    for entry in manifest.entries:
        if not entry.ok:
            raise SystemExit(
                f"experiment {entry.task_id} failed:\n{entry.error}"
            )
        result = entry.result
        out.write(f"\n## {entry.experiment_id} — {result.title}\n\n")
        out.write(f"*Reproduces {result.paper_reference}.*\n\n")
        if entry.experiment_id in spec_backed:
            out.write(
                SPEC_BACKED_NOTE.format(experiment_id=entry.experiment_id)
            )
        context = PAPER_CONTEXT.get(entry.experiment_id)
        if context:
            out.write(context + "\n\n")
        out.write("```\n")
        out.write(result.render())
        out.write("\n```\n\n")
        out.write(
            f"Parameters: `{result.params}`; runtime {entry.wall_seconds:.1f}s.\n"
        )
        print(
            f"[{entry.experiment_id}] done in {entry.wall_seconds:.1f}s",
            flush=True,
        )
    with open(args.out, "w") as handle:
        handle.write(out.getvalue())
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
