#!/usr/bin/env python
"""Drive a sweep campaign through the job scheduler, one job per point.

Loads a ``wb_ber_sweep`` scenario from the committed ``scenarios/`` zoo
(default: ``campaign-ts-sweep``), expands it with
:func:`repro.scenario.zoo.expand_campaign` into one single-period child
spec per sweep point, and submits every child to the experiment service
as an inline declarative scenario job.  Each point is computed,
memoised and served under its own canonical content address — a second
run of this script is answered entirely from the store.

By default the script boots a private in-process server on an ephemeral
port with a temporary store; point ``--url`` at a running
``python -m repro.service`` (and give it a persistent ``--store``) to
see cross-run memoisation.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import threading
from typing import List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.common.canonical import canonical_json  # noqa: E402
from repro.scenario.zoo import expand_campaign, load_spec_file  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402


def geometry_hint(child) -> str:
    """Batch-affinity label for one campaign point: its cache geometry.

    Points of one campaign share a hierarchy (only the sweep axis
    varies), so hashing the geometry sends the whole fan-out into one
    scheduler batch group — while campaigns over *different* hierarchies
    keep their points apart.  The hint is pure scheduling affinity; it
    never enters result content addresses.
    """
    import zlib

    hierarchy = None if child.hierarchy is None else child.hierarchy.to_dict()
    digest = zlib.crc32(canonical_json(hierarchy).encode("utf-8"))
    return f"geometry:{digest:08x}"


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--campaign", default=None, metavar="FILE",
                        help="campaign spec file (default: "
                             "scenarios/campaign-ts-sweep.json)")
    parser.add_argument("--url", default=None,
                        help="submit to a running service instead of "
                             "booting one in-process")
    parser.add_argument("--profile", default="quick",
                        help="run profile (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=2,
                        help="scheduler workers for the in-process server")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the campaign report as JSON")
    return parser.parse_args(argv)


def run_campaign(client: ServiceClient, args) -> dict:
    campaign_path = args.campaign or str(
        REPO_ROOT / "scenarios" / "campaign-ts-sweep.json"
    )
    campaign = load_spec_file(campaign_path)
    children = expand_campaign(campaign)

    # Submit the whole fan-out first, then wait: points queue behind the
    # scheduler's priority heap and run on its worker pool.  The shared
    # geometry hint lets the scheduler coalesce queued points into batch
    # groups instead of dispatching them one worker slot at a time.
    jobs = [
        client.submit_scenario(
            child,
            profile=args.profile,
            seed=args.seed,
            batch_hint=geometry_hint(child),
        )
        for child in children
    ]
    points = []
    for child, job in zip(children, jobs):
        record = (
            job
            if job["state"] in ("done", "failed", "cancelled")
            else client.wait(str(job["job_id"]))
        )
        point = {
            "scenario": child.name,
            "period": child.params.periods[0],
            "state": record["state"],
            "source": record["source"],
            "result_key": record["result_key"],
        }
        if record["state"] == "done":
            result = client.result(str(record["result_key"]))
            point["rate_kbps"] = float(result.rows[0][1])
            point["ber"] = result.series["ber"][0]
        else:
            point["error"] = record["error"]
        points.append(point)
    scheduler = client.healthz()["scheduler"]
    return {
        "campaign": campaign.name,
        "profile": args.profile,
        "seed": args.seed,
        "points": points,
        "computations": scheduler["computations"],
        "store_served": scheduler["store_served"],
        "batch_groups": scheduler.get("batch_groups", 0),
        "batch_coalesced": scheduler.get("batch_coalesced", 0),
        "ok": all(point["state"] == "done" for point in points),
    }


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(argv)
    if args.url is not None:
        report = run_campaign(ServiceClient(args.url), args)
    else:
        from repro.service.http import ServiceApp, make_server
        from repro.service.store import ResultStore

        with tempfile.TemporaryDirectory() as tmp:
            store = ResultStore(pathlib.Path(tmp) / "store")
            app = ServiceApp(store, workers=args.workers, queue_depth=64)
            with app:
                server = make_server(app)
                threading.Thread(
                    target=server.serve_forever, daemon=True
                ).start()
                host, port = server.server_address[:2]
                try:
                    report = run_campaign(
                        ServiceClient(f"http://{host}:{port}"), args
                    )
                finally:
                    server.shutdown()
                    server.server_close()

    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"campaign {report['campaign']} "
              f"(profile={report['profile']}, seed={report['seed']}):")
        for point in report["points"]:
            if point["state"] == "done":
                print(f"  Ts={point['period']:>6}  "
                      f"rate={point['rate_kbps']:>7.0f} Kbps  "
                      f"BER={point['ber']:.2%}  [{point['source']}]")
            else:
                print(f"  Ts={point['period']:>6}  {point['state']}: "
                      f"{point['error']}")
        print(f"  computations={report['computations']} "
              f"store_served={report['store_served']} "
              f"batch_groups={report['batch_groups']} "
              f"coalesced={report['batch_coalesced']}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
