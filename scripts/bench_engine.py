#!/usr/bin/env python3
"""Benchmark the fast struct-of-arrays engine against the reference core.

Replays the Figure 6 covert-channel workload and a mixed random workload
through both engines, verifies the result fingerprints are identical
(parity failure is a hard error), and reports the throughput ratio.
Writes ``BENCH_engine.json`` so the speedup is tracked in-repo.

Usage::

    python scripts/bench_engine.py                       # full measurement
    python scripts/bench_engine.py --quick               # CI smoke sizes
    python scripts/bench_engine.py --baseline BENCH_engine.json
        # additionally gate: fail if the fast/reference speedup dropped
        # more than --max-regression (default 30%) below the baseline

The regression gate compares *speedup ratios*, not absolute seconds:
both engines run on the same machine in a single invocation, so the
ratio is hardware-neutral and safe to compare against a committed
baseline measured elsewhere.

The fast engine is additionally timed with a telemetry bus attached but
disabled (``speedup_with_idle_bus``).  Telemetry is designed to be
zero-cost when off — a disabled bus keeps the specialised SoA loop
eligible — so this ratio must track ``speedup``; the gate fails if the
bus's mere presence starts costing throughput.

Schema v3 adds the ``batch_sweep`` section: B seeded fig6-style replicas
replayed once through the vectorized batch engine
(:mod:`repro.engine.batch`) versus one at a time through the fast
engine.  Per-replica fingerprints must match exactly, replicas/sec and
``speedup_vs_fast`` are recorded per B, and two gates apply: the ratio
regression gate above (when the baseline carries a ``batch_sweep``) and
an absolute ``--min-batch-speedup`` floor (default 10x, the tentpole
target) on the best measured B.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.cache.configs import HierarchyParams, make_xeon_hierarchy
from repro.engine import fig6_workload, random_workload, run_trace
from repro.engine.batch import run_batch_traces

#: Workload builders keyed by name; each returns a list of (address, is_write).
WORKLOADS: Dict[str, Callable[[bool], List[Tuple[int, bool]]]] = {
    "fig6": lambda quick: fig6_workload(
        num_symbols=64 if quick else 1024, d=4, seed=0
    ),
    "random": lambda quick: list(
        random_workload(
            num_accesses=10_000 if quick else 200_000,
            working_set_lines=2048,
            write_ratio=0.3,
            seed=0,
        )
    ),
}

SCHEMA_VERSION = 3

#: Replica counts for the batch_sweep section (quick drops the largest:
#: the per-replica fast baseline is timed too, and 256 replicas of it
#: is full-measurement territory, not CI smoke).
BATCH_SIZES = (16, 64, 256)
BATCH_SIZES_QUICK = (16, 64)


def time_engine(
    engine: str,
    trace: List[Tuple[int, bool]],
    repeats: int,
    idle_bus: bool = False,
) -> Tuple[float, Tuple[int, int, int, int]]:
    """Best-of-``repeats`` wall time and the result fingerprint.

    ``idle_bus=True`` attaches a disabled telemetry bus first — the
    "merely present" configuration the overhead gate watches.
    """
    best = float("inf")
    fingerprint = None
    for _ in range(repeats):
        hierarchy = make_xeon_hierarchy(rng=random.Random(0), engine=engine)
        if idle_bus:
            from repro.telemetry import TelemetryBus

            hierarchy.attach_telemetry(TelemetryBus(enabled=False))
        start = time.perf_counter()
        result = run_trace(hierarchy, trace, owner=0)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        current = result.fingerprint()
        if fingerprint is None:
            fingerprint = current
        elif fingerprint != current:
            raise AssertionError(
                f"{engine} engine is non-deterministic on repeats: "
                f"{fingerprint} != {current}"
            )
    return best, fingerprint


def bench_workload(name: str, quick: bool, repeats: int) -> Dict[str, object]:
    """Measure one workload on both engines and check parity."""
    trace = WORKLOADS[name](quick)
    ref_seconds, ref_fp = time_engine("reference", trace, repeats)
    fast_seconds, fast_fp = time_engine("fast", trace, repeats)
    idle_seconds, idle_fp = time_engine("fast", trace, repeats, idle_bus=True)
    if ref_fp != fast_fp:
        raise AssertionError(
            f"PARITY FAILURE on workload {name!r}: "
            f"reference={ref_fp} fast={fast_fp}"
        )
    if idle_fp != fast_fp:
        raise AssertionError(
            f"PARITY FAILURE on workload {name!r}: an idle telemetry bus "
            f"changed the fast engine's results: {fast_fp} != {idle_fp}"
        )
    return {
        "workload": name,
        "accesses": len(trace),
        "fingerprint": list(ref_fp),
        "reference_seconds": round(ref_seconds, 6),
        "fast_seconds": round(fast_seconds, 6),
        "fast_idle_bus_seconds": round(idle_seconds, 6),
        "reference_accesses_per_second": round(len(trace) / ref_seconds),
        "fast_accesses_per_second": round(len(trace) / fast_seconds),
        "speedup": round(ref_seconds / fast_seconds, 3),
        "speedup_with_idle_bus": round(ref_seconds / idle_seconds, 3),
    }


def bench_batch_sweep(quick: bool, repeats: int) -> List[Dict[str, object]]:
    """Measure batch-vs-fast replica throughput at each sweep width.

    The fast baseline replays the B (seed, trace) pairs one hierarchy at
    a time — exactly what a sweep did before the batch engine — and is
    timed once (B independent runs already average out noise).  The
    batch engine is timed best-of-``repeats``, construction included.
    Any per-replica fingerprint mismatch is a hard error.
    """
    params = HierarchyParams.xeon()
    symbols = 64 if quick else 256
    entries: List[Dict[str, object]] = []
    for replicas in BATCH_SIZES_QUICK if quick else BATCH_SIZES:
        seeds = list(range(replicas))
        traces = [
            fig6_workload(num_symbols=symbols, d=4, seed=seed)
            for seed in seeds
        ]
        start = time.perf_counter()
        fast_fps = [
            run_trace(
                params.build(rng=random.Random(seed), engine="fast"), trace
            ).fingerprint()
            for seed, trace in zip(seeds, traces)
        ]
        fast_seconds = time.perf_counter() - start
        batch_seconds = float("inf")
        batch_fps = None
        for _ in range(repeats):
            start = time.perf_counter()
            results = run_batch_traces(params, seeds, traces)
            elapsed = time.perf_counter() - start
            batch_seconds = min(batch_seconds, elapsed)
            current = [result.fingerprint() for result in results]
            if batch_fps is None:
                batch_fps = current
            elif batch_fps != current:
                raise AssertionError(
                    "batch engine is non-deterministic on repeats at "
                    f"B={replicas}"
                )
        if fast_fps != batch_fps:
            mismatches = [
                index
                for index, (a, b) in enumerate(zip(fast_fps, batch_fps))
                if a != b
            ]
            raise AssertionError(
                f"PARITY FAILURE on batch_sweep B={replicas}: replicas "
                f"{mismatches[:8]} diverge from the fast engine"
            )
        entries.append(
            {
                "replicas": replicas,
                "accesses_per_replica": len(traces[0]),
                "fast_seconds": round(fast_seconds, 6),
                "batch_seconds": round(batch_seconds, 6),
                "fast_replicas_per_second": round(replicas / fast_seconds, 1),
                "batch_replicas_per_second": round(replicas / batch_seconds, 1),
                "speedup_vs_fast": round(fast_seconds / batch_seconds, 3),
            }
        )
    return entries


def check_baseline(
    report: Dict[str, object], baseline_path: str, max_regression: float
) -> List[str]:
    """Speedup-ratio regression gate against a committed baseline."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    baseline_by_name = {
        entry["workload"]: entry for entry in baseline["workloads"]
    }
    failures = []
    for entry in report["workloads"]:
        name = entry["workload"]
        reference_entry = baseline_by_name.get(name)
        if reference_entry is None:
            continue
        floor = reference_entry["speedup"] * (1.0 - max_regression)
        if entry["speedup"] < floor:
            failures.append(
                f"{name}: speedup {entry['speedup']:.2f}x is more than "
                f"{max_regression:.0%} below the baseline "
                f"{reference_entry['speedup']:.2f}x (floor {floor:.2f}x)"
            )
        # The telemetry-off overhead guard: an idle bus must not erode
        # the speedup.  Gated against the *plain* baseline speedup so
        # schema-1 baselines (no idle-bus field) still enforce it.
        if entry["speedup_with_idle_bus"] < floor:
            failures.append(
                f"{name}: speedup with an idle telemetry bus "
                f"{entry['speedup_with_idle_bus']:.2f}x is more than "
                f"{max_regression:.0%} below the baseline "
                f"{reference_entry['speedup']:.2f}x (floor {floor:.2f}x) — "
                "the disabled bus is costing throughput"
            )
    # Batch-engine ratio gate: schema-2 baselines (no batch_sweep) skip
    # it; widths absent from either side are ignored so quick runs can
    # gate against a full-measurement baseline.
    baseline_by_width = {
        entry["replicas"]: entry for entry in baseline.get("batch_sweep", [])
    }
    for entry in report.get("batch_sweep", []):
        reference_entry = baseline_by_width.get(entry["replicas"])
        if reference_entry is None:
            continue
        floor = reference_entry["speedup_vs_fast"] * (1.0 - max_regression)
        if entry["speedup_vs_fast"] < floor:
            failures.append(
                f"batch_sweep B={entry['replicas']}: speedup "
                f"{entry['speedup_vs_fast']:.2f}x is more than "
                f"{max_regression:.0%} below the baseline "
                f"{reference_entry['speedup_vs_fast']:.2f}x "
                f"(floor {floor:.2f}x)"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small trace sizes for CI smoke runs",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timing repeats per engine; best-of-N is reported (default 3)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON report here (default BENCH_engine.json, "
        "suppressed in --quick runs unless given explicitly)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="committed BENCH_engine.json to gate speedup regressions against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        metavar="FRACTION",
        help="allowed fractional speedup drop vs the baseline (default 0.30)",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=10.0,
        metavar="RATIO",
        help="absolute floor for the best batch_sweep speedup-vs-fast "
        "(default 10.0, the tentpole target; 0 disables)",
    )
    args = parser.parse_args(argv)

    report: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "quick": args.quick,
        "repeats": args.repeats,
        "python": platform.python_version(),
        "workloads": [],
        "batch_sweep": [],
    }
    for name in WORKLOADS:
        entry = bench_workload(name, args.quick, args.repeats)
        report["workloads"].append(entry)
        print(
            f"{name:>8}: {entry['accesses']:>7} accesses | "
            f"reference {entry['reference_seconds']:.3f}s | "
            f"fast {entry['fast_seconds']:.3f}s | "
            f"speedup {entry['speedup']:.2f}x "
            f"(idle bus {entry['speedup_with_idle_bus']:.2f}x, parity ok)"
        )
    report["batch_sweep"] = bench_batch_sweep(args.quick, args.repeats)
    for entry in report["batch_sweep"]:
        print(
            f"batch B={entry['replicas']:>3}: "
            f"{entry['accesses_per_replica']:>5} accesses/replica | "
            f"fast {entry['fast_seconds']:.3f}s | "
            f"batch {entry['batch_seconds']:.3f}s | "
            f"{entry['batch_replicas_per_second']:.0f} replicas/s | "
            f"speedup {entry['speedup_vs_fast']:.2f}x (parity ok)"
        )

    out_path = args.out
    if out_path is None and not args.quick:
        out_path = "BENCH_engine.json"
    if out_path is not None:
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"report written to {out_path}")

    if args.min_batch_speedup > 0:
        best = max(
            entry["speedup_vs_fast"] for entry in report["batch_sweep"]
        )
        if best < args.min_batch_speedup:
            print(
                f"REGRESSION: best batch_sweep speedup {best:.2f}x is below "
                f"the {args.min_batch_speedup:.1f}x floor",
                file=sys.stderr,
            )
            return 1
        print(
            f"batch speedup gate ok ({best:.2f}x >= "
            f"{args.min_batch_speedup:.1f}x)"
        )

    if args.baseline is not None:
        failures = check_baseline(report, args.baseline, args.max_regression)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"regression gate ok (vs {args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
