#!/usr/bin/env python3
"""Detect the channel: can an online monitor see the WB sender at all?

The paper's Section 7 claims the WB channel is stealthy because its
per-bit footprint is one posted store, while the classic LRU channel
must keep re-touching its line for every 1-bit.  This example puts both
senders — and a benign co-runner with the identical whole-process
activity — under two live detectors at the same bandwidth:

* a CloudRadar-style windowed counter monitor, and
* a CC-Hunter-style autocorrelation detector over the conflict train,

both calibrated on benign execution with thresholds three sigmas above
the benign scores.  Expected outcome: the LRU sender lights up both
detectors; the WB sender stays inside the benign envelope.

Usage::

    python examples/detect_the_channel.py [--full] [--seed N]
"""

import argparse

from repro.experiments.registry import run_experiment

#: Eight shade levels for the score sparklines.
BLOCKS = " .:-=+*#"


def sparkline(values, ceiling):
    if not values:
        return "(no complete windows)"
    scale = max(ceiling, 1e-9)
    out = []
    for value in values:
        index = min(int(len(BLOCKS) * value / (2.0 * scale)), len(BLOCKS) - 1)
        out.append(BLOCKS[index])
    return "".join(out)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale run (192 symbols per scenario; ~4x slower)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    args = parser.parse_args()

    result = run_experiment(
        "online_detection",
        profile="full" if args.full else "quick",
        seed=args.seed,
    )
    rates = result.params["detection_rates"]

    print("Online detection at matched bandwidth "
          f"(Ts = {result.params['period']} cycles, "
          f"{result.params['num_symbols']} symbols per scenario)")
    print("=" * 66)
    print(result.render())

    for name, label in (
        ("monitor", "windowed counter monitor (CloudRadar-style)"),
        ("burst", "conflict-train autocorrelation (CC-Hunter-style)"),
    ):
        threshold = float(result.row_dict("detector")[name][1])
        print(f"{label}")
        print(f"  scores per window, '{BLOCKS[-1]}' = 2x the operating "
              f"threshold ({threshold:.2f}):")
        for scenario in ("benign", "wb", "lru"):
            scores = result.series[f"{name}_scores_{scenario}"]
            print(f"    {scenario:>6}: {sparkline(scores, threshold)}")
        print()

    wb_hidden = all(
        rates[name]["wb"] <= rates[name]["benign"] for name in ("monitor", "burst")
    )
    lru_caught = all(
        rates[name]["lru"] > rates[name]["benign"] for name in ("monitor", "burst")
    )
    print("verdict:")
    print(f"  LRU sender flagged above benign FPR on both views: "
          f"{'yes' if lru_caught else 'NO'}")
    print(f"  WB sender indistinguishable from benign traffic:   "
          f"{'yes' if wb_hidden else 'NO'}")
    if result.params["stealth_holds"]:
        print("  -> the paper's stealth claim holds against live monitors.")
    else:
        print("  -> stealth claim NOT reproduced at these settings.")


if __name__ == "__main__":
    main()
