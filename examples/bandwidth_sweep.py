#!/usr/bin/env python3
"""Bandwidth sweep: how fast can the WB channel go? (Figures 6 and 8.)

Sweeps the symbol period for binary (d = 1, 8) and two-bit encodings and
prints BER per rate — the experiment behind the paper's headline claim
that multi-bit symbols push the channel from ~1300 Kbps to ~4400 Kbps.

Usage::

    python examples/bandwidth_sweep.py [--messages N]
"""

import argparse
import statistics

from repro.channels.encoding import BinaryDirtyCodec, MultiBitDirtyCodec
from repro.channels.wb import WBChannelConfig, calibrate_decoder, run_wb_channel
from repro.common.units import cycles_to_kbps

PERIODS = (800, 1000, 1600, 2200, 5500, 11000)


def sweep(codec, messages: int, message_bits: int):
    decoder = calibrate_decoder(codec.levels, repetitions=40)
    for period in PERIODS:
        bers = [
            run_wb_channel(
                WBChannelConfig(
                    codec=codec,
                    period_cycles=period,
                    message_bits=message_bits,
                    seed=seed,
                    decoder=decoder,
                )
            ).bit_error_rate
            for seed in range(messages)
        ]
        rate = cycles_to_kbps(period, codec.bits_per_symbol)
        yield period, rate, statistics.fmean(bers)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--messages", type=int, default=10,
                        help="messages per (codec, rate) point")
    args = parser.parse_args()

    print(f"{'encoding':<22} {'Ts':>6} {'rate':>9} {'BER':>8}")
    print("-" * 50)
    for label, codec, bits in (
        ("binary d=1", BinaryDirtyCodec(d_on=1), 128),
        ("binary d=8", BinaryDirtyCodec(d_on=8), 128),
        ("2-bit d={0,3,5,8}", MultiBitDirtyCodec(), 256),
    ):
        for period, rate, ber in sweep(codec, args.messages, bits):
            print(f"{label:<22} {period:>6} {rate:>7.0f}Kb {ber:>8.2%}")
        print("-" * 50)
    print("Compare with the paper: <5% at 1375 Kbps binary;")
    print("~3.5% at 4400 Kbps with two-bit symbols (Figures 6 and 8).")


if __name__ == "__main__":
    main()
