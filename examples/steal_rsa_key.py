#!/usr/bin/env python3
"""Steal an RSA-style private exponent through the WB side channel.

A concrete instance of the paper's Section 9: the victim runs
left-to-right square-and-multiply modular exponentiation, whose multiply
step — executed only for 1-bits of the secret exponent — *writes* its
working buffer.  That store is exactly Listing 2(a)'s gadget, and the
attacker reads each exponent bit from the replacement latency of the
multiply buffer's cache set.

Usage::

    python examples/steal_rsa_key.py [--bits 64]
"""

import argparse
import random

from repro.common.bits import bits_to_string
from repro.sidechannel.rsa_victim import recover_exponent


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bits", type=int, default=64, help="exponent width")
    args = parser.parse_args()

    secret = random.Random(0xC0FFEE).getrandbits(args.bits)
    print(f"victim's secret exponent ({args.bits} bits): {secret:#x}")
    print("attacker sees only cache replacement latencies...\n")

    result = recover_exponent(secret, bit_width=args.bits, seed=7)

    print(f"true bits:      {bits_to_string(result.true_exponent_bits)}")
    print(f"recovered bits: {bits_to_string(result.recovered_bits)}")
    print(f"accuracy:       {result.accuracy:.1%}")
    recovered_value = int(bits_to_string(result.recovered_bits), 2)
    print(f"recovered key:  {recovered_value:#x}")
    print(f"key match:      {recovered_value == secret}")
    print()
    print("(the victim's exponentiation result was verified against pow():")
    print(f" {result.modexp_result:#x})")


if __name__ == "__main__":
    main()
