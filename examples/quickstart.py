#!/usr/bin/env python3
"""Quickstart: transmit a message over the WB covert channel.

Runs the paper's attack end to end on the simulated Xeon E5-2650:

1. calibrate the latency thresholds (Figure 4's bands),
2. launch the sender and receiver as two hyper-threads,
3. decode the receiver's replacement-latency trace,
4. score the transmission with the Wagner-Fischer edit distance.

Usage::

    python examples/quickstart.py
"""

from repro import WBChannelConfig, run_wb_channel
from repro.channels.encoding import BinaryDirtyCodec


def main() -> None:
    config = WBChannelConfig(
        codec=BinaryDirtyCodec(d_on=4),  # 4 dirty lines encode a 1
        period_cycles=5500,              # Ts = Tr = 5500 -> 400 Kbps
        message_bits=128,                # 16-bit preamble + 112-bit payload
        seed=2024,
    )
    result = run_wb_channel(config)

    print("WB covert channel (simulated Intel Xeon E5-2650)")
    print("=" * 60)
    print(f"rate:           {result.rate_kbps:.0f} Kbps (Ts = {result.period_cycles} cycles)")
    print(f"decoder:        {result.decoder.describe()}")
    print(f"sent      bits: {''.join(map(str, result.sent_bits[:48]))}...")
    print(f"received  bits: {''.join(map(str, result.received_bits[:48]))}...")
    print(f"bit errors:     {result.errors} / {len(result.sent_bits)} "
          f"(BER {result.bit_error_rate:.2%})")
    print()
    print("receiver's first 12 latency samples (cycles):")
    for timestamp, latency in result.samples[:12]:
        bar = "#" * ((latency - 120) // 4)
        print(f"  t={timestamp:>8}  {latency:>4}  {bar}")
    print()
    print(f"sender cache loads/ms:   {result.sender_perf.l1_loads_per_ms:,.0f}")
    print(f"receiver cache loads/ms: {result.receiver_perf.l1_loads_per_ms:,.0f}")


if __name__ == "__main__":
    main()
