#!/usr/bin/env python3
"""Defense shoot-out: which secure caches actually stop the WB channel?

Evaluates every Section 8 defense: PLcache, DAWG/Nomo way partitioning,
random-fill, CEASER-style randomized mapping and a write-through L1 —
reporting the attacker's best bit error rate and the benign-workload
overhead.  The paper's verdicts (random fill does NOT help; write-through
removes the channel outright) fall out of the table.

Usage::

    python examples/defense_shootout.py [--seeds N]
"""

import argparse

from repro.defenses import evaluate_all


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=4,
                        help="covert-channel messages per defense")
    args = parser.parse_args()

    print("Evaluating defenses against the WB covert channel "
          f"({args.seeds} messages each)...")
    print()
    for report in evaluate_all(seeds=range(args.seeds)):
        print(report)
        print(f"{'':21}{report.notes}")
        print()
    print("Verdict legend: 'mitigated' = best attacker near coin-flipping;")
    print("'CHANNEL ALIVE' = usable data still gets through.")


if __name__ == "__main__":
    main()
