#!/usr/bin/env python3
"""Side channel: steal a secret key from a victim gadget (Section 9).

The victim branches on each bit of its secret (Listing 2 of the paper);
the attacker never sees the secret, only the replacement latency of the
cache set the victim's store lands in.  All three of the paper's attack
scenarios run against the same 128-bit secret.

Usage::

    python examples/side_channel_attack.py
"""

import random

from repro.common.bits import bits_to_string, random_bits
from repro.sidechannel import (
    dirty_eviction_attack,
    dirty_state_attack,
    execution_time_attack,
)


def show(result) -> None:
    print(f"  scenario:   {result.scenario}")
    print(f"  secret:     {bits_to_string(result.secret[:48])}...")
    print(f"  recovered:  {bits_to_string(result.recovered[:48])}...")
    low, high = result.calibration_means
    print(f"  calibrated medians: secret=0 -> {low:.0f} cy, secret=1 -> {high:.0f} cy")
    print(f"  accuracy:   {result.accuracy:.1%}")
    print()


def main() -> None:
    secret = random_bits(128, random.Random(0xBEEF))
    print("WB side-channel attacks against the Listing 2 victim gadgets")
    print("=" * 64)

    print("Scenario 1 — dirty-state attack (gadget a, lines in ONE set).")
    print("Prime+Probe and the LRU channel cannot decode this placement;")
    print("the WB attack keys on the dirty bit, not the line identity:")
    show(dirty_state_attack(secret, seed=1))

    print("Scenario 2 — dirty-eviction attack (gadget b, loads only).")
    print("The attacker pre-fills the set with dirty lines and detects the")
    print("victim's load by the *missing* write-back:")
    show(dirty_eviction_attack(secret, seed=2))

    print("Scenario 3 — execution-time attack (timing the victim call).")
    print("A dirty victim line slows the victim's own fill:")
    show(execution_time_attack(secret, seed=3))


if __name__ == "__main__":
    main()
