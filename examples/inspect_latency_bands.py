#!/usr/bin/env python3
"""Visualise the channel's physical signal: Figure 4's latency bands.

Measures the replacement-set traversal latency for every dirty-line count
d = 0..8 and prints text histograms — the nine separated bands that make
the WB channel (and its multi-bit encoding) possible.

Usage::

    python examples/inspect_latency_bands.py [--reps N]
"""

import argparse
import statistics

from repro.analysis.cdf import histogram
from repro.channels.wb import measure_latency_distributions


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=300,
                        help="measurements per dirty-line count")
    args = parser.parse_args()

    samples = measure_latency_distributions(
        levels=list(range(9)), repetitions=args.reps
    )
    print("Replacement-set access latency vs dirty lines (Figure 4)")
    print("=" * 64)
    previous_median = None
    for d in range(9):
        series = samples[d]
        median = statistics.median(series)
        step = "" if previous_median is None else f"  (+{median - previous_median:.0f})"
        print(f"\nd = {d}: median {median:.0f} cycles{step}")
        for edge, count in sorted(histogram(series, bin_width=2.0).items()):
            bar = "#" * max(1, count * 40 // args.reps)
            print(f"  {edge:>6.0f}  {bar}")
        previous_median = median
    print("\nEach dirty line adds ~one write-back penalty (~11 cycles);")
    print("the nine bands are what the threshold decoder slices apart.")


if __name__ == "__main__":
    main()
