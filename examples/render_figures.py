#!/usr/bin/env python3
"""Render the paper's figures as SVG files (no plotting stack needed).

Regenerates Figure 4 (latency CDFs), Figure 5 (binary traces), Figure 7
(multi-bit trace) and Figures 6/8 (BER vs rate) from the experiment
modules and writes them as SVGs under ``figures/``.

With ``--results DIR`` the figures are rendered from a persisted run
manifest (``wb-experiments --all --jobs N --out DIR``) instead of being
recomputed; experiments missing from the manifest fall back to running.

Usage::

    python examples/render_figures.py [--outdir figures] [--full]
    python examples/render_figures.py --results results/
"""

import argparse
import pathlib

from repro.analysis.svg import ber_chart, cdf_chart, trace_chart
from repro.experiments import run_experiment
from repro.runner import RunManifest


def make_loader(results_dir, profile):
    """Result source: the persisted manifest when given, else recompute."""
    manifest = None
    if results_dir is not None:
        manifest = RunManifest.load(results_dir)

    def load(experiment_id):
        if manifest is not None:
            try:
                entry = manifest.entry(experiment_id)
            except Exception:
                entry = None
            if entry is not None and entry.ok:
                print(f"loaded {experiment_id} from manifest")
                return entry.result
        return run_experiment(experiment_id, profile=profile)

    return load


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="figures")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale repetition counts (slower)")
    parser.add_argument("--results", default=None, metavar="DIR",
                        help="read results from a run manifest instead of "
                             "recomputing (see wb-experiments --out)")
    args = parser.parse_args()
    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    load = make_loader(args.results, "full" if args.full else "quick")

    # Figure 4 — CDF of replacement latency per dirty-line count.
    fig4 = load("fig4")
    chart = cdf_chart(
        "Figure 4: replacement latency CDF vs dirty lines",
        {
            f"d={d}": fig4.series[f"latencies_d{d}"]
            for d in range(9)
        },
    )
    chart.save(outdir / "fig4_latency_cdfs.svg")

    # Figure 5 — binary traces at 400 Kbps.
    fig5 = load("fig5")
    for d in (1, 4, 8):
        threshold = fig5.series[f"threshold_d{d}"][0]
        chart = trace_chart(
            f"Figure 5 (d={d}): receiver trace at 400 Kbps",
            fig5.series[f"trace_d{d}"],
            thresholds=[threshold],
        )
        chart.save(outdir / f"fig5_trace_d{d}.svg")

    # Figure 7 — multi-bit trace at 1100 Kbps.
    fig7 = load("fig7")
    chart = trace_chart(
        "Figure 7: 2-bit symbol trace at 1100 Kbps (d=0/3/5/8)",
        fig7.series["trace"],
        thresholds=fig7.series["thresholds"],
    )
    chart.save(outdir / "fig7_multibit_trace.svg")

    # Figure 6 — BER vs rate, binary encodings.
    fig6 = load("fig6")
    rates = [float(row[1]) for row in fig6.rows]
    curves = {}
    for column, header in enumerate(fig6.columns[2:], start=2):
        bers = [float(row[column].rstrip("%")) / 100 for row in fig6.rows]
        curves[header] = list(zip(rates, bers))
    chart = ber_chart("Figure 6: BER vs rate (binary symbols)", curves)
    chart.save(outdir / "fig6_ber_binary.svg")

    # Figure 8 — BER vs rate, 2-bit symbols.
    fig8 = load("fig8")
    points = [
        (float(row[1]), float(row[2].rstrip("%")) / 100) for row in fig8.rows
    ]
    chart = ber_chart(
        "Figure 8: BER vs rate (2-bit symbols, d=0/3/5/8)",
        {"2-bit symbols": points},
    )
    chart.save(outdir / "fig8_ber_multibit.svg")

    for path in sorted(outdir.glob("*.svg")):
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
