#!/usr/bin/env python3
"""Render the paper's figures as SVG files (no plotting stack needed).

Regenerates Figure 4 (latency CDFs), Figure 5 (binary traces), Figure 7
(multi-bit trace) and Figures 6/8 (BER vs rate) from the experiment
modules and writes them as SVGs under ``figures/``.

Usage::

    python examples/render_figures.py [--outdir figures] [--full]
"""

import argparse
import pathlib

from repro.analysis.svg import ber_chart, cdf_chart, trace_chart
from repro.experiments import run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="figures")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale repetition counts (slower)")
    args = parser.parse_args()
    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    quick = not args.full

    # Figure 4 — CDF of replacement latency per dirty-line count.
    fig4 = run_experiment("fig4", quick=quick)
    chart = cdf_chart(
        "Figure 4: replacement latency CDF vs dirty lines",
        {
            f"d={d}": fig4.series[f"latencies_d{d}"]
            for d in range(9)
        },
    )
    chart.save(outdir / "fig4_latency_cdfs.svg")

    # Figure 5 — binary traces at 400 Kbps.
    fig5 = run_experiment("fig5", quick=quick)
    for d in (1, 4, 8):
        threshold = fig5.series[f"threshold_d{d}"][0]
        chart = trace_chart(
            f"Figure 5 (d={d}): receiver trace at 400 Kbps",
            fig5.series[f"trace_d{d}"],
            thresholds=[threshold],
        )
        chart.save(outdir / f"fig5_trace_d{d}.svg")

    # Figure 7 — multi-bit trace at 1100 Kbps.
    fig7 = run_experiment("fig7", quick=quick)
    chart = trace_chart(
        "Figure 7: 2-bit symbol trace at 1100 Kbps (d=0/3/5/8)",
        fig7.series["trace"],
        thresholds=fig7.series["thresholds"],
    )
    chart.save(outdir / "fig7_multibit_trace.svg")

    # Figure 6 — BER vs rate, binary encodings.
    fig6 = run_experiment("fig6", quick=quick)
    rates = [float(row[1]) for row in fig6.rows]
    curves = {}
    for column, header in enumerate(fig6.columns[2:], start=2):
        bers = [float(row[column].rstrip("%")) / 100 for row in fig6.rows]
        curves[header] = list(zip(rates, bers))
    chart = ber_chart("Figure 6: BER vs rate (binary symbols)", curves)
    chart.save(outdir / "fig6_ber_binary.svg")

    # Figure 8 — BER vs rate, 2-bit symbols.
    fig8 = run_experiment("fig8", quick=quick)
    points = [
        (float(row[1]), float(row[2].rstrip("%")) / 100) for row in fig8.rows
    ]
    chart = ber_chart(
        "Figure 8: BER vs rate (2-bit symbols, d=0/3/5/8)",
        {"2-bit symbols": points},
    )
    chart.save(outdir / "fig8_ber_multibit.svg")

    for path in sorted(outdir.glob("*.svg")):
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
