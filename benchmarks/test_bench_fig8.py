"""Benchmark: regenerate Figure 8 (BER vs rate for 2-bit symbols)."""

from __future__ import annotations


def test_bench_fig8(run_quick):
    """Figure 8: BER vs rate for 2-bit symbols."""
    result = run_quick("fig8")
    rates = [float(row[1]) for row in result.rows]
    assert max(rates) >= 4400.0
