"""Benchmark: regenerate Figure 4 (latency CDFs for d = 0..8)."""

from __future__ import annotations


def test_bench_fig4(run_quick):
    """Figure 4: latency CDFs for d = 0..8."""
    result = run_quick("fig4")
    medians = [row[2] for row in result.rows]
    assert medians == sorted(medians)
