"""Benchmark: regenerate Figure 6 (BER vs rate for binary encodings)."""

from __future__ import annotations


def test_bench_fig6(run_quick):
    """Figure 6: BER vs rate for binary encodings."""
    result = run_quick("fig6")
    assert result.rows[0][0] == 800 and result.rows[-1][0] == 11000
