"""Benchmark: regenerate Ablation (error-source decomposition at 1375 Kbps)."""

from __future__ import annotations


def test_bench_ablation_errors(run_quick):
    """Ablation: error-source decomposition at 1375 Kbps."""
    result = run_quick("ablation_errors")
    clean = float(result.rows[-1][1].rstrip("%"))
    assert clean == 0.0  # all sources removed -> error-free
