"""Benchmark the parallel runner against in-process serial execution.

Runs the same three-experiment batch through ``jobs=1`` (in-process) and
``jobs=2`` (worker pool) so the tracked timings expose the runner's
dispatch overhead and speedup on a known workload.  Results must be
bit-identical between the two modes — that assertion rides along with the
timing.
"""

import pytest

from repro.runner import run_experiments

BATCH = ["table2", "fig5", "sidechannel"]


def _run(jobs: int):
    return run_experiments(BATCH, profile="quick", jobs=jobs)


@pytest.mark.benchmark(group="runner")
def test_bench_runner_serial(benchmark):
    manifest = benchmark.pedantic(_run, args=(1,), rounds=1, iterations=1)
    assert manifest.ok


@pytest.mark.benchmark(group="runner")
def test_bench_runner_parallel_2(benchmark):
    manifest = benchmark.pedantic(_run, args=(2,), rounds=1, iterations=1)
    assert manifest.ok
    serial = _run(1)
    for task_id, result in serial.results().items():
        assert manifest.entry(task_id).result.to_json() == result.to_json()
