"""Benchmark: regenerate Extension (2-bit vs 3-bit symbol encoding)."""

from __future__ import annotations


def test_bench_extension_3bit(run_quick):
    """Extension: 2-bit vs 3-bit symbol encoding."""
    result = run_quick("extension_3bit")
    assert len(result.rows) == 6
