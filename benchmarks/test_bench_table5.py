"""Benchmark: regenerate Table 5 (random-replacement eviction probabilities)."""

from __future__ import annotations


def test_bench_table5(run_quick):
    """Table 5: random-replacement eviction probabilities."""
    result = run_quick("table5")
    assert len(result.rows) == 6  # 2 dirty counts x 3 variants
