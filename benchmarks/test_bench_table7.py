"""Benchmark: regenerate Table 7 (sender loads per millisecond, WB vs LRU)."""

from __future__ import annotations


def test_bench_table7(run_quick):
    """Table 7: sender loads per millisecond, WB vs LRU."""
    result = run_quick("table7")
    ratio = result.params["wb_to_lru_ratio"]
    assert ratio < 1.0  # WB sender is the quieter one
