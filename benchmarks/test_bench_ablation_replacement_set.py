"""Benchmark: regenerate Ablation (replacement-set size design rule)."""

from __future__ import annotations


def test_bench_ablation_replacement_set(run_quick):
    """Ablation: replacement-set size design rule."""
    result = run_quick("ablation_replacement_set")
    assert [row[0] for row in result.rows] == [8, 9, 10, 12]
