"""Benchmark: regenerate Table 6 (sender miss-rate stealthiness)."""

from __future__ import annotations


def test_bench_table6(run_quick):
    """Table 6: sender miss-rate stealthiness."""
    result = run_quick("table6")
    assert len(result.rows) == 6  # 2 encodings x 3 scenarios
