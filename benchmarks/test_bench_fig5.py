"""Benchmark: regenerate Figure 5 (binary receiver traces at 400 Kbps)."""

from __future__ import annotations


def test_bench_fig5(run_quick):
    """Figure 5: binary receiver traces at 400 Kbps."""
    result = run_quick("fig5")
    assert [row[0] for row in result.rows] == [1, 4, 8]
