"""Benchmark: regenerate Section 6 / Figure 9 (noise robustness vs LRU and Prime+Probe)."""

from __future__ import annotations


def test_bench_stability(run_quick):
    """Section 6 / Figure 9: noise robustness vs LRU and Prime+Probe."""
    result = run_quick("stability")
    noise_row = next(r for r in result.rows if r[0] == "noise loads")
    assert float(noise_row[1].rstrip("%")) < float(noise_row[2].rstrip("%"))
