"""Benchmark: regenerate Figure 7 (multi-bit receiver trace at 1100 Kbps)."""

from __future__ import annotations


def test_bench_fig7(run_quick):
    """Figure 7: multi-bit receiver trace at 1100 Kbps."""
    result = run_quick("fig7")
    assert [row[1] for row in result.rows] == [0, 3, 5, 8]
