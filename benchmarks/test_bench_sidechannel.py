"""Benchmark: regenerate Section 9 (secret recovery through the three scenarios)."""

from __future__ import annotations


def test_bench_sidechannel(run_quick):
    """Section 9: secret recovery through the three scenarios."""
    result = run_quick("sidechannel")
    for row in result.rows:
        assert float(row[1].rstrip("%")) >= 90.0
