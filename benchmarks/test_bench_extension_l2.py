"""Benchmark: regenerate Extension (WB channel on the L2 cache)."""

from __future__ import annotations


def test_bench_extension_l2(run_quick):
    """Extension: the WB channel deployed on the L2 cache."""
    result = run_quick("extension_l2")
    levels = [row[0] for row in result.rows]
    assert levels == ["L1", "L1", "L2", "L2"]
