"""Benchmark: regenerate Section 8 (defense mitigation strengths and overheads)."""

from __future__ import annotations


def test_bench_defenses(run_quick):
    """Section 8: defense mitigation strengths and overheads."""
    result = run_quick("defenses")
    verdicts = {row[0]: row[3] for row in result.rows}
    assert verdicts["plcache"] == "mitigated"
    assert verdicts["random-fill"] == "ALIVE"
