"""Benchmark: regenerate Table 4 (the three access-latency classes)."""

from __future__ import annotations


def test_bench_table4(run_quick):
    """Table 4: the three access-latency classes."""
    result = run_quick("table4")
    _, l1, clean, dirty = result.rows[0]
    assert l1 == "4-5"
    assert int(dirty.split("-")[0]) >= 2 * int(clean.split("-")[0]) - 2
