"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures through
:func:`repro.experiments.run_experiment` in quick mode and prints the
rendered result, so a ``pytest benchmarks/ --benchmark-only`` run doubles
as a smoke reproduction of the whole evaluation section.

The experiments are Monte-Carlo simulations (seconds each), so each
benchmark runs a single round — the timing is a tracked cost figure, not
a micro-benchmark.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


@pytest.fixture
def run_quick(benchmark):
    """Benchmark one experiment in quick mode and echo its table."""

    def runner(experiment_id: str):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"profile": "quick"},
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        return result

    return runner
