"""Benchmark: regenerate Table 2 (eviction probability vs replacement-set size)."""

from __future__ import annotations


def test_bench_table2(run_quick):
    """Table 2: eviction probability vs replacement-set size."""
    result = run_quick("table2")
    rows = result.row_dict("N")
    assert rows[10][1] == "100.0%"  # LRU certain at N=10
    assert float(rows[10][3].rstrip("%")) == 100.0  # E5 surrogate certain at 10
