"""Benchmark: regenerate Section 6.1 (the channel under random replacement)."""

from __future__ import annotations


def test_bench_random_policy(run_quick):
    """Section 6.1: the channel under random replacement."""
    result = run_quick("random_policy")
    bers = [float(row[3].rstrip("%")) for row in result.rows]
    assert bers[-1] <= bers[0] + 3.0  # more dirty lines help
