"""Benchmark: fast struct-of-arrays engine vs the reference core.

Unlike the other benchmarks (which time whole experiments), this one
times the raw simulation loop on the Figure 6 covert-channel workload —
the inner loop every experiment spends its cycles in.  Both engines
replay the identical trace; the fingerprints must match (the parity
guarantee), and the benchmark table shows the speedup.

``scripts/bench_engine.py`` is the scripted version of this measurement
and writes the committed ``BENCH_engine.json``.
"""

from __future__ import annotations

import random

import pytest

from repro.cache.configs import make_xeon_hierarchy
from repro.engine import fig6_workload, run_trace


@pytest.fixture(scope="module")
def trace():
    return fig6_workload(num_symbols=256, d=4, seed=0)


@pytest.fixture(scope="module")
def reference_fingerprint(trace):
    hierarchy = make_xeon_hierarchy(rng=random.Random(0), engine="reference")
    return run_trace(hierarchy, trace, owner=0).fingerprint()


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_bench_engine(benchmark, engine, trace, reference_fingerprint):
    def replay():
        hierarchy = make_xeon_hierarchy(rng=random.Random(0), engine=engine)
        return run_trace(hierarchy, trace, owner=0)

    result = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert result.fingerprint() == reference_fingerprint


def test_bench_fast_engine_idle_bus(benchmark, trace, reference_fingerprint):
    """Telemetry attached but disabled: must cost ~nothing on the fast path."""
    from repro.telemetry import TelemetryBus

    def replay():
        hierarchy = make_xeon_hierarchy(rng=random.Random(0), engine="fast")
        hierarchy.attach_telemetry(TelemetryBus(enabled=False))
        return run_trace(hierarchy, trace, owner=0)

    result = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert result.fingerprint() == reference_fingerprint


def test_bench_fast_engine_telemetry_on(benchmark, trace, reference_fingerprint):
    """Full observability: the pay-for-what-you-use upper bound."""
    from repro.telemetry import TelemetryBus, TraceRecorder

    def replay():
        hierarchy = make_xeon_hierarchy(rng=random.Random(0), engine="fast")
        hierarchy.attach_telemetry(TelemetryBus()).subscribe(TraceRecorder())
        return run_trace(hierarchy, trace, owner=0)

    result = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert result.fingerprint() == reference_fingerprint


def test_bench_batch_engine_sweep(benchmark, reference_fingerprint):
    """B=32 replicas of the fig6 workload through the batched kernel.

    Compare mean time against ``test_bench_engine[fast]`` × 32: the gap
    is the per-replica interpreter cost the array-of-simulations layout
    amortises.  Replica 0 shares seed/trace with the scalar benchmarks,
    so its fingerprint doubles as the parity check.
    """
    from repro.cache.configs import HierarchyParams
    from repro.engine.batch import run_batch_traces

    params = HierarchyParams.xeon()
    seeds = list(range(32))
    traces = [fig6_workload(num_symbols=256, d=4, seed=s) for s in seeds]

    def replay():
        return run_batch_traces(params, seeds, traces)

    results = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert len(results) == len(seeds)
    assert results[0].fingerprint() == reference_fingerprint
