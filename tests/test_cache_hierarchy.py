"""Hierarchy behaviour: the latency rule that *is* the paper's channel."""

import random

import pytest

from repro.cache import (
    CacheHierarchy,
    LatencyModel,
    MEMORY_LEVEL,
    make_tiny_hierarchy,
    make_xeon_hierarchy,
)
from repro.cache.cache import WritePolicy
from repro.common.errors import ConfigurationError
from repro.mem.address_space import AddressSpace, FrameAllocator
from repro.mem.sets import build_set_conflicting_lines


@pytest.fixture
def quiet_xeon():
    """Xeon hierarchy with jitter disabled for exact latency assertions."""
    from repro.cache.configs import XeonE5_2650Config

    config = XeonE5_2650Config(latency=LatencyModel(jitter=0))
    return make_xeon_hierarchy(config=config, rng=random.Random(0))


def conflict_lines(hierarchy, space, target_set, count):
    return [
        space.translate(va)
        for va in build_set_conflicting_lines(
            space, hierarchy.l1.layout, target_set, count
        )
    ]


class TestLatencyClasses:
    """The Table 4 anchors, asserted exactly (jitter off)."""

    def test_l1_hit_latency(self, quiet_xeon):
        quiet_xeon.load(0x1000)
        assert quiet_xeon.load(0x1000).latency == 4

    def test_memory_latency_on_cold_miss(self, quiet_xeon):
        trace = quiet_xeon.load(0x1000)
        assert trace.hit_level == MEMORY_LEVEL
        assert trace.latency == 200

    def test_clean_replacement_costs_l2_hit(self, quiet_xeon, space):
        lines = conflict_lines(quiet_xeon, space, 5, 10)
        for line in lines:
            quiet_xeon.load(line)
        # lines[0] and [1] were evicted to L2 by the last loads; reloading
        # one replaces a *clean* line: pure L2 hit cost.
        trace = quiet_xeon.load(lines[0])
        assert trace.hit_level == 2
        assert not trace.l1_victim_dirty
        assert trace.latency == 11

    def test_dirty_replacement_adds_writeback_penalty(self, quiet_xeon, space):
        lines = conflict_lines(quiet_xeon, space, 5, 9)
        for line in lines[:8]:
            quiet_xeon.store(line)  # set full of dirty lines
        quiet_xeon.load(lines[8])  # evict one dirty -> L2
        trace = quiet_xeon.load(lines[0]) if not quiet_xeon.l1.probe(lines[0]) else None
        # lines[0] may or may not have been the victim; find an evicted one.
        victim = next(l for l in lines[:8] if not quiet_xeon.l1.probe(l))
        trace = quiet_xeon.load(victim)
        assert trace.hit_level == 2
        assert trace.l1_victim_dirty
        assert trace.latency == 22

    def test_the_channels_signal_is_exactly_the_penalty(self, quiet_xeon):
        model = quiet_xeon.latency
        assert model.hit_latency(2) + model.writeback_penalty(1) == 22


class TestWritebackPath:
    def test_dirty_eviction_lands_in_l2_dirty(self, tiny, space):
        lines = conflict_lines(tiny, space, 1, 3)
        tiny.store(lines[0])
        tiny.load(lines[1])
        tiny.load(lines[2])  # evicts lines[0] (2-way LRU)
        assert not tiny.l1.probe(lines[0])
        assert tiny.levels[1].probe(lines[0])
        assert tiny.levels[1].is_dirty(lines[0])

    def test_clean_eviction_does_not_mark_l2_dirty(self, tiny, space):
        lines = conflict_lines(tiny, space, 1, 3)
        for line in lines:
            tiny.load(line)
        assert not tiny.levels[1].is_dirty(lines[0])

    def test_writeback_counted_in_stats(self, tiny, space):
        lines = conflict_lines(tiny, space, 1, 3)
        tiny.store(lines[0], owner=0)
        tiny.load(lines[1], owner=0)
        tiny.load(lines[2], owner=0)
        assert tiny.stats.level(1).writebacks == 1

    def test_memory_write_when_dirty_leaves_last_level(self):
        # Single-level hierarchy: dirty eviction must hit memory.
        from repro.cache.cache import Cache
        from repro.replacement.registry import make_policy_factory

        l1 = Cache("L1", 128, 1, 64, make_policy_factory("lru"), rng=random.Random(0))
        hierarchy = CacheHierarchy(levels=[l1], rng=random.Random(0))
        hierarchy.store(0x0)
        hierarchy.load(0x80)  # same set, evicts dirty 0x0
        assert hierarchy.stats.memory_writes == 1


class TestStoreSemantics:
    def test_store_hit_sets_dirty(self, quiet_xeon):
        quiet_xeon.load(0x1000)
        quiet_xeon.store(0x1000)
        assert quiet_xeon.l1.is_dirty(0x1000)

    def test_store_miss_write_allocate_installs_dirty(self, quiet_xeon):
        quiet_xeon.store(0x2000)
        assert quiet_xeon.l1.probe(0x2000)
        assert quiet_xeon.l1.is_dirty(0x2000)

    def test_write_through_l1_never_dirty(self):
        hierarchy = make_tiny_hierarchy(
            l1_write_policy=WritePolicy.WRITE_THROUGH, rng=random.Random(0)
        )
        hierarchy.load(0x1000)
        hierarchy.store(0x1000)
        assert not hierarchy.l1.is_dirty(0x1000)
        # The store settled in the (write-back) L2 instead.
        assert hierarchy.levels[1].is_dirty(0x1000)


class TestFlush:
    def test_flush_removes_from_all_levels(self, quiet_xeon):
        quiet_xeon.load(0x3000)
        quiet_xeon.flush(0x3000)
        assert quiet_xeon.probe_level(0x3000) == MEMORY_LEVEL

    def test_flush_latency_depends_on_residency(self, quiet_xeon):
        absent = quiet_xeon.flush(0x4000)
        quiet_xeon.load(0x4000)
        present = quiet_xeon.flush(0x4000)
        assert present > absent  # the Flush+Flush signal

    def test_flush_of_dirty_line_writes_memory(self, quiet_xeon):
        quiet_xeon.store(0x5000)
        before = quiet_xeon.stats.memory_writes
        quiet_xeon.flush(0x5000)
        assert quiet_xeon.stats.memory_writes == before + 1


class TestTraceContents:
    def test_trace_records_evictions(self, tiny, space):
        lines = conflict_lines(tiny, space, 2, 3)
        tiny.load(lines[0])
        tiny.load(lines[1])
        trace = tiny.load(lines[2])
        levels = [level for level, _ in trace.evictions]
        assert 1 in levels

    def test_probe_level(self, quiet_xeon, space):
        lines = conflict_lines(quiet_xeon, space, 7, 9)
        for line in lines:
            quiet_xeon.load(line)
        evicted = next(l for l in lines if not quiet_xeon.l1.probe(l))
        assert quiet_xeon.probe_level(evicted) == 2
        assert quiet_xeon.probe_level(lines[-1]) == 1


class TestConstruction:
    def test_rejects_empty_levels(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(levels=[])

    def test_rejects_shrinking_levels(self):
        from repro.cache.cache import Cache
        from repro.replacement.registry import make_policy_factory

        big = Cache("big", 4096, 4, 64, make_policy_factory("lru"), rng=random.Random(0))
        small = Cache("small", 1024, 4, 64, make_policy_factory("lru"), rng=random.Random(0))
        with pytest.raises(ConfigurationError):
            CacheHierarchy(levels=[big, small])
