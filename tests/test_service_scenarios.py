"""Declarative scenario jobs over the service, and the error envelope."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cache.configs import HierarchyParams
from repro.experiments.base import ExperimentResult
from repro.scenario import ScenarioSpec, run_scenario
from repro.scenario.spec import (
    BerSweepParams,
    ChannelSpec,
    CodecSpec,
    Counts,
    CrossCoreParams,
    SCENARIO_SCHEMA_VERSION,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import ServiceApp, make_server
from repro.service.scheduler import JobSpec
from repro.service.store import ResultStore


def tiny_sweep_spec() -> ScenarioSpec:
    """A scenario cheap enough to compute inside an HTTP test."""
    return ScenarioSpec(
        name="http-tiny-sweep",
        kind="wb_ber_sweep",
        title="One-period smoke sweep",
        channel=ChannelSpec(codec=CodecSpec(kind="binary", d_on=2)),
        params=BerSweepParams(
            periods=(11000,),
            messages=Counts(1, 2),
            message_bits=Counts(16, 32),
            calibration_repetitions=Counts(5, 10),
        ),
    )


def tiny_cross_core_spec() -> ScenarioSpec:
    """A 2-core coherence scenario cheap enough for an HTTP test."""
    return ScenarioSpec(
        name="http-cross-core",
        kind="cross_core_wb",
        title="Cross-core smoke transmission",
        channel=ChannelSpec(codec=CodecSpec(kind="binary", d_on=4)),
        hierarchy=HierarchyParams.xeon(cores=2),
        params=CrossCoreParams(
            messages=Counts(1, 1),
            message_bits=Counts(20, 24),
            calibration_repetitions=Counts(8, 10),
            benign_periods=Counts(24, 32),
        ),
    )


@pytest.fixture
def service(tmp_path):
    store = ResultStore(tmp_path / "store")
    app = ServiceApp(store, workers=2, queue_depth=8)
    with app:
        server = make_server(app)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield ServiceClient(f"http://{host}:{port}")
        finally:
            server.shutdown()
            server.server_close()


class TestScenarioJobs:
    def test_inline_scenario_runs_and_serves_result(self, service):
        spec = tiny_sweep_spec()
        job = service.submit_scenario(spec, profile="quick", wait=True)
        assert job["state"] == "done"
        assert job["experiment_id"] == "scenario:http-tiny-sweep"
        assert job["scenario"] == {"name": "http-tiny-sweep", "kind": "wb_ber_sweep"}
        served = service.result(str(job["result_key"]))
        assert isinstance(served, ExperimentResult)
        direct = run_scenario(spec, profile="quick", seed=0)
        assert served.to_json() == direct.to_json()

    def test_identical_scenario_resubmission_hits_the_store(self, service):
        spec_dict = tiny_sweep_spec().to_dict()
        first = service.submit_scenario(spec_dict, profile="quick", wait=True)
        computations = service.healthz()["scheduler"]["computations"]
        # Same content, different dict ordering: the canonical key must
        # still collide, so the resubmission is a store hit.
        reordered = dict(reversed(list(spec_dict.items())))
        second = service.submit_scenario(reordered, profile="quick", wait=True)
        assert second["state"] == "done"
        assert second["source"] == "store"
        assert second["result_key"] == first["result_key"]
        assert service.healthz()["scheduler"]["computations"] == computations

    def test_inline_cross_core_scenario_round_trips(self, service):
        """POST /jobs with a multi-core topology decodes across cores."""
        spec = tiny_cross_core_spec()
        job = service.submit_scenario(spec, profile="quick", wait=True)
        assert job["state"] == "done"
        assert job["experiment_id"] == "scenario:http-cross-core"
        assert job["scenario"] == {
            "name": "http-cross-core",
            "kind": "cross_core_wb",
        }
        served = service.result(str(job["result_key"]))
        assert isinstance(served, ExperimentResult)
        assert served.params["all_payloads_intact"] is True
        assert served.params["cores"] == 2
        assert served.params["coherence"]["coherence_writebacks"] > 0

    def test_cores_1_key_schema_is_unchanged(self):
        """An explicit cores=1 hierarchy serialises without a ``cores``
        key, so every pre-coherence job key stays stable."""
        spec_dict = tiny_sweep_spec().to_dict()
        explicit = ScenarioSpec.from_dict(spec_dict)
        assert explicit.hierarchy is None
        single = HierarchyParams.xeon()
        assert "cores" not in single.to_dict()
        assert (
            JobSpec.create(profile="quick", scenario=tiny_sweep_spec()).key
            == JobSpec.create(profile="quick", scenario=explicit).key
        )

    def test_scenario_and_experiment_keys_never_collide(self):
        spec = tiny_sweep_spec()
        scenario_job = JobSpec.create(profile="quick", scenario=spec)
        plain_job = JobSpec.create(
            scenario_job.experiment_id, profile="quick"
        )
        assert scenario_job.key != plain_job.key

    def test_different_seeds_get_different_keys(self):
        spec = tiny_sweep_spec()
        assert (
            JobSpec.create(profile="quick", scenario=spec, seed=0).key
            != JobSpec.create(profile="quick", scenario=spec, seed=1).key
        )


class TestErrorEnvelope:
    def test_malformed_scenario_is_400_bad_request(self, service):
        payload = tiny_sweep_spec().to_dict()
        payload["surprise"] = 1
        with pytest.raises(ServiceError) as excinfo:
            service.submit_scenario(payload)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"
        assert "surprise" in str(excinfo.value)

    def test_stale_schema_version_is_400_bad_request(self, service):
        payload = tiny_sweep_spec().to_dict()
        payload["schema_version"] = SCENARIO_SCHEMA_VERSION + 1
        with pytest.raises(ServiceError) as excinfo:
            service.submit_scenario(payload)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"

    def test_scenario_plus_experiment_id_is_400(self, service):
        body = {
            "experiment_id": "fig6",
            "scenario": tiny_sweep_spec().to_dict(),
        }
        with pytest.raises(ServiceError) as excinfo:
            service._json("POST", "/jobs", body, ok=(200, 202))
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"

    def test_unknown_experiment_is_400_bad_request(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.submit("not-a-thing")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"

    def test_unknown_job_is_404_not_found(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.job("job-999999")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not_found"

    def test_unknown_route_is_404_not_found(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service._json("GET", "/nope")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not_found"

    def test_missing_result_is_404_not_found(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.result_bytes("0" * 64)
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not_found"

    def test_envelope_shape_on_the_wire(self, service):
        request = urllib.request.Request(
            service.base_url + "/jobs",
            data=b"not json",
            method="POST",
            headers={"Content-Length": "8"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert set(body) == {"error"}
        assert set(body["error"]) == {"code", "message"}
        assert body["error"]["code"] == "bad_request"
