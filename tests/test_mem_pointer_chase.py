"""Pointer-chase list structure (the Listing 1 measurement vehicle)."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.mem.pointer_chase import PointerChaseList


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            PointerChaseList(order=[])

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            PointerChaseList(order=[0x40, 0x40])

    def test_from_lines_permutes(self):
        lines = [i * 0x1000 for i in range(16)]
        chase = PointerChaseList.from_lines(lines, rng=random.Random(0))
        assert sorted(chase.order) == lines
        assert chase.order != lines  # permuted with high probability

    def test_from_lines_no_permute(self):
        lines = [i * 0x1000 for i in range(8)]
        chase = PointerChaseList.from_lines(lines, permute=False)
        assert chase.order == lines

    def test_does_not_mutate_input(self):
        lines = [i * 0x1000 for i in range(8)]
        snapshot = list(lines)
        PointerChaseList.from_lines(lines, rng=random.Random(1))
        assert lines == snapshot


class TestTraversal:
    def test_head_is_first(self):
        chase = PointerChaseList(order=[0x100, 0x200, 0x300])
        assert chase.head == 0x100

    def test_successor_chain(self):
        chase = PointerChaseList(order=[0x100, 0x200, 0x300])
        assert chase.successor(0x100) == 0x200
        assert chase.successor(0x200) == 0x300
        assert chase.successor(0x300) is None

    def test_successor_rejects_foreign_address(self):
        chase = PointerChaseList(order=[0x100])
        with pytest.raises(ConfigurationError):
            chase.successor(0x999)

    def test_len_and_iter(self):
        chase = PointerChaseList(order=[0x100, 0x200])
        assert len(chase) == 2
        assert list(chase) == [0x100, 0x200]
