"""The cross-core WB channel and its scenario/registry/service wiring."""

import inspect

import pytest

from repro.channels.encoding import BinaryDirtyCodec
from repro.channels.wb.cross_core import (
    CrossCoreReceiverProgram,
    CrossCoreSenderProgram,
    CrossCoreWBChannelConfig,
    calibrate_cross_core,
    run_cross_core_wb_channel,
    transmit_cross_core_schedule,
)
from repro.cache.configs import HierarchyParams
from repro.common.errors import ConfigurationError
from repro.experiments import available_experiments, run_experiment
from repro.scenario import CrossCoreParams, compile_scenario, scenario_key
from repro.scenario.library import cross_core_wb_spec
from repro.scenario.zoo import cross_core_quad_spec


def quick_config(**overrides):
    defaults = dict(message_bits=16, calibration_repetitions=10, seed=0)
    defaults.update(overrides)
    return CrossCoreWBChannelConfig(**defaults)


class TestChannel:
    def test_quick_transmission_decodes_bit_exactly(self):
        result = run_cross_core_wb_channel(quick_config())
        assert result.payload_intact
        assert result.bit_error_rate == 0.0
        assert result.sent_bits == result.received_bits

    def test_coherence_writebacks_carry_the_signal(self):
        coherence = {}
        result = run_cross_core_wb_channel(
            quick_config(), coherence_out=coherence
        )
        ones = sum(result.sent_bits)
        # Every 1-bit dirties d_on lines, each drained by one M->S
        # downgrade when the receiver probes (the decoder calibration
        # run is not included in this snapshot).
        assert coherence["downgrades_m_to_s"] >= ones * 4
        assert coherence["coherence_writebacks"] >= ones * 4

    def test_calibration_separates_levels(self):
        decoder = calibrate_cross_core(quick_config())
        assert len(decoder.thresholds) == 1
        low, high = decoder.medians
        assert high - low > 20  # 4 downgrade round-trips vs 4 L1 hits

    def test_deterministic_at_fixed_seed(self):
        first = run_cross_core_wb_channel(quick_config(seed=3))
        second = run_cross_core_wb_channel(quick_config(seed=3))
        assert first.samples == second.samples
        assert first.received_bits == second.received_bits

    def test_transmit_reports_per_core_perf(self):
        config = quick_config()
        transmission = transmit_cross_core_schedule(
            config, [4, 0, 4], phase=0.6, num_samples=3
        )
        assert len(transmission.samples) == 3
        assert transmission.sender_perf.owner == 0
        assert transmission.receiver_perf.owner == 1

    def test_four_core_topology_works(self):
        result = run_cross_core_wb_channel(quick_config(cores=4))
        assert result.payload_intact

    def test_single_core_hierarchy_is_rejected(self):
        config = quick_config(hierarchy=HierarchyParams.xeon())
        with pytest.raises(ConfigurationError):
            config.resolve_hierarchy()

    def test_schedule_wider_than_line_pool_is_rejected(self):
        with pytest.raises(ConfigurationError):
            CrossCoreSenderProgram(
                lines=[0x1000], schedule=[2], period=100, start_time=0
            )

    def test_receiver_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            CrossCoreReceiverProgram(
                lines=[], period=100, start_time=0, num_samples=1
            )
        with pytest.raises(ConfigurationError):
            CrossCoreReceiverProgram(
                lines=[0x1000], period=100, start_time=0, num_samples=0
            )

    def test_message_shorter_than_preamble_is_rejected(self):
        with pytest.raises(ConfigurationError):
            quick_config(message_bits=2).resolve_message()


class TestScenarioIntegration:
    def test_library_spec_compiles_and_round_trips(self):
        spec = cross_core_wb_spec()
        assert spec.kind == "cross_core_wb"
        assert spec.hierarchy.cores == 2
        restored = type(spec).from_json(spec.to_json())
        assert restored == spec
        assert scenario_key(restored) == scenario_key(spec)

    def test_quad_variant_differs_only_in_scale(self):
        quad = cross_core_quad_spec()
        assert quad.hierarchy.cores == 4
        assert scenario_key(quad) != scenario_key(cross_core_wb_spec())

    def test_single_core_scenario_is_rejected_at_measure_time(self):
        import dataclasses

        spec = dataclasses.replace(cross_core_wb_spec(), hierarchy=None)
        with pytest.raises(ConfigurationError):
            compile_scenario(spec, "quick", 0).measure()

    def test_params_reject_empty_detectors(self):
        with pytest.raises(ConfigurationError):
            CrossCoreParams(detectors=())

    def test_params_unknown_field_is_rejected(self):
        with pytest.raises(ConfigurationError):
            CrossCoreParams.from_dict({"no_such_field": 1})

    def test_measurement_decodes_and_watches_every_core(self):
        measurement = compile_scenario(cross_core_wb_spec(), "quick", 0).measure()
        assert measurement.all_payloads_intact
        assert measurement.mean_ber == 0.0
        assert measurement.cores == 2
        assert measurement.coherence["downgrades_m_to_s"] > 0
        # One instance of each configured detector per core.
        assert set(measurement.detector_names) == {
            "monitor_core0",
            "monitor_core1",
            "burst_core0",
            "burst_core1",
        }
        assert set(measurement.alarm_rates) == set(measurement.detector_names)


class TestRegistryConformance:
    def test_experiment_is_registered(self):
        assert "cross_core_wb" in available_experiments()

    def test_run_signature_is_keyword_only(self):
        from repro.experiments.cross_core import run

        signature = inspect.signature(run)
        assert list(signature.parameters) == ["profile", "seed"]
        for parameter in signature.parameters.values():
            assert parameter.kind is inspect.Parameter.KEYWORD_ONLY

    def test_quick_profile_decodes_across_cores(self):
        """The acceptance gate: bit-exact payload via coherence WBs."""
        result = run_experiment("cross_core_wb", profile="quick", seed=0)
        assert result.params["all_payloads_intact"] is True
        assert result.params["mean_ber"] == 0.0
        assert result.params["cores"] == 2
        assert result.params["coherence"]["coherence_writebacks"] > 0
        assert result.rows  # one row per per-core detector


class TestEncodingAssumptions:
    def test_default_codec_matches_spec_codec(self):
        config = CrossCoreWBChannelConfig()
        spec_codec = cross_core_wb_spec().channel.codec.build()
        assert isinstance(config.codec, BinaryDirtyCodec)
        assert config.codec.levels == spec_codec.levels
