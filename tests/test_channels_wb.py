"""End-to-end WB covert channel: calibration, protocol, integration."""

import pytest

from repro.channels.encoding import BinaryDirtyCodec, MultiBitDirtyCodec
from repro.channels.wb import (
    WBChannelConfig,
    calibrate_decoder,
    measure_latency_distributions,
    quick_channel_run,
    run_wb_channel,
)
from repro.common.errors import ConfigurationError, ProtocolError
from repro.cpu.noise import SchedulerNoise


class TestCalibration:
    def test_latency_bands_separated_by_writeback_penalty(self):
        samples = measure_latency_distributions(levels=[0, 1, 8], repetitions=30)
        import statistics

        med = {d: statistics.median(v) for d, v in samples.items()}
        # Figure 4: each dirty line adds roughly one write-back penalty.
        assert 8 <= med[1] - med[0] <= 15
        assert 70 <= med[8] - med[0] <= 105

    def test_bands_are_narrow(self):
        samples = measure_latency_distributions(levels=[0, 8], repetitions=30)
        for values in samples.values():
            assert max(values) - min(values) < 20

    def test_decoder_orders_levels(self):
        decoder = calibrate_decoder([0, 3, 5, 8], repetitions=20)
        assert list(decoder.levels) == [0, 3, 5, 8]
        assert decoder.separation() > 10

    def test_rejects_empty_levels(self):
        with pytest.raises(ConfigurationError):
            measure_latency_distributions(levels=[], repetitions=5)

    def test_rejects_zero_repetitions(self):
        with pytest.raises(ConfigurationError):
            measure_latency_distributions(levels=[0, 1], repetitions=0)


class TestChannelRuns:
    def test_clean_run_is_error_free(self):
        result = run_wb_channel(
            WBChannelConfig(
                codec=BinaryDirtyCodec(d_on=4),
                period_cycles=5500,
                message_bits=64,
                seed=11,
                scheduler_noise=SchedulerNoise.disabled(),
                receiver_phase=0.5,
            )
        )
        assert result.bit_error_rate == 0.0
        assert result.payload_intact

    def test_quick_channel_run(self):
        result = quick_channel_run(message_bits=32, period_cycles=5500, d=4, seed=2)
        assert result.rate_kbps == pytest.approx(400.0)
        assert result.bit_error_rate < 0.15

    def test_multibit_channel(self):
        result = run_wb_channel(
            WBChannelConfig(
                codec=MultiBitDirtyCodec(),
                period_cycles=4000,
                message_bits=64,
                seed=3,
                scheduler_noise=SchedulerNoise.disabled(),
                receiver_phase=0.5,
            )
        )
        assert result.rate_kbps == pytest.approx(1100.0)
        assert result.bit_error_rate < 0.1

    def test_deterministic_given_seed(self):
        config = dict(message_bits=64, period_cycles=5500, d=2, seed=9)
        first = quick_channel_run(**config)
        second = quick_channel_run(**config)
        assert first.received_bits == second.received_bits
        assert first.samples == second.samples

    def test_different_seeds_different_messages(self):
        first = quick_channel_run(message_bits=64, seed=1)
        second = quick_channel_run(message_bits=64, seed=2)
        assert first.sent_bits != second.sent_bits

    def test_samples_cover_all_symbols(self):
        result = quick_channel_run(message_bits=64, seed=4)
        assert len(result.samples) == 64 + 4  # alignment slack

    def test_perf_reports_attached(self):
        result = quick_channel_run(message_bits=32, seed=5)
        # The receiver traverses 10 lines per symbol; the sender stores at
        # most once per symbol: receiver load traffic dominates.
        assert result.receiver_perf.l1_accesses > result.sender_perf.l1_accesses

    def test_sender_stores_only_for_ones(self):
        result = quick_channel_run(message_bits=32, d=1, seed=6)
        ones = sum(result.sent_bits)
        # warm-up loads + one store per 1-bit
        expected_accesses = ones + 1  # 1 conflict line warmed once
        assert result.sender_perf.l1_accesses == expected_accesses


class TestConfigValidation:
    def test_message_must_start_with_preamble(self):
        with pytest.raises(ProtocolError):
            WBChannelConfig(message=[0] * 32).resolve_message()

    def test_explicit_message_accepted(self):
        preamble = [1, 0] * 8
        message = preamble + [1] * 16
        config = WBChannelConfig(message=message)
        assert config.resolve_message() == message

    def test_message_bits_shorter_than_preamble(self):
        with pytest.raises(ConfigurationError):
            WBChannelConfig(message_bits=8).resolve_message()

    def test_symbol_alignment_enforced(self):
        with pytest.raises(ProtocolError):
            WBChannelConfig(
                codec=MultiBitDirtyCodec(), message_bits=33
            ).resolve_message()

    def test_rate_property(self):
        config = WBChannelConfig(period_cycles=1600)
        assert config.rate_kbps == pytest.approx(1375.0)

    def test_bad_target_set_rejected(self):
        with pytest.raises(ConfigurationError):
            run_wb_channel(WBChannelConfig(target_set=64, message_bits=32))


class TestResultRendering:
    def test_str_mentions_rate_and_ber(self):
        result = quick_channel_run(message_bits=32, seed=7)
        text = str(result)
        assert "Kbps" in text and "BER" in text
