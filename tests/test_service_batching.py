"""Scheduler batch-group coalescing: claiming, counters, metrics, HTTP.

The batch hint is pure scheduling affinity: queued computations sharing
a hint (plus profile and execution route) run as one worker group, but
every result still lands under its own content address.  The gated fake
(tests/fake_experiments.py) pins the timing — a blocker holds the only
worker while hinted submissions pile up in the heap, so the claim set is
deterministic.
"""

import asyncio
import threading

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.http import ServiceApp, make_server
from repro.service.metrics import render_prometheus
from repro.service.scheduler import JobScheduler, JobSpec, JobState
from repro.service.store import ResultStore
from tests.fake_experiments import COUNT_FILE_ENV, GATE_FILE_ENV

GATED = "tests.fake_experiments:gated_count"
WELL_BEHAVED = "tests.fake_experiments:well_behaved"
SEED_GATED = "tests.fake_experiments:fails_when_seed_negative"

WAIT = 30.0


class Gate:
    def __init__(self, tmp_path):
        self.count_file = tmp_path / "invocations"
        self.gate_file = tmp_path / "gate"

    def open(self):
        self.gate_file.write_text("go")

    def invocations(self):
        if not self.count_file.exists():
            return []
        return self.count_file.read_text().split()


@pytest.fixture
def gate(tmp_path, monkeypatch):
    handle = Gate(tmp_path)
    monkeypatch.setenv(COUNT_FILE_ENV, str(handle.count_file))
    monkeypatch.setenv(GATE_FILE_ENV, str(handle.gate_file))
    return handle


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


async def eventually(predicate, timeout=10.0):
    import time

    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.01)


async def finish(scheduler, jobs):
    return [
        await asyncio.wait_for(scheduler.wait(job.job_id), WAIT)
        for job in jobs
    ]


async def _submit_behind_blocker(scheduler, gate, specs):
    """Block the single worker, queue ``specs`` behind it, release."""
    blocker = await scheduler.submit(
        JobSpec.create("fake", entry_point=GATED, seed=0)
    )
    await eventually(lambda: len(gate.invocations()) == 1)
    jobs = [await scheduler.submit(spec) for spec in specs]
    gate.open()
    await finish(scheduler, [blocker])
    return jobs


class TestCoalescing:
    def test_queued_same_hint_jobs_run_as_one_group(self, gate, store):
        async def scenario():
            async with JobScheduler(store, workers=1) as scheduler:
                specs = [
                    JobSpec.create(
                        "fake", entry_point=WELL_BEHAVED, seed=seed,
                        batch_hint="geom",
                    )
                    for seed in (1, 2, 3)
                ]
                jobs = await _submit_behind_blocker(scheduler, gate, specs)
                done = await finish(scheduler, jobs)
                assert [job.state for job in done] == [JobState.DONE] * 3
                assert scheduler.counters["batch_groups"] == 1
                assert scheduler.counters["batch_replicas"] == 3
                assert scheduler.counters["batch_coalesced"] == 2
                # Every member still lands under its own content address.
                assert len({job.key for job in done}) == 3
                for job in done:
                    assert store.get(job.key) is not None

        asyncio.run(scenario())

    def test_hintless_jobs_never_group(self, gate, store):
        async def scenario():
            async with JobScheduler(store, workers=1) as scheduler:
                specs = [
                    JobSpec.create("fake", entry_point=WELL_BEHAVED, seed=seed)
                    for seed in (1, 2)
                ]
                jobs = await _submit_behind_blocker(scheduler, gate, specs)
                await finish(scheduler, jobs)
                assert scheduler.counters["batch_groups"] == 0
                assert scheduler.counters["batch_coalesced"] == 0

        asyncio.run(scenario())

    def test_different_hints_stay_apart(self, gate, store):
        async def scenario():
            async with JobScheduler(store, workers=1) as scheduler:
                specs = [
                    JobSpec.create(
                        "fake", entry_point=WELL_BEHAVED, seed=seed,
                        batch_hint=hint,
                    )
                    for seed, hint in ((1, "a"), (2, "b"))
                ]
                jobs = await _submit_behind_blocker(scheduler, gate, specs)
                await finish(scheduler, jobs)
                assert scheduler.counters["batch_groups"] == 2
                assert scheduler.counters["batch_replicas"] == 2
                assert scheduler.counters["batch_coalesced"] == 0

        asyncio.run(scenario())

    def test_failed_member_does_not_sink_the_group(self, gate, store):
        async def scenario():
            async with JobScheduler(store, workers=1) as scheduler:
                specs = [
                    JobSpec.create(
                        "fake", entry_point=SEED_GATED, seed=seed,
                        batch_hint="geom",
                    )
                    for seed in (1, -2, 3)
                ]
                jobs = await _submit_behind_blocker(scheduler, gate, specs)
                done = await finish(scheduler, jobs)
                states = {job.spec.seed: job.state for job in done}
                assert states[1] == JobState.DONE
                assert states[3] == JobState.DONE
                assert states[-2] == JobState.FAILED
                assert "deliberate failure" in done[1].error
                assert scheduler.counters["batch_groups"] == 1
                assert scheduler.counters["batch_coalesced"] == 2

        asyncio.run(scenario())


class TestMetricsRendering:
    SCHEDULER = {
        "batch_groups": 4,
        "batch_replicas": 12,
        "batch_coalesced": 8,
        "queued": 0,
        "computations": 12,
    }

    def test_batch_series_are_rendered(self):
        text = render_prometheus(dict(self.SCHEDULER), {})
        assert "repro_service_batch_groups_total 4" in text
        assert "repro_service_batch_replicas_total 12" in text
        assert "repro_service_batch_coalesced_total 8" in text
        assert "repro_service_batch_replicas_per_group 3" in text
        assert "repro_service_batch_coalesce_hit_rate 0.666667" in text
        # Not double-rendered by the generic counter loop.
        assert "repro_service_jobs_batch_groups_total" not in text

    def test_ratios_degrade_to_zero_without_traffic(self):
        text = render_prometheus({"queued": 0}, {})
        assert "repro_service_batch_replicas_per_group 0" in text
        assert "repro_service_batch_coalesce_hit_rate 0" in text


class TestHTTP:
    @pytest.fixture
    def service(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        app = ServiceApp(store, workers=2, queue_depth=8)
        with app:
            server = make_server(app)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            host, port = server.server_address[:2]
            try:
                yield ServiceClient(f"http://{host}:{port}")
            finally:
                server.shutdown()
                server.server_close()

    def test_batch_hint_rides_submission_and_metrics(self, service):
        job = service.submit(
            "fake", entry_point=WELL_BEHAVED, seed=11,
            batch_hint="geom:abc", wait=True,
        )
        assert job["state"] == "done"
        text = service.metrics_text()
        assert "repro_service_batch_groups_total 1" in text
        assert "repro_service_batch_replicas_per_group 1" in text

    def test_non_string_batch_hint_is_rejected(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.submit(
                "fake", entry_point=WELL_BEHAVED, seed=11, batch_hint=7
            )
        assert excinfo.value.status == 400
        assert "batch_hint" in str(excinfo.value)
