"""The MESI coherence subsystem: protocol semantics, invariants, parity.

Three layers of assurance:

* unit tests pin every protocol transition (E on cold fill, S on
  sharing, M on store, downgrade write-backs on remote access) and the
  latencies the cross-core channel depends on;
* a seeded property fuzz drives random multi-core access streams and
  re-checks the MESI invariants (single M/E holder, dirty implies M,
  L2 inclusion) after **every** step, over 2- and 4-core topologies on
  both engines;
* a differential parity section extends the ``test_engine_parity``
  contract to coherent hierarchies: the fast engine must reproduce the
  reference engine access for access.
"""

import random

import dataclasses
import pytest

from repro.cache.configs import HierarchyParams, make_xeon_hierarchy
from repro.cache.hierarchy import CacheHierarchy
from repro.coherence import (
    CoherentHierarchy,
    Directory,
    MESIState,
    make_coherent_hierarchy,
)
from repro.common.errors import ConfigurationError, SimulationError

SEED = 4321
LINE = 64


def tiny_coherent(cores=2, engine="reference", seed=SEED):
    params = dataclasses.replace(HierarchyParams.tiny(), cores=cores)
    return params.build(rng=random.Random(seed), engine=engine)


def xeon_coherent(cores=2, engine="reference", seed=SEED):
    return HierarchyParams.xeon(cores=cores).build(
        rng=random.Random(seed), engine=engine
    )


class TestDirectory:
    def test_cold_directory_is_empty(self):
        directory = Directory(LINE)
        assert len(directory) == 0
        assert directory.state(0, 0x1000) is None
        assert directory.holders(0x1000) == []

    def test_sub_line_addresses_alias_to_one_entry(self):
        directory = Directory(LINE)
        directory.set_state(0, 0x1000, MESIState.MODIFIED)
        assert directory.state(0, 0x103F) is MESIState.MODIFIED
        assert directory.holders(0x1020) == [0]

    def test_exclusive_grant_with_other_holders_raises(self):
        directory = Directory(LINE)
        directory.set_state(0, 0x1000, MESIState.SHARED)
        with pytest.raises(SimulationError):
            directory.set_state(1, 0x1000, MESIState.MODIFIED)

    def test_clear_is_idempotent_and_drops_empty_entries(self):
        directory = Directory(LINE)
        directory.set_state(0, 0x1000, MESIState.EXCLUSIVE)
        directory.clear(0, 0x1000)
        directory.clear(0, 0x1000)
        assert len(directory) == 0

    def test_check_rejects_multiple_exclusive_holders(self):
        directory = Directory(LINE)
        # Bypass set_state's guard to plant an illegal configuration.
        directory._entries[0x1000] = {
            0: MESIState.MODIFIED,
            1: MESIState.SHARED,
        }
        with pytest.raises(SimulationError):
            directory.check()

    def test_line_size_must_be_power_of_two(self):
        with pytest.raises(SimulationError):
            Directory(48)


class TestProtocolTransitions:
    def test_cold_load_fills_exclusive(self):
        h = xeon_coherent()
        trace = h.load(0x4000, owner=0)
        assert trace.hit_level == 99  # memory
        assert h.directory.state(0, 0x4000) is MESIState.EXCLUSIVE
        h.check_invariants()

    def test_store_makes_modified_and_dirty(self):
        h = xeon_coherent()
        h.load(0x4000, owner=0)
        h.store(0x4000, owner=0)
        assert h.directory.state(0, 0x4000) is MESIState.MODIFIED
        assert h.l1_of(0).is_dirty(0x4000)
        h.check_invariants()

    def test_second_reader_shares(self):
        h = xeon_coherent()
        h.load(0x4000, owner=0)
        h.load(0x4000, owner=1)
        assert h.directory.state(0, 0x4000) is MESIState.SHARED
        assert h.directory.state(1, 0x4000) is MESIState.SHARED
        assert h.coherence.downgrades_e_to_s == 1
        h.check_invariants()

    def test_remote_read_of_modified_line_downgrades_with_writeback(self):
        """The cross-core timing signal: M -> S costs a write-back."""
        h = xeon_coherent()
        h.load(0x4000, owner=0)
        h.store(0x4000, owner=0)
        wb_before = h.stats.level(1, 0).writebacks
        trace = h.load(0x4000, owner=1)
        assert h.coherence.downgrades_m_to_s == 1
        assert h.coherence.coherence_writebacks == 1
        # L2 hit (11) + downgrade write-back (11) + jitter in [0, 1].
        assert 22 <= trace.latency <= 23
        assert trace.hit_level == 2
        # Both copies now Shared, neither dirty; the L2 holds the data.
        assert h.directory.state(0, 0x4000) is MESIState.SHARED
        assert h.directory.state(1, 0x4000) is MESIState.SHARED
        assert not h.l1_of(0).is_dirty(0x4000)
        assert h.shared[0].is_dirty(0x4000)
        # The drained copy is accounted to the core that held it dirty.
        assert h.stats.level(1, 0).writebacks == wb_before + 1
        h.check_invariants()

    def test_clean_remote_read_is_cheap(self):
        """A line the sender never dirtied decodes as a fast (re)load."""
        h = xeon_coherent()
        h.load(0x4000, owner=0)
        h.load(0x4000, owner=1)
        trace = h.load(0x4000, owner=1)
        assert trace.hit_level == 1
        assert trace.latency <= 6

    def test_remote_write_invalidates_modified_line(self):
        h = xeon_coherent()
        h.load(0x4000, owner=0)
        h.store(0x4000, owner=0)
        h.store(0x4000, owner=1)
        assert h.directory.state(0, 0x4000) is None
        assert h.directory.state(1, 0x4000) is MESIState.MODIFIED
        assert h.coherence.downgrades_m_to_i == 1
        assert h.coherence.invalidations == 1
        assert not h.l1_of(0).probe(0x4000)
        h.check_invariants()

    def test_store_upgrade_invalidates_sharers_without_writeback(self):
        h = xeon_coherent()
        h.load(0x4000, owner=0)
        h.load(0x4000, owner=1)
        wb_before = h.coherence.coherence_writebacks
        h.store(0x4000, owner=0)
        assert h.directory.state(0, 0x4000) is MESIState.MODIFIED
        assert h.directory.state(1, 0x4000) is None
        assert h.coherence.upgrades_s_to_m == 1
        # Clean S copies are dropped silently: no data to drain.
        assert h.coherence.coherence_writebacks == wb_before
        h.check_invariants()

    def test_flush_drops_every_copy_and_the_directory_entry(self):
        h = xeon_coherent()
        h.load(0x4000, owner=0)
        h.store(0x4000, owner=0)
        h.flush(0x4000, owner=0)
        assert h.directory.state(0, 0x4000) is None
        assert not h.l1_of(0).probe(0x4000)
        assert not h.shared[0].probe(0x4000)
        h.check_invariants()

    def test_owner_maps_to_core_modulo(self):
        h = xeon_coherent(cores=2)
        assert h.core_of(None) == 0
        assert h.core_of(0) == 0
        assert h.core_of(1) == 1
        assert h.core_of(2) == 0
        assert h.core_of(5) == 1

    def test_l1_capacity_eviction_of_modified_writes_back(self):
        h = tiny_coherent()  # 2-way L1, 4 sets: 3 same-set lines evict
        step = LINE * 4  # stride of one L1 set wrap
        addresses = [0x8000 + i * step for i in range(3)]
        h.load(addresses[0], owner=0)
        h.store(addresses[0], owner=0)
        h.load(addresses[1], owner=0)
        h.load(addresses[2], owner=0)  # evicts the dirty line
        assert h.directory.state(0, addresses[0]) is None
        assert h.shared[0].is_dirty(addresses[0])
        h.check_invariants()


class TestBuilderAndConfig:
    def test_cores_1_builds_the_historic_hierarchy(self):
        h = HierarchyParams.xeon().build(rng=random.Random(SEED))
        assert isinstance(h, CacheHierarchy)
        assert not isinstance(h, CoherentHierarchy)

    def test_cores_2_builds_a_coherent_hierarchy(self):
        h = xeon_coherent(cores=2)
        assert isinstance(h, CoherentHierarchy)
        assert h.num_cores == 2
        assert len(h.l1s) == 2
        assert h.l1 is h.l1s[0]
        assert [level.name for level in h.levels[1:]] == ["L2", "LLC"]

    def test_cores_1_serialisation_is_unchanged(self):
        """The key-stability contract: no ``cores`` key at cores=1."""
        assert "cores" not in HierarchyParams.xeon().to_dict()
        assert "cores" not in HierarchyParams.tiny().to_dict()

    def test_multicore_serialisation_round_trips(self):
        params = HierarchyParams.xeon(cores=4)
        data = params.to_dict()
        assert data["cores"] == 4
        assert HierarchyParams.from_dict(data) == params

    def test_cores_default_on_from_dict_is_1(self):
        data = HierarchyParams.xeon().to_dict()
        assert HierarchyParams.from_dict(data).cores == 1

    def test_invalid_core_counts_raise(self):
        with pytest.raises(ConfigurationError):
            HierarchyParams.xeon(cores=0)
        with pytest.raises(ConfigurationError):
            make_coherent_hierarchy(
                cores=1,
                levels=HierarchyParams.tiny().levels,
                line_size=64,
            )

    def test_multicore_needs_a_shared_level(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(
                HierarchyParams.tiny(),
                levels=HierarchyParams.tiny().levels[:1],
                cores=2,
            )

    def test_per_core_l1s_use_distinct_rng_streams(self):
        h = xeon_coherent(cores=2)
        names = [l1.name for l1 in h.l1s]
        assert names == ["L1D-c0", "L1D-c1"]


def random_stream(rng, cores, length, lines):
    """A seeded multi-core access stream over a bounded line pool."""
    pool = [0x10000 + index * LINE for index in range(lines)]
    for _ in range(length):
        yield (
            rng.choice(pool),
            rng.random() < 0.35,
            rng.randrange(cores),
        )


class TestMESIInvariantFuzz:
    """Satellite (b): invariants hold after every step of random streams."""

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    @pytest.mark.parametrize("cores", [2, 4])
    def test_tiny_hierarchy_fuzz(self, cores, engine):
        """Small caches: constant evictions, back-invalidations, sharing."""
        h = tiny_coherent(cores=cores, engine=engine)
        rng = random.Random(SEED + cores)
        for address, write, owner in random_stream(rng, cores, 1500, 96):
            h.access(address, write=write, owner=owner)
            h.check_invariants()
        assert h.coherence.coherence_writebacks > 0
        assert h.coherence.back_invalidations > 0

    @pytest.mark.parametrize("cores", [2, 4])
    def test_xeon_hierarchy_fuzz(self, cores):
        """Paper geometry: sharing-heavy stream, periodic flushes."""
        h = xeon_coherent(cores=cores)
        rng = random.Random(SEED * cores)
        for step, (address, write, owner) in enumerate(
            random_stream(rng, cores, 800, 48)
        ):
            h.access(address, write=write, owner=owner)
            if step % 97 == 0:
                h.flush(address, owner=owner)
            h.check_invariants()
        assert h.coherence.downgrades_m_to_s > 0
        assert h.coherence.upgrades_s_to_m > 0


class TestCoherentEngineParity:
    """The fast engine must replicate the reference engine under MESI."""

    @pytest.mark.parametrize("cores", [2, 4])
    def test_random_stream_parity(self, cores):
        reference = tiny_coherent(cores=cores, engine="reference")
        fast = tiny_coherent(cores=cores, engine="fast")
        rng = random.Random(SEED)
        stream = list(random_stream(rng, cores, 2000, 96))
        for address, write, owner in stream:
            trace_ref = reference.access(address, write=write, owner=owner)
            trace_fast = fast.access(address, write=write, owner=owner)
            assert (
                trace_ref.hit_level,
                trace_ref.latency,
                trace_ref.l1_victim_dirty,
            ) == (
                trace_fast.hit_level,
                trace_fast.latency,
                trace_fast.l1_victim_dirty,
            )
        assert reference.stats.snapshot() == fast.stats.snapshot()
        assert (
            reference.coherence.snapshot() == fast.coherence.snapshot()
        )
        assert reference.directory.snapshot() == fast.directory.snapshot()
        for cache_ref, cache_fast in zip(
            list(reference.l1s) + reference.shared,
            list(fast.l1s) + fast.shared,
        ):
            for set_ref, set_fast in zip(cache_ref.sets, cache_fast.sets):
                assert set_ref.way_states() == set_fast.way_states()

    def test_xeon_parity_smoke(self):
        reference = xeon_coherent(engine="reference")
        fast = xeon_coherent(engine="fast")
        rng = random.Random(SEED + 7)
        for address, write, owner in random_stream(rng, 2, 600, 32):
            trace_ref = reference.access(address, write=write, owner=owner)
            trace_fast = fast.access(address, write=write, owner=owner)
            assert trace_ref.latency == trace_fast.latency
        assert reference.stats.snapshot() == fast.stats.snapshot()
