"""Fleet lease protocol: claims, heartbeats, expiry, dead-letter, drain.

Scheduler-level tests drive the supervisor synchronously against an
injected fake clock (``FleetState.clock``), so lease expiry and backoff
are exercised without wall-clock sleeps.  The HTTP tests run a real
server with a real :class:`~repro.service.worker.FleetWorker` thread.
"""

import asyncio
import threading
import time

import pytest

from repro.common.errors import ConfigurationError
from repro.service.client import ServiceClient, ServiceError
from repro.service.fleet import (
    FleetConfig,
    FleetUnavailableError,
    LeaseError,
    lease_backoff_seconds,
)
from repro.service.http import ServiceApp, make_server
from repro.service.metrics import render_prometheus
from repro.service.scheduler import JobScheduler, JobSpec, JobState
from repro.service.store import ResultStore
from repro.service.worker import FleetWorker
from tests.fake_experiments import seed_echo

SEED_ECHO = "tests.fake_experiments:seed_echo"
WAIT = 30.0

#: Supervisor interval long enough that only explicit ``supervise_once``
#: calls tick the fake-clock tests.
MANUAL = 3600.0


def echo_spec(seed=0):
    return JobSpec.create(
        experiment_id="echo", entry_point=SEED_ECHO, seed=seed
    )


def echo_result(seed=0):
    return seed_echo(seed=seed)


class FakeClock:
    """Injectable monotonic clock the tests march forward by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


async def fleet_scheduler(tmp_path, **config):
    """A started scheduler with a fake clock and one live fleet worker.

    Touching ``w-live`` before any submission keeps the in-process pool
    path stood down (live fleet workers own the queue), so tests drive
    claims deterministically through the lease protocol.
    """
    store = ResultStore(tmp_path / "store")
    config.setdefault("lease_ttl", 10.0)
    config.setdefault("supervisor_interval", MANUAL)
    scheduler = JobScheduler(
        store, workers=1, fleet=FleetConfig(**config)
    )
    await scheduler.start()
    clock = FakeClock()
    scheduler.fleet.clock = clock
    scheduler.fleet.touch_worker("w-live")
    return scheduler, store, clock


class TestFleetConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(lease_ttl=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(dead_letter_after=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(min_workers=-1)
        with pytest.raises(ConfigurationError):
            FleetConfig(backoff_cap=0)

    def test_derived_intervals(self):
        config = FleetConfig(lease_ttl=8.0)
        assert config.effective_worker_ttl == 8.0
        assert config.effective_supervisor_interval == pytest.approx(1.0)
        assert FleetConfig(lease_ttl=8.0, worker_ttl=2.0).effective_worker_ttl == 2.0
        tight = FleetConfig(lease_ttl=0.2)
        assert 0.02 <= tight.effective_supervisor_interval <= 0.2


class TestBackoff:
    def test_deterministic_and_capped(self):
        first = lease_backoff_seconds("k", 1, cap=5.0)
        assert first == lease_backoff_seconds("k", 1, cap=5.0)
        assert first > 0
        # The pre-jitter base doubles per attempt but never exceeds the
        # cap; jitter adds at most half the base on top.
        for attempt in range(1, 12):
            assert lease_backoff_seconds("k", attempt, cap=5.0) <= 5.0 * 1.5

    def test_jitter_varies_by_key(self):
        delays = {lease_backoff_seconds(f"k{i}", 3, cap=5.0) for i in range(8)}
        assert len(delays) > 1


class TestLeaseLifecycle:
    def test_claim_complete_stores_bit_identical_blob(self, tmp_path):
        async def scenario():
            scheduler, store, clock = await fleet_scheduler(tmp_path)
            try:
                job = await scheduler.submit(echo_spec(seed=5))
                grant = await scheduler.fleet_claim("w-live")
                assert grant["lease"]["attempt"] == 1
                assert grant["job"]["entry_point"] == SEED_ECHO
                assert grant["job"]["seed"] == 5
                lease_id = grant["lease"]["lease_id"]
                await scheduler.fleet_complete(
                    lease_id,
                    "w-live",
                    echo_result(5).to_dict(),
                    wall_seconds=0.25,
                )
                record = scheduler.job(job.job_id)
                assert record.state == JobState.DONE
                assert record.attempts == 1
                assert record.wall_seconds == 0.25
                assert record.lease_history[-1]["outcome"] == "completed"
                assert store.get_bytes(job.key) == (
                    echo_result(5).to_json().encode("utf-8")
                )
            finally:
                await scheduler.stop()

        asyncio.run(scenario())

    def test_heartbeat_extends_the_lease(self, tmp_path):
        async def scenario():
            scheduler, _store, clock = await fleet_scheduler(
                tmp_path, lease_ttl=10.0
            )
            try:
                await scheduler.submit(echo_spec())
                grant = await scheduler.fleet_claim("w-live")
                lease_id = grant["lease"]["lease_id"]
                # Without the renewal this would be 2s past expiry.
                clock.advance(8.0)
                renewed = await scheduler.fleet_heartbeat(lease_id, "w-live")
                assert renewed["renewals"] == 1
                clock.advance(4.0)
                scheduler.supervise_once()
                assert lease_id in scheduler.fleet.leases
                assert scheduler.fleet.counters["leases_expired"] == 0
            finally:
                await scheduler.stop()

        asyncio.run(scenario())

    def test_foreign_worker_cannot_use_the_lease(self, tmp_path):
        async def scenario():
            scheduler, _store, _clock = await fleet_scheduler(tmp_path)
            try:
                await scheduler.submit(echo_spec())
                grant = await scheduler.fleet_claim("w-live")
                lease_id = grant["lease"]["lease_id"]
                with pytest.raises(LeaseError):
                    await scheduler.fleet_heartbeat(lease_id, "w-other")
                with pytest.raises(LeaseError):
                    await scheduler.fleet_complete(
                        lease_id, "w-other", echo_result().to_dict()
                    )
            finally:
                await scheduler.stop()

        asyncio.run(scenario())


class TestExpiryAndRedispatch:
    def test_expiry_redispatch_and_stale_upload_rejection(self, tmp_path):
        async def scenario():
            scheduler, store, clock = await fleet_scheduler(
                tmp_path, lease_ttl=10.0, backoff_cap=5.0
            )
            try:
                job = await scheduler.submit(echo_spec(seed=9))
                first = await scheduler.fleet_claim("w-live")
                stale_id = first["lease"]["lease_id"]

                # TTL elapses without a heartbeat: the supervisor expires
                # the lease and parks the computation in backoff.
                clock.advance(10.5)
                scheduler.supervise_once()
                assert scheduler.fleet.counters["leases_expired"] == 1
                assert scheduler.fleet.counters["redispatches"] == 1
                assert scheduler.job(job.job_id).state == JobState.QUEUED

                # Not claimable until the backoff elapses.
                idle = await scheduler.fleet_claim("w-live")
                assert idle["lease"] is None

                clock.advance(
                    lease_backoff_seconds(job.key, 1, cap=5.0) + 0.01
                )
                scheduler.supervise_once()
                second = await scheduler.fleet_claim("w-live")
                assert second["lease"]["attempt"] == 2

                # The original (expired) worker finishes anyway: its
                # upload quotes a dead lease and must bounce 409-style.
                with pytest.raises(LeaseError):
                    await scheduler.fleet_complete(
                        stale_id, "w-live", echo_result(9).to_dict()
                    )
                assert scheduler.fleet.counters["uploads_rejected"] == 1
                assert store.get_bytes(job.key) is None

                await scheduler.fleet_complete(
                    second["lease"]["lease_id"],
                    "w-live",
                    echo_result(9).to_dict(),
                )
                record = scheduler.job(job.job_id)
                assert record.state == JobState.DONE
                history = [
                    (entry["attempt"], entry["outcome"])
                    for entry in record.lease_history
                ]
                assert history == [(1, "expired"), (2, "completed")]
                assert store.get_bytes(job.key) == (
                    echo_result(9).to_json().encode("utf-8")
                )
            finally:
                await scheduler.stop()

        asyncio.run(scenario())

    def test_torn_upload_is_rejected_without_releasing_the_lease(
        self, tmp_path
    ):
        async def scenario():
            scheduler, store, _clock = await fleet_scheduler(tmp_path)
            try:
                job = await scheduler.submit(echo_spec(seed=3))
                grant = await scheduler.fleet_claim("w-live")
                lease_id = grant["lease"]["lease_id"]
                with pytest.raises(ConfigurationError):
                    await scheduler.fleet_complete(
                        lease_id, "w-live", {"garbage": True}
                    )
                # The lease survives (a torn upload looks like a worker
                # dying mid-upload; expiry will re-dispatch), the store
                # holds nothing, and a clean retry of the upload lands.
                assert lease_id in scheduler.fleet.leases
                assert store.get_bytes(job.key) is None
                await scheduler.fleet_complete(
                    lease_id, "w-live", echo_result(3).to_dict()
                )
                assert scheduler.job(job.job_id).state == JobState.DONE
            finally:
                await scheduler.stop()

        asyncio.run(scenario())

    def test_dead_letter_after_k_failed_leases(self, tmp_path):
        async def scenario():
            scheduler, store, clock = await fleet_scheduler(
                tmp_path, lease_ttl=10.0, dead_letter_after=3
            )
            try:
                job = await scheduler.submit(echo_spec(seed=13))
                for attempt in range(1, 4):
                    # Claim may need the backoff promoted first.
                    grant = await scheduler.fleet_claim("w-live")
                    assert grant["lease"]["attempt"] == attempt
                    clock.advance(10.5)
                    scheduler.supervise_once()
                    clock.advance(
                        lease_backoff_seconds(
                            job.key, attempt, cap=5.0
                        )
                        + 0.01
                    )
                    scheduler.supervise_once()
                record = scheduler.job(job.job_id)
                assert record.state == JobState.DEAD_LETTER
                assert "dead-lettered after 3" in str(record.error)
                assert [
                    entry["outcome"] for entry in record.lease_history
                ] == ["expired", "expired", "expired"]
                assert scheduler.fleet.counters["dead_letter"] == 1
                assert len(scheduler.fleet.dead_letters) == 1
                quarantined = scheduler.fleet.dead_letters[0]
                assert quarantined["key"] == job.key
                assert quarantined["lease_attempts"] == 3
                assert len(quarantined["lease_history"]) == 3
                assert store.get_bytes(job.key) is None
                # Terminal: nothing further to claim.
                assert (await scheduler.fleet_claim("w-live"))["lease"] is None
            finally:
                await scheduler.stop()

        asyncio.run(scenario())

    def test_cancellation_racing_lease_expiry(self, tmp_path):
        """Cancel lands between expiry and re-claim: the job must never
        run again and the dead worker's late upload must not store."""

        async def scenario():
            scheduler, store, clock = await fleet_scheduler(tmp_path)
            try:
                job = await scheduler.submit(echo_spec(seed=21))
                grant = await scheduler.fleet_claim("w-live")
                stale_id = grant["lease"]["lease_id"]
                clock.advance(10.5)
                scheduler.supervise_once()  # expired → backoff, QUEUED
                assert scheduler.job(job.job_id).state == JobState.QUEUED

                assert await scheduler.cancel(job.job_id) is True
                assert scheduler.job(job.job_id).state == JobState.CANCELLED

                # The dead lease's upload bounces and stores nothing.
                with pytest.raises(LeaseError):
                    await scheduler.fleet_complete(
                        stale_id, "w-live", echo_result(21).to_dict()
                    )
                assert store.get_bytes(job.key) is None

                # Backoff elapses: the cancelled computation must not be
                # promoted back onto the heap or claimed again.
                clock.advance(60.0)
                scheduler.supervise_once()
                assert (await scheduler.fleet_claim("w-live"))["lease"] is None
                assert scheduler._queued == 0
            finally:
                await scheduler.stop()

        asyncio.run(scenario())


class TestDegradationLadder:
    def test_zero_workers_falls_back_to_in_process_pool(self, tmp_path):
        """No fleet workers ever seen: the pre-fleet path still serves."""

        async def scenario():
            store = ResultStore(tmp_path / "store")
            scheduler = JobScheduler(
                store, workers=1, fleet=FleetConfig(lease_ttl=10.0)
            )
            async with scheduler:
                job = await scheduler.submit(echo_spec(seed=7))
                record = await scheduler.wait(job.job_id, timeout=WAIT)
                assert record.state == JobState.DONE
                assert record.lease_history == []
                assert store.get_bytes(job.key) == (
                    echo_result(7).to_json().encode("utf-8")
                )

        asyncio.run(scenario())

    def test_expired_fleet_worker_reenables_in_process_pool(self, tmp_path):
        """A fleet worker that vanishes hands the queue back in-process."""

        async def scenario():
            store = ResultStore(tmp_path / "store")
            scheduler = JobScheduler(
                store,
                workers=1,
                fleet=FleetConfig(lease_ttl=0.2, supervisor_interval=0.05),
            )
            async with scheduler:
                scheduler.fleet.touch_worker("w-ghost")
                assert scheduler._fleet_engaged()
                job = await scheduler.submit(echo_spec(seed=30))
                # The ghost never claims; once its worker TTL (= lease
                # TTL) lapses the in-process pool picks the job up.
                record = await scheduler.wait(job.job_id, timeout=WAIT)
                assert record.state == JobState.DONE
                assert record.lease_history == []

        asyncio.run(scenario())

    def test_min_workers_sheds_submissions_with_retry_hint(self, tmp_path):
        async def scenario():
            store = ResultStore(tmp_path / "store")
            scheduler = JobScheduler(
                store, workers=1, fleet=FleetConfig(min_workers=2)
            )
            async with scheduler:
                scheduler.fleet.touch_worker("w-only")
                with pytest.raises(FleetUnavailableError) as excinfo:
                    await scheduler.submit(echo_spec())
                assert "1 live worker(s), 2 required" in str(excinfo.value)
                assert excinfo.value.retry_after >= 1
                assert scheduler.fleet.counters["shed"] == 1
                # The shed submission left no orphan records behind.
                assert scheduler._queued == 0
                assert not scheduler._inflight
                assert scheduler._jobs == {}

        asyncio.run(scenario())

    def test_draining_sheds_new_work_but_finishes_leases(self, tmp_path):
        async def scenario():
            scheduler, _store, _clock = await fleet_scheduler(tmp_path)
            try:
                job = await scheduler.submit(echo_spec(seed=2))
                grant = await scheduler.fleet_claim("w-live")
                scheduler.begin_drain()
                with pytest.raises(FleetUnavailableError):
                    await scheduler.submit(echo_spec(seed=99))
                # Drain-mode claims tell the worker to exit.
                assert (await scheduler.fleet_claim("w-live"))["draining"]
                # The in-flight lease still completes normally.
                await scheduler.fleet_complete(
                    grant["lease"]["lease_id"],
                    "w-live",
                    echo_result(2).to_dict(),
                )
                assert scheduler.job(job.job_id).state == JobState.DONE
                assert await scheduler.drain(timeout=1.0) is True
            finally:
                await scheduler.stop()

        asyncio.run(scenario())

    def test_retry_after_tracks_backlog_and_capacity(self, tmp_path):
        async def scenario():
            scheduler, _store, _clock = await fleet_scheduler(tmp_path)
            try:
                idle_hint = scheduler.retry_after_seconds()
                assert 1 <= idle_hint <= 60
                for seed in range(6):
                    await scheduler.submit(echo_spec(seed=seed))
                loaded_hint = scheduler.retry_after_seconds()
                assert loaded_hint >= idle_hint
                # More live workers divide the backlog down.
                for index in range(7):
                    scheduler.fleet.touch_worker(f"w-extra-{index}")
                assert scheduler.retry_after_seconds() <= loaded_hint
            finally:
                await scheduler.stop()

        asyncio.run(scenario())


class TestFleetOverHTTP:
    @pytest.fixture
    def service(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        app = ServiceApp(
            store,
            workers=1,
            queue_depth=16,
            fleet=FleetConfig(lease_ttl=5.0),
        )
        with app:
            server = make_server(app)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            host, port = server.server_address[:2]
            try:
                yield ServiceClient(f"http://{host}:{port}"), app
            finally:
                server.shutdown()
                server.server_close()

    def test_worker_completes_jobs_bit_identical(self, service):
        client, _app = service
        worker = FleetWorker(
            client.base_url, "w-http", poll_seconds=0.02, max_jobs=3
        )
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            # Wait for the worker's first claim to register it live, so
            # the in-process pool stands down before anything queues.
            deadline = time.monotonic() + WAIT
            while client.fleet()["workers_live"] < 1:
                assert time.monotonic() < deadline, "worker never registered"
                time.sleep(0.01)
            jobs = [
                client.submit("echo", entry_point=SEED_ECHO, seed=seed)
                for seed in (1, 2, 3)
            ]
            records = [client.wait(str(job["job_id"])) for job in jobs]
            assert all(job["state"] == "done" for job in records)
            for seed, record in zip((1, 2, 3), records):
                served = client.result_bytes(str(record["result_key"]))
                assert served == echo_result(seed).to_json().encode("utf-8")
                assert record["lease_history"][-1]["worker_id"] == "w-http"
        finally:
            worker.stop()
            thread.join(timeout=WAIT)
        fleet = client.fleet()
        assert fleet["counters"]["fleet_completed"] == 3
        assert fleet["counters"]["leases_granted"] == 3
        workers = {entry["worker_id"] for entry in fleet["workers"]}
        assert "w-http" in workers

    def test_fleet_routes_and_error_codes(self, service):
        client, _app = service
        # A claim with nothing queued is an idle poll, not an error.
        grant = client.fleet_claim("w-poll")
        assert grant["lease"] is None
        assert grant["draining"] is False
        with pytest.raises(ServiceError) as excinfo:
            client.fleet_heartbeat("lease-bogus", "w-poll")
        assert excinfo.value.status == 409
        with pytest.raises(ServiceError) as excinfo:
            client.fleet_complete("lease-bogus", "w-poll", {"x": 1})
        assert excinfo.value.status == 409
        with pytest.raises(ServiceError) as excinfo:
            client._json("POST", "/fleet/claim", {})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._json(
                "POST",
                "/fleet/leases/lease-x/fail",
                {"worker_id": "w", "error": ""},
            )
        assert excinfo.value.status == 400

    def test_healthz_and_metrics_carry_fleet_series(self, service):
        client, _app = service
        client.fleet_claim("w-metrics")
        health = client.healthz()
        fleet = health["scheduler"]["fleet"]
        assert fleet["workers_live"] >= 1
        assert fleet["draining"] is False
        assert "retry_after_seconds" in health["scheduler"]
        text = client.metrics_text()
        for series in (
            "repro_service_fleet_workers_live",
            'repro_service_fleet_worker_up{worker_id="w-metrics"} 1',
            "repro_service_fleet_leases_active",
            "repro_service_fleet_draining",
            "repro_service_fleet_leases_granted_total",
            "repro_service_fleet_leases_expired_total",
            "repro_service_fleet_redispatches_total",
            "repro_service_fleet_dead_letter_total",
            "repro_service_fleet_uploads_rejected_total",
            "repro_service_fleet_shed_total",
            "repro_service_retry_after_seconds",
        ):
            assert series in text, series


class TestMetricsRendering:
    def test_fleet_section_renders_without_workers(self):
        counters = {
            "submitted": 0,
            "queued": 0,
            "running": 0,
            "inflight_keys": 0,
            "workers": 1,
            "delayed": 0,
            "retry_after_seconds": 1,
            "fleet": {
                "workers": [],
                "workers_live": 0,
                "leases_active": 0,
                "leases": [],
                "dead_letters": [],
                "draining": False,
                "counters": {
                    "leases_granted": 0,
                    "leases_renewed": 0,
                    "leases_expired": 0,
                    "redispatches": 0,
                    "dead_letter": 0,
                    "uploads_rejected": 0,
                    "fleet_completed": 0,
                    "fleet_failed": 0,
                    "shed": 0,
                },
            },
        }
        text = render_prometheus(
            scheduler_counters=counters,
            store_counters={},
            telemetry=None,
            uptime_seconds=1.0,
        )
        assert "repro_service_fleet_workers_live 0" in text
        assert "repro_service_fleet_worker_up" in text
        assert "repro_service_fleet_dead_letter_total 0" in text


class TestSigtermDrain:
    def test_stop_cancels_outstanding_leases(self, tmp_path):
        """stop() after a failed drain leaves no waiter hanging."""

        async def scenario():
            scheduler, _store, _clock = await fleet_scheduler(tmp_path)
            job = await scheduler.submit(echo_spec(seed=77))
            await scheduler.fleet_claim("w-live")
            assert await scheduler.drain(timeout=0.05) is False
            await scheduler.stop()
            record = scheduler.job(job.job_id)
            assert record.state == JobState.CANCELLED
            assert scheduler.fleet.leases == {}

        asyncio.run(scenario())
