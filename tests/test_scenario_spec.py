"""ScenarioSpec serialisation, hashing and zoo-drift contracts."""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.common.errors import ConfigurationError
from repro.scenario import (
    SCENARIO_SCHEMA_VERSION,
    ScenarioSpec,
    expand_campaign,
    library_spec,
    scenario_key,
    verify_zoo,
    zoo_keys,
    zoo_specs,
)
from repro.scenario.spec import BerSweepParams, ChannelSpec, CodecSpec
from repro.scenario.zoo import campaign_ts_sweep_spec

REPO_ROOT = Path(__file__).resolve().parent.parent
ZOO_DIR = REPO_ROOT / "scenarios"

ALL_SPECS = sorted(zoo_specs().items())


class TestRoundTrip:
    @pytest.mark.parametrize("name,spec", ALL_SPECS, ids=[n for n, _ in ALL_SPECS])
    def test_compact_json_round_trips(self, name, spec):
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("name,spec", ALL_SPECS, ids=[n for n, _ in ALL_SPECS])
    def test_pretty_json_round_trips(self, name, spec):
        assert ScenarioSpec.from_json(spec.to_json(indent=2)) == spec

    @pytest.mark.parametrize("name,spec", ALL_SPECS, ids=[n for n, _ in ALL_SPECS])
    def test_round_trip_preserves_key(self, name, spec):
        assert scenario_key(ScenarioSpec.from_json(spec.to_json())) == scenario_key(spec)

    def test_key_independent_of_formatting(self):
        spec = library_spec("fig6")
        assert ScenarioSpec.from_json(spec.to_json(indent=2)) == ScenarioSpec.from_json(
            spec.to_json()
        )


class TestKeyStability:
    """Canonical hashes are pinned by the committed scenarios/KEYS.json."""

    def test_keys_match_committed_pin_file(self):
        pinned = json.loads((ZOO_DIR / "KEYS.json").read_text(encoding="utf-8"))
        assert pinned == zoo_keys(zoo_specs())

    def test_key_changes_when_spec_changes(self):
        spec = library_spec("fig6")
        bumped = dataclasses.replace(
            spec, params=dataclasses.replace(spec.params, seed_stride=1)
        )
        assert scenario_key(bumped) != scenario_key(spec)


class TestZooDrift:
    def test_committed_zoo_verifies(self):
        specs = verify_zoo(str(ZOO_DIR))
        assert len(specs) >= 8

    def test_zoo_covers_every_library_spec(self):
        committed = {p.stem for p in ZOO_DIR.glob("*.json")} - {"KEYS"}
        for experiment_id in (
            "fig6", "fig7", "fig8", "extension_l2",
            "fault_tolerance", "online_detection", "defenses",
        ):
            assert experiment_id in committed


class TestStrictness:
    def test_unknown_top_level_field_rejected(self):
        data = library_spec("fig7").to_dict()
        data["surprise"] = 1
        with pytest.raises(ConfigurationError, match="unknown scenario field"):
            ScenarioSpec.from_dict(data)

    def test_unknown_nested_field_rejected(self):
        data = library_spec("fig7").to_dict()
        data["channel"]["surprise"] = 1
        with pytest.raises(ConfigurationError, match="surprise"):
            ScenarioSpec.from_dict(data)

    def test_unknown_params_field_rejected(self):
        data = library_spec("fig6").to_dict()
        data["params"]["surprise"] = 1
        with pytest.raises(ConfigurationError, match="surprise"):
            ScenarioSpec.from_dict(data)

    def test_missing_schema_version_rejected(self):
        data = library_spec("fig7").to_dict()
        del data["schema_version"]
        with pytest.raises(ConfigurationError, match="schema_version"):
            ScenarioSpec.from_dict(data)

    def test_stale_schema_version_rejected(self):
        data = library_spec("fig7").to_dict()
        data["schema_version"] = SCENARIO_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="schema_version"):
            ScenarioSpec.from_dict(data)

    def test_unknown_kind_rejected(self):
        data = library_spec("fig7").to_dict()
        data["kind"] = "wb_mystery"
        with pytest.raises(ConfigurationError, match="unknown scenario kind"):
            ScenarioSpec.from_dict(data)

    def test_params_type_must_match_kind(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="x",
                kind="wb_trace",
                params=BerSweepParams(periods=(1000,)),
            )

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            ScenarioSpec.from_json("{nope")

    def test_bad_codec_fails_validate(self):
        spec = dataclasses.replace(
            library_spec("fig7"), channel=ChannelSpec(codec=CodecSpec(kind="morse"))
        )
        with pytest.raises(ConfigurationError):
            spec.validate()


class TestCampaignExpansion:
    def test_expands_one_child_per_period(self):
        campaign = campaign_ts_sweep_spec()
        children = expand_campaign(campaign)
        assert len(children) == len(campaign.params.periods)
        for child, period in zip(children, campaign.params.periods):
            assert child.params.periods == (period,)
            assert child.name == f"{campaign.name}--ts{period}"
            # Each child is a complete spec with its own content address.
            assert scenario_key(child) != scenario_key(campaign)

    def test_single_period_sweep_is_its_own_campaign(self):
        campaign = campaign_ts_sweep_spec()
        single = dataclasses.replace(
            campaign, params=dataclasses.replace(campaign.params, periods=(5500,))
        )
        assert expand_campaign(single) == [single]

    def test_non_sweep_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="wb_ber_sweep"):
            expand_campaign(library_spec("fig7"))
