"""Symbol codecs: binary and multi-bit dirty-line encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, ProtocolError
from repro.channels.encoding import BinaryDirtyCodec, MultiBitDirtyCodec


class TestBinaryCodec:
    def test_zero_means_no_dirty_lines(self):
        codec = BinaryDirtyCodec(d_on=3)
        assert codec.encode_symbol([0]) == 0

    def test_one_means_d_on(self):
        codec = BinaryDirtyCodec(d_on=3)
        assert codec.encode_symbol([1]) == 3

    def test_decode_any_positive_level_as_one(self):
        codec = BinaryDirtyCodec(d_on=8)
        assert codec.decode_symbol(0) == [0]
        assert codec.decode_symbol(8) == [1]
        assert codec.decode_symbol(3) == [1]  # partial still reads as 1

    def test_levels(self):
        assert BinaryDirtyCodec(d_on=5).levels == [0, 5]

    def test_max_dirty_lines(self):
        assert BinaryDirtyCodec(d_on=7).max_dirty_lines == 7

    @pytest.mark.parametrize("bad", [0, 9, -1])
    def test_rejects_out_of_range_d(self, bad):
        with pytest.raises(ConfigurationError):
            BinaryDirtyCodec(d_on=bad)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64))
    def test_roundtrip(self, bits):
        codec = BinaryDirtyCodec(d_on=4)
        assert codec.decode_message(codec.encode_message(bits)) == bits

    def test_rejects_non_binary_symbol(self):
        with pytest.raises(ProtocolError):
            BinaryDirtyCodec().encode_symbol([2])


class TestMultiBitCodec:
    def test_paper_default_mapping(self):
        codec = MultiBitDirtyCodec()
        assert codec.encode_symbol([0, 0]) == 0
        assert codec.encode_symbol([0, 1]) == 3
        assert codec.encode_symbol([1, 0]) == 5
        assert codec.encode_symbol([1, 1]) == 8

    def test_bits_per_symbol(self):
        assert MultiBitDirtyCodec().bits_per_symbol == 2

    def test_levels_sorted(self):
        assert MultiBitDirtyCodec().levels == [0, 3, 5, 8]

    def test_decode_symbol(self):
        codec = MultiBitDirtyCodec()
        assert codec.decode_symbol(5) == [1, 0]

    def test_decode_unknown_level_rejected(self):
        with pytest.raises(ProtocolError):
            MultiBitDirtyCodec().decode_symbol(4)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=64).filter(lambda b: len(b) % 2 == 0))
    def test_roundtrip(self, bits):
        codec = MultiBitDirtyCodec()
        assert codec.decode_message(codec.encode_message(bits)) == bits

    def test_three_bit_mapping(self):
        mapping = {value: value for value in range(8)}
        codec = MultiBitDirtyCodec(level_map=mapping)
        assert codec.bits_per_symbol == 3
        assert codec.encode_symbol([1, 1, 1]) == 7

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            MultiBitDirtyCodec(level_map={0: 0, 1: 3, 2: 8})

    def test_rejects_sparse_symbols(self):
        with pytest.raises(ConfigurationError):
            MultiBitDirtyCodec(level_map={0: 0, 2: 3, 5: 5, 7: 8})

    def test_rejects_duplicate_levels(self):
        with pytest.raises(ConfigurationError):
            MultiBitDirtyCodec(level_map={0: 0, 1: 3, 2: 3, 3: 8})

    def test_rejects_levels_beyond_associativity(self):
        with pytest.raises(ConfigurationError):
            MultiBitDirtyCodec(level_map={0: 0, 1: 3, 2: 5, 3: 9})

    def test_message_length_validation(self):
        with pytest.raises(ProtocolError):
            MultiBitDirtyCodec().encode_message([1, 0, 1])

    def test_symbol_table(self):
        table = MultiBitDirtyCodec().symbol_table()
        assert table == [(0, 0), (1, 3), (2, 5), (3, 8)]
