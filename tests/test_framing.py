"""Frame format and scanner recovery (repro.channels.wb.framing)."""

import pytest

from repro.channels.coding import crc_bits, crc_check
from repro.channels.wb.framing import (
    DEFAULT_SYNC,
    FrameConfig,
    encode_frame,
    encode_payload,
    scan_frames,
)
from repro.common.bits import int_to_bits, random_bits
from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.rng import ensure_rng


def payload_for(seq: int, width: int = 8):
    return int_to_bits((seq * 37 + 11) % 256, width)


class TestFrameConfig:
    def test_default_geometry(self):
        config = FrameConfig()
        # seq(4) + payload(8) + CRC(8) = 20 data bits -> 5 Hamming(7,4)
        # blocks = 35 code bits, plus the 8-bit sync word.
        assert config.body_data_bits == 20
        assert config.body_code_bits == 35
        assert config.frame_bits == 43
        assert config.max_frames == 16
        assert config.max_payload_bits == 128
        assert config.overhead() == pytest.approx(43 / 8)

    def test_sync_is_barker7_padded(self):
        assert DEFAULT_SYNC == (1, 1, 1, 0, 0, 1, 0, 0)

    def test_rejects_non_positive_widths(self):
        with pytest.raises(ConfigurationError):
            FrameConfig(payload_bits=0)
        with pytest.raises(ConfigurationError):
            FrameConfig(seq_bits=0)
        with pytest.raises(ConfigurationError):
            FrameConfig(crc_width=0)

    def test_rejects_bad_sync_tolerance(self):
        with pytest.raises(ConfigurationError):
            FrameConfig(sync_tolerance=len(DEFAULT_SYNC))
        with pytest.raises(ConfigurationError):
            FrameConfig(sync_tolerance=-1)

    def test_rejects_body_not_whole_fec_blocks(self):
        # 4 + 7 + 8 = 19 bits does not divide into 4-bit Hamming blocks.
        with pytest.raises(ConfigurationError):
            FrameConfig(payload_bits=7)


class TestEncode:
    def test_frame_bit_budget(self):
        config = FrameConfig()
        frame = encode_frame(config, 3, payload_for(3))
        assert len(frame) == config.frame_bits
        assert frame[: len(config.sync)] == list(config.sync)

    def test_seq_out_of_range(self):
        config = FrameConfig()
        with pytest.raises(ProtocolError):
            encode_frame(config, config.max_frames, payload_for(0))
        with pytest.raises(ProtocolError):
            encode_frame(config, -1, payload_for(0))

    def test_wrong_payload_width(self):
        with pytest.raises(ProtocolError):
            encode_frame(FrameConfig(), 0, [1, 0, 1])

    def test_payload_split_and_padding(self):
        config = FrameConfig()
        payload = random_bits(20, ensure_rng(5))  # 2.5 frames -> 3 frames
        frames = encode_payload(config, payload)
        assert len(frames) == 3
        assert all(len(frame) == config.frame_bits for frame in frames)
        result = scan_frames(config, [bit for frame in frames for bit in frame])
        assert sorted(result.payloads) == [0, 1, 2]
        reassembled = (
            result.payloads[0] + result.payloads[1] + result.payloads[2]
        )
        # The trailing frame is zero-padded to a whole payload.
        assert reassembled == list(payload) + [0] * 4

    def test_empty_and_oversized_payloads_rejected(self):
        config = FrameConfig()
        with pytest.raises(ProtocolError):
            encode_payload(config, [])
        with pytest.raises(ProtocolError):
            encode_payload(config, [0] * (config.max_payload_bits + 1))


class TestScanner:
    def test_clean_round_trip(self):
        config = FrameConfig()
        stream = []
        sent = {}
        for seq in range(8):
            sent[seq] = payload_for(seq)
            stream += encode_frame(config, seq, sent[seq])
        result = scan_frames(config, stream)
        assert result.recovered == 8
        assert result.crc_failures == 0
        assert result.resync_bits == 0
        assert result.duplicates == 0
        assert {seq: list(bits) for seq, bits in result.payloads.items()} == sent

    def test_single_bit_flip_in_sync_is_tolerated(self):
        config = FrameConfig()
        frame = encode_frame(config, 2, payload_for(2))
        frame[0] ^= 1  # inside the sync word
        result = scan_frames(config, frame)
        assert result.payloads == {2: payload_for(2)}

    def test_single_bit_flip_in_body_is_fec_corrected(self):
        config = FrameConfig()
        frame = encode_frame(config, 2, payload_for(2))
        frame[len(config.sync) + 3] ^= 1  # one flip in one Hamming block
        result = scan_frames(config, frame)
        assert result.payloads == {2: payload_for(2)}
        assert result.crc_failures == 0

    def test_bit_deletion_resyncs_at_next_frame(self):
        config = FrameConfig()
        frames = [encode_frame(config, seq, payload_for(seq)) for seq in range(4)]
        stream = [bit for frame in frames for bit in frame]
        del stream[config.frame_bits + 5]  # slip inside frame 1
        result = scan_frames(config, stream)
        recovered = set(result.payloads)
        # Frame 1 is the casualty; everything before and after survives.
        assert 0 in recovered
        assert {2, 3} <= recovered
        assert result.resync_bits > 0

    def test_bit_insertion_resyncs_at_next_frame(self):
        config = FrameConfig()
        frames = [encode_frame(config, seq, payload_for(seq)) for seq in range(4)]
        stream = [bit for frame in frames for bit in frame]
        stream.insert(config.frame_bits + 9, 1)
        result = scan_frames(config, stream)
        assert 0 in result.payloads
        assert {2, 3} <= set(result.payloads)

    def test_duplicates_deduplicate_first_copy_wins(self):
        config = FrameConfig()
        frame = encode_frame(config, 5, payload_for(5))
        result = scan_frames(config, frame + frame + frame)
        assert result.payloads == {5: payload_for(5)}
        assert result.duplicates == 2

    def test_garbage_prefix_costs_only_resync_bits(self):
        config = FrameConfig()
        frame = encode_frame(config, 1, payload_for(1))
        noise = random_bits(29, ensure_rng(9))
        result = scan_frames(config, list(noise) + frame)
        assert result.payloads.get(1) == payload_for(1)
        assert result.scanned_bits == 29 + config.frame_bits


class TestCrc:
    def test_crc_round_trip(self):
        bits = random_bits(20, ensure_rng(1))
        checksum = crc_bits(bits)
        assert len(checksum) == 8
        assert crc_check(bits, checksum)

    def test_crc_detects_any_single_bit_flip(self):
        bits = list(random_bits(20, ensure_rng(2)))
        checksum = crc_bits(bits)
        for position in range(len(bits)):
            corrupted = list(bits)
            corrupted[position] ^= 1
            assert not crc_check(corrupted, checksum)

    def test_crc_detects_burst_errors_up_to_width(self):
        bits = list(random_bits(32, ensure_rng(3)))
        checksum = crc_bits(bits)
        for start in range(len(bits) - 8):
            corrupted = list(bits)
            for offset in range(8):  # any burst <= CRC width is caught
                corrupted[start + offset] ^= 1
            assert not crc_check(corrupted, checksum)

    def test_crc_validation(self):
        with pytest.raises(ConfigurationError):
            crc_bits([1, 0], width=0)
        with pytest.raises(ConfigurationError):
            crc_bits([1, 0], width=8, poly=0x100)
        with pytest.raises(ProtocolError):
            crc_check([1, 0], [1, 0, 1], width=8)
