"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.cache.configs import make_tiny_hierarchy, make_xeon_hierarchy
from repro.mem.address_space import AddressSpace, FrameAllocator


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; tests needing variation derive from it."""
    return random.Random(1234)


@pytest.fixture
def xeon():
    """The paper's modelled hierarchy (32KB/8-way L1, L2, LLC)."""
    return make_xeon_hierarchy(rng=random.Random(7))


@pytest.fixture
def tiny():
    """A 2-way, 4-set hierarchy that is easy to exhaust."""
    return make_tiny_hierarchy(rng=random.Random(7))


@pytest.fixture
def allocator() -> FrameAllocator:
    return FrameAllocator()


@pytest.fixture
def space(allocator: FrameAllocator) -> AddressSpace:
    """One process address space over the shared allocator."""
    return AddressSpace(pid=1, allocator=allocator)


@pytest.fixture
def space_pair(allocator: FrameAllocator):
    """Two distinct process address spaces (sender/receiver style)."""
    return (
        AddressSpace(pid=1, allocator=allocator),
        AddressSpace(pid=2, allocator=allocator),
    )
