"""Scheduler concurrency semantics: dedup, backpressure, cancellation.

Timing-sensitive scenarios are made deterministic with the
``gated_count`` fake (tests/fake_experiments.py): a computation blocks
on a gate file, so the test controls exactly when work is "in flight",
and the fake's invocation log is ground truth for how many computations
actually ran and in which order.
"""

import asyncio
import time

import pytest

from repro.common.errors import ConfigurationError
from repro.service.scheduler import (
    JobScheduler,
    JobSpec,
    JobState,
    QueueFullError,
    UnknownJobError,
)
from repro.service.store import ResultStore
from tests.fake_experiments import COUNT_FILE_ENV, GATE_FILE_ENV

GATED = "tests.fake_experiments:gated_count"
WELL_BEHAVED = "tests.fake_experiments:well_behaved"
RAISES = "tests.fake_experiments:raises_error"
SLEEPS = "tests.fake_experiments:sleeps_forever"

WAIT = 30.0  # generous terminal-state budget; tests finish far sooner


class Gate:
    """Handle on the gated_count fake's gate and invocation log."""

    def __init__(self, tmp_path):
        self.count_file = tmp_path / "invocations"
        self.gate_file = tmp_path / "gate"

    def open(self):
        self.gate_file.write_text("go")

    def invocations(self):
        if not self.count_file.exists():
            return []
        return self.count_file.read_text().split()


@pytest.fixture
def gate(tmp_path, monkeypatch):
    handle = Gate(tmp_path)
    monkeypatch.setenv(COUNT_FILE_ENV, str(handle.count_file))
    monkeypatch.setenv(GATE_FILE_ENV, str(handle.gate_file))
    return handle


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


async def eventually(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.01)


async def finish(scheduler, jobs):
    return [
        await asyncio.wait_for(scheduler.wait(job.job_id), WAIT)
        for job in jobs
    ]


class TestDeduplication:
    def test_identical_concurrent_submissions_compute_once(self, gate, store):
        async def scenario():
            async with JobScheduler(store, workers=2) as scheduler:
                spec = JobSpec.create("fake", entry_point=GATED, seed=0)
                jobs = [await scheduler.submit(spec) for _ in range(6)]
                # The computation is provably in flight (it logged its
                # invocation) and blocked; all later submissions coalesced.
                await eventually(lambda: len(gate.invocations()) == 1)
                gate.open()
                done = await finish(scheduler, jobs)
                assert [job.state for job in done] == [JobState.DONE] * 6
                assert gate.invocations() == ["0"]  # exactly one ran
                assert scheduler.counters["computations"] == 1
                assert scheduler.counters["deduplicated"] == 5
                assert len(store) == 1

        asyncio.run(scenario())

    def test_completed_key_is_served_from_store(self, gate, store):
        async def scenario():
            gate.open()
            spec = JobSpec.create("fake", entry_point=GATED, seed=0)
            async with JobScheduler(store, workers=1) as scheduler:
                first = await scheduler.submit(spec)
                await finish(scheduler, [first])
            # A fresh scheduler on the same store: pure memoisation.
            async with JobScheduler(store, workers=1) as scheduler:
                job = await scheduler.submit(spec)
                assert job.state == JobState.DONE
                assert job.source == "store"
                assert scheduler.counters["computations"] == 0

        asyncio.run(scenario())

    def test_corrupt_stored_blob_self_heals(self, gate, store):
        async def scenario():
            gate.open()
            spec = JobSpec.create("fake", entry_point=GATED, seed=0)
            async with JobScheduler(store, workers=1) as scheduler:
                await finish(scheduler, [await scheduler.submit(spec)])
            blob = store.root / (spec.key + ".json")
            blob.write_text("{\"truncated")
            async with JobScheduler(store, workers=1) as scheduler:
                job = await scheduler.submit(spec)
                (job,) = await finish(scheduler, [job])
                assert job.state == JobState.DONE
                assert job.source == "computed"  # recomputed, not served
                assert scheduler.counters["computations"] == 1
            assert store.stats.corrupt_discarded == 1
            assert store.get(spec.key) is not None  # healthy again

        asyncio.run(scenario())


class TestBackpressure:
    def test_queue_full_rejection_is_deterministic(self, gate, store):
        async def scenario():
            async with JobScheduler(
                store, workers=1, queue_depth=2
            ) as scheduler:
                running = await scheduler.submit(
                    JobSpec.create("fake", entry_point=GATED, seed=0)
                )
                await eventually(lambda: len(gate.invocations()) == 1)
                queued = [
                    await scheduler.submit(
                        JobSpec.create("fake", entry_point=GATED, seed=seed)
                    )
                    for seed in (1, 2)
                ]
                # Worker busy + queue at depth: the next distinct key
                # must be rejected, every time.
                with pytest.raises(QueueFullError, match="queue is full"):
                    await scheduler.submit(
                        JobSpec.create("fake", entry_point=GATED, seed=3)
                    )
                assert scheduler.counters["rejected"] == 1
                # Coalescing and store hits cost no queue slot: an
                # identical submission still succeeds at full depth.
                rider = await scheduler.submit(
                    JobSpec.create("fake", entry_point=GATED, seed=1)
                )
                assert rider.source == "coalesced"
                gate.open()
                done = await finish(scheduler, [running, *queued, rider])
                assert all(job.state == JobState.DONE for job in done)
                assert sorted(gate.invocations()) == ["0", "1", "2"]

        asyncio.run(scenario())

    def test_priority_orders_the_backlog(self, gate, store):
        async def scenario():
            async with JobScheduler(store, workers=1) as scheduler:
                jobs = [
                    await scheduler.submit(
                        JobSpec.create("fake", entry_point=GATED, seed=0)
                    )
                ]
                await eventually(lambda: len(gate.invocations()) == 1)
                jobs.append(await scheduler.submit(
                    JobSpec.create("fake", entry_point=GATED, seed=1),
                    priority=0,
                ))
                jobs.append(await scheduler.submit(
                    JobSpec.create("fake", entry_point=GATED, seed=2),
                    priority=5,
                ))
                gate.open()
                await finish(scheduler, jobs)
                # seed 2 (priority 5) must run before seed 1 (priority 0).
                assert gate.invocations() == ["0", "2", "1"]

        asyncio.run(scenario())


class TestCancellation:
    def test_cancelling_queued_job_leaves_store_consistent(self, gate, store):
        async def scenario():
            async with JobScheduler(store, workers=1) as scheduler:
                running = await scheduler.submit(
                    JobSpec.create("fake", entry_point=GATED, seed=0)
                )
                await eventually(lambda: len(gate.invocations()) == 1)
                victim_spec = JobSpec.create("fake", entry_point=GATED, seed=7)
                victim = await scheduler.submit(victim_spec)
                assert await scheduler.cancel(victim.job_id)
                assert victim.state == JobState.CANCELLED
                gate.open()
                await finish(scheduler, [running])
                await scheduler.join()
                # The cancelled computation never ran and wrote nothing.
                assert "7" not in gate.invocations()
                assert victim_spec.key not in store
                assert len(store) == 1
                snapshot = scheduler.snapshot()
                assert snapshot["queued"] == 0
                assert snapshot["cancelled"] == 1

        asyncio.run(scenario())

    def test_cancelling_one_rider_keeps_the_computation(self, gate, store):
        async def scenario():
            async with JobScheduler(store, workers=1) as scheduler:
                blocker = await scheduler.submit(
                    JobSpec.create("fake", entry_point=GATED, seed=0)
                )
                await eventually(lambda: len(gate.invocations()) == 1)
                spec = JobSpec.create("fake", entry_point=GATED, seed=9)
                owner = await scheduler.submit(spec)
                rider = await scheduler.submit(spec)
                assert rider.source == "coalesced"
                assert await scheduler.cancel(rider.job_id)
                gate.open()
                done = await finish(scheduler, [blocker, owner])
                assert [job.state for job in done] == [JobState.DONE] * 2
                assert rider.state == JobState.CANCELLED
                assert spec.key in store  # computation still happened

        asyncio.run(scenario())

    def test_running_jobs_cannot_be_cancelled(self, gate, store):
        async def scenario():
            async with JobScheduler(store, workers=1) as scheduler:
                job = await scheduler.submit(
                    JobSpec.create("fake", entry_point=GATED, seed=0)
                )
                await eventually(lambda: len(gate.invocations()) == 1)
                assert not await scheduler.cancel(job.job_id)
                gate.open()
                (job,) = await finish(scheduler, [job])
                assert job.state == JobState.DONE

        asyncio.run(scenario())

    def test_unknown_job_id_raises(self, store):
        async def scenario():
            async with JobScheduler(store, workers=1) as scheduler:
                with pytest.raises(UnknownJobError, match="job-999999"):
                    await scheduler.cancel("job-999999")

        asyncio.run(scenario())


class TestFailuresAndValidation:
    def test_failed_computation_reports_and_stores_nothing(self, store):
        async def scenario():
            async with JobScheduler(store, workers=1) as scheduler:
                job = await scheduler.submit(
                    JobSpec.create("fake", entry_point=RAISES, seed=0)
                )
                (job,) = await finish(scheduler, [job])
                assert job.state == JobState.FAILED
                assert "deliberate failure" in job.error
                assert scheduler.counters["failed"] == 1
                assert len(store) == 0

        asyncio.run(scenario())

    def test_unknown_experiment_is_rejected_at_submit(self, store):
        async def scenario():
            async with JobScheduler(store, workers=1) as scheduler:
                with pytest.raises(ConfigurationError, match="available"):
                    await scheduler.submit(JobSpec.create("not-a-thing"))

        asyncio.run(scenario())

    def test_submit_before_start_is_rejected(self, store):
        async def scenario():
            scheduler = JobScheduler(store, workers=1)
            with pytest.raises(ConfigurationError, match="not running"):
                await scheduler.submit(JobSpec.create("fig6"))

        asyncio.run(scenario())

    def test_isolated_jobs_inherit_the_runner_timeout(self, store):
        async def scenario():
            async with JobScheduler(
                store, workers=1, isolate=True
            ) as scheduler:
                job = await scheduler.submit(
                    JobSpec.create(
                        "fake", entry_point=SLEEPS, seed=0, timeout=0.5
                    )
                )
                job = await asyncio.wait_for(
                    scheduler.wait(job.job_id), WAIT
                )
                assert job.state == JobState.FAILED
                assert "timeout" in job.error

        asyncio.run(scenario())

    def test_stop_fails_still_queued_jobs(self, gate, store):
        async def scenario():
            scheduler = JobScheduler(store, workers=1)
            await scheduler.start()
            running = await scheduler.submit(
                JobSpec.create("fake", entry_point=GATED, seed=0)
            )
            await eventually(lambda: len(gate.invocations()) == 1)
            queued = await scheduler.submit(
                JobSpec.create("fake", entry_point=GATED, seed=1)
            )
            gate.open()
            await asyncio.wait_for(scheduler.wait(running.job_id), WAIT)
            await scheduler.stop()
            assert queued.state in (JobState.CANCELLED, JobState.DONE)

        asyncio.run(scenario())
