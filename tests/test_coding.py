"""Block codes over the covert channel."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channels.coding import HammingCode, RepetitionCode
from repro.common.errors import ConfigurationError, ProtocolError

nibble = st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=4)


class TestRepetitionCode:
    def test_encode(self):
        assert RepetitionCode(3).encode([1, 0]) == [1, 1, 1, 0, 0, 0]

    def test_majority_decode_corrects_single_flip(self):
        code = RepetitionCode(3)
        assert code.decode([1, 0, 1, 0, 0, 1]) == [1, 0]

    def test_rate(self):
        assert RepetitionCode(5).rate == pytest.approx(0.2)

    def test_even_repetitions_rejected(self):
        with pytest.raises(ConfigurationError):
            RepetitionCode(2)

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=32))
    def test_clean_roundtrip(self, bits):
        code = RepetitionCode(3)
        assert code.decode(code.encode(bits)) == bits


class TestHammingCode:
    @given(nibble)
    def test_clean_roundtrip(self, data):
        code = HammingCode()
        assert code.decode_block(code.encode_block(data)) == data

    @given(nibble, st.integers(min_value=0, max_value=6))
    def test_corrects_any_single_error(self, data, error_position):
        code = HammingCode()
        word = code.encode_block(data)
        word[error_position] ^= 1
        assert code.decode_block(word) == data

    def test_rate(self):
        assert HammingCode().rate == pytest.approx(4 / 7)

    def test_block_size_validation(self):
        code = HammingCode()
        with pytest.raises(ProtocolError):
            code.encode_block([1, 0, 1])
        with pytest.raises(ProtocolError):
            code.decode_block([1] * 6)

    def test_message_length_validation(self):
        with pytest.raises(ProtocolError):
            HammingCode().encode([1, 0, 1])

    def test_decode_truncates_ragged_tail(self):
        code = HammingCode()
        word = code.encode_block([1, 0, 1, 1])
        assert code.decode(word + [1, 1]) == [1, 0, 1, 1]


class TestCodedChannel:
    """End to end: Hamming coding cleans up a noisy high-rate channel."""

    def test_coding_reduces_residual_errors(self):
        from repro.channels.encoding import BinaryDirtyCodec
        from repro.channels.wb import WBChannelConfig, calibrate_decoder, run_wb_channel
        from repro.analysis.edit_distance import edit_distance
        from repro.common.bits import random_bits
        from repro.cpu.noise import SchedulerNoise

        # Flip-dominated regime: OS preemption bursts cause insertions/
        # losses that break block framing (documented limitation), so the
        # comparison disables them and keeps the flip sources (TSC jitter,
        # phase straddles) active.
        code = HammingCode()
        codec = BinaryDirtyCodec(d_on=1)
        decoder = calibrate_decoder(codec.levels, repetitions=40)
        preamble = [1, 0] * 8

        from repro.analysis.edit_distance import edit_distance_alignment

        raw_errors = 0
        coded_errors = 0
        flip_only_runs = 0
        payload_bits = 56  # 14 Hamming blocks
        for seed in range(6):
            payload = random_bits(payload_bits, random.Random(seed))
            message = preamble + code.encode(payload)
            result = run_wb_channel(
                WBChannelConfig(
                    codec=codec,
                    period_cycles=1000,
                    message=message,
                    message_bits=len(message),
                    seed=seed,
                    decoder=decoder,
                    scheduler_noise=SchedulerNoise.disabled(),
                )
            )
            _, script = edit_distance_alignment(
                message, list(result.received_bits)
            )
            if any(op in ("insert", "delete") for op, _, _ in script):
                # Boundary-straddle runs can insert/lose symbols, which
                # breaks block framing — the documented limitation.  The
                # coding claim is about the flip-dominated regime.
                continue
            flip_only_runs += 1
            received = list(result.received_bits)[len(preamble):]
            decoded = code.decode(received)
            coded_errors += edit_distance(payload, decoded)
            raw_errors += edit_distance(message, list(result.received_bits))
        assert flip_only_runs >= 3  # the comparison must rest on real data
        # In the flip regime Hamming(7,4) must strictly help (or both be 0).
        assert coded_errors <= raw_errors
