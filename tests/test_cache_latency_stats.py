"""LatencyModel validation and CacheStats accounting."""

import random

import pytest

from repro.cache.latency import LatencyModel
from repro.cache.stats import ALL_OWNERS, CacheStats, LevelCounters
from repro.common.errors import ConfigurationError


class TestLatencyModel:
    def test_defaults_match_table4(self):
        model = LatencyModel()
        assert model.l1_hit == 4
        assert model.l2_hit == 11
        assert model.l2_hit + model.l1_writeback_penalty == 22

    def test_hit_latency_by_level(self):
        model = LatencyModel()
        assert model.hit_latency(1) == model.l1_hit
        assert model.hit_latency(3) == model.llc_hit
        with pytest.raises(ConfigurationError):
            model.hit_latency(4)

    def test_writeback_penalty_by_level(self):
        model = LatencyModel()
        assert model.writeback_penalty(1) == model.l1_writeback_penalty
        with pytest.raises(ConfigurationError):
            model.writeback_penalty(9)

    def test_rejects_non_monotone_latencies(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(l1_hit=50, l2_hit=11)

    def test_rejects_negative_penalty(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(l1_writeback_penalty=-1)

    def test_jitter_range(self):
        model = LatencyModel(jitter=3)
        rng = random.Random(0)
        samples = {model.sample_jitter(rng) for _ in range(200)}
        assert samples == {0, 1, 2, 3}

    def test_zero_jitter(self):
        model = LatencyModel(jitter=0)
        assert model.sample_jitter(random.Random(0)) == 0


class TestLevelCounters:
    def test_miss_derivation(self):
        counters = LevelCounters(accesses=10, hits=7)
        assert counters.misses == 3
        assert counters.miss_rate == pytest.approx(0.3)

    def test_empty_miss_rate_zero(self):
        assert LevelCounters().miss_rate == 0.0

    def test_loads_excludes_stores(self):
        counters = LevelCounters(accesses=10, hits=7, stores=4)
        assert counters.loads == 6

    def test_merge(self):
        first = LevelCounters(accesses=2, hits=1, writebacks=1, stores=1)
        second = LevelCounters(accesses=3, hits=3, writebacks=0, stores=2)
        first.merge(second)
        assert (first.accesses, first.hits, first.writebacks, first.stores) == (5, 4, 1, 3)


class TestCacheStats:
    def test_per_owner_attribution(self):
        stats = CacheStats()
        stats.record_access(1, owner=0, hit=True)
        stats.record_access(1, owner=1, hit=False)
        assert stats.level(1, 0).hits == 1
        assert stats.level(1, 1).misses == 1
        assert stats.level(1).accesses == 2  # aggregate

    def test_none_owner_goes_to_aggregate_only(self):
        stats = CacheStats()
        stats.record_access(1, owner=None, hit=True)
        assert stats.level(1).accesses == 1
        assert stats.level(1, 0).accesses == 0

    def test_store_counting(self):
        stats = CacheStats()
        stats.record_access(1, owner=0, hit=True, write=True)
        stats.record_access(1, owner=0, hit=True, write=False)
        assert stats.level(1, 0).stores == 1
        assert stats.level(1, 0).loads == 1

    def test_writebacks(self):
        stats = CacheStats()
        stats.record_writeback(1, owner=2)
        assert stats.level(1, 2).writebacks == 1
        assert stats.level(1).writebacks == 1

    def test_reset(self):
        stats = CacheStats()
        stats.record_access(1, owner=0, hit=False)
        stats.memory_reads = 5
        stats.reset()
        assert stats.level(1).accesses == 0
        assert stats.memory_reads == 0

    def test_level_returns_copy(self):
        stats = CacheStats()
        stats.record_access(1, owner=0, hit=True)
        view = stats.level(1, 0)
        view.accesses = 999
        assert stats.level(1, 0).accesses == 1

    def test_snapshot_shape(self):
        stats = CacheStats()
        stats.record_access(1, owner=0, hit=False)
        stats.record_access(2, owner=0, hit=True)
        snapshot = stats.snapshot()
        assert snapshot["L1"]["misses"] == 1
        assert snapshot["L2"]["hits"] == 1
        assert "memory" in snapshot

    def test_all_owners_key(self):
        stats = CacheStats()
        stats.record_access(1, owner=ALL_OWNERS, hit=True)
        assert stats.level(1).hits == 1
