"""Single cache level: geometry, lookup/fill semantics, policies."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.cache.cache import AllocationPolicy, Cache, WritePolicy
from repro.replacement.registry import make_policy_factory


def make_cache(size=4096, ways=4, line=64, policy="lru", **kwargs):
    return Cache(
        name="test",
        size_bytes=size,
        associativity=ways,
        line_size=line,
        policy_factory=make_policy_factory(policy),
        rng=random.Random(0),
        **kwargs,
    )


class TestGeometry:
    def test_derived_set_count(self):
        cache = make_cache(size=4096, ways=4, line=64)
        assert cache.num_sets == 16

    def test_paper_l1_geometry(self):
        cache = make_cache(size=32 * 1024, ways=8, line=64)
        assert cache.num_sets == 64

    def test_rejects_inconsistent_size(self):
        with pytest.raises(ConfigurationError):
            make_cache(size=5000, ways=4, line=64)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            make_cache(size=4096 * 3, ways=4, line=64)

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ConfigurationError):
            make_cache(size=0)


class TestLookupAndFill:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.lookup(0x1000, owner=None)
        cache.fill(0x1000, dirty=False, owner=None)
        assert cache.lookup(0x1000, owner=None)

    def test_probe_does_not_touch_metadata(self):
        cache = make_cache(ways=2)
        cache.fill(0x0, dirty=False, owner=None)
        cache.fill(0x1000, dirty=False, owner=None)  # same set (16 sets * 64B)
        # Probing 0x0 must NOT refresh it: next fill should still evict it.
        cache.probe(0x0)
        evicted = cache.fill(0x2000, dirty=False, owner=None)
        assert evicted is not None
        assert evicted.address == 0x0

    def test_eviction_reconstructs_address(self):
        cache = make_cache(ways=1)
        cache.fill(0x1040, dirty=True, owner=None)
        evicted = cache.fill(0x2040, dirty=False, owner=None)
        assert evicted.address == 0x1040
        assert evicted.dirty

    def test_mark_dirty(self):
        cache = make_cache()
        cache.fill(0x1000, dirty=False, owner=None)
        assert not cache.is_dirty(0x1000)
        cache.mark_dirty(0x1000)
        assert cache.is_dirty(0x1000)

    def test_mark_dirty_requires_residency(self):
        cache = make_cache()
        with pytest.raises(ConfigurationError):
            cache.mark_dirty(0x1000)

    def test_invalidate(self):
        cache = make_cache()
        cache.fill(0x1000, dirty=True, owner=None)
        snapshot = cache.invalidate(0x1000)
        assert snapshot.dirty
        assert not cache.probe(0x1000)


class TestSetMapping:
    def test_same_stride_contends(self):
        cache = make_cache(ways=2)
        stride = cache.layout.stride_between_conflicts()
        base = 0x8000
        cache.fill(base, dirty=False, owner=None)
        cache.fill(base + stride, dirty=False, owner=None)
        evicted = cache.fill(base + 2 * stride, dirty=False, owner=None)
        assert evicted is not None

    def test_different_sets_do_not_contend(self):
        cache = make_cache(ways=1)
        cache.fill(0x0, dirty=False, owner=None)
        evicted = cache.fill(0x40, dirty=False, owner=None)  # next set
        assert evicted is None

    def test_dirty_lines_in_set(self):
        cache = make_cache(ways=4)
        index = cache.set_index(0x1000)
        cache.fill(0x1000, dirty=True, owner=None)
        assert cache.dirty_lines_in_set(index) == 1
        with pytest.raises(ConfigurationError):
            cache.dirty_lines_in_set(10**6)


class TestDescribe:
    def test_describe_contents(self):
        cache = make_cache()
        info = cache.describe()
        assert info["num_sets"] == 16
        assert info["write_policy"] == WritePolicy.WRITE_BACK.value
        assert info["allocation_policy"] == AllocationPolicy.WRITE_ALLOCATE.value
