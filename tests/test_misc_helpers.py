"""Small helpers not covered elsewhere."""

import pytest

from repro.experiments.base import _format_cell
from repro.experiments.process_models import idle_spin_program
from repro.cpu.ops import SpinUntil
from repro.noise.workloads import drain
from repro.cache.line import CacheLine, EvictedLine


class TestFormatCell:
    def test_floats_compact(self):
        assert _format_cell(0.123456) == "0.1235"

    def test_ints_verbatim(self):
        assert _format_cell(12) == "12"

    def test_strings_verbatim(self):
        assert _format_cell("68.8%") == "68.8%"


class TestIdleProgram:
    def test_spins_once(self):
        program = idle_spin_program(5000)
        ops = list(program.run())
        assert ops == [SpinUntil(5000)]


class TestDrainHelper:
    def test_returns_all_ops(self):
        program = idle_spin_program(100)
        assert len(drain(program)) == 1


class TestCacheLine:
    def test_defaults_invalid(self):
        line = CacheLine()
        assert not line.valid
        assert not line.dirty

    def test_invalidate_clears_everything(self):
        line = CacheLine(tag=5, valid=True, dirty=True, locked=True, owner=3)
        line.invalidate()
        assert not line.valid and not line.dirty and not line.locked
        assert line.owner is None

    def test_matches_requires_validity(self):
        line = CacheLine(tag=5, valid=False)
        assert not line.matches(5)
        line.valid = True
        assert line.matches(5)
        assert not line.matches(6)

    def test_evicted_line_is_frozen(self):
        snapshot = EvictedLine(address=0x40, dirty=True, owner=1)
        with pytest.raises(AttributeError):
            snapshot.dirty = False
