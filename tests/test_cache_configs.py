"""Preset hierarchy configurations."""

import random

import pytest

from repro.cache.configs import (
    XeonE5_2650Config,
    dataclass_replace,
    make_tiny_hierarchy,
    make_xeon_hierarchy,
)
from repro.common.errors import ConfigurationError


class TestXeonConfig:
    def test_matches_paper_table3(self):
        config = XeonE5_2650Config()
        assert config.l1_size == 32 * 1024
        assert config.l1_ways == 8
        assert config.l1_sets == 64
        assert config.line_size == 64

    def test_hierarchy_levels(self):
        hierarchy = make_xeon_hierarchy(rng=random.Random(0))
        assert [level.name for level in hierarchy.levels] == ["L1D", "L2", "LLC"]
        assert hierarchy.l1.num_sets == 64

    def test_overrides(self):
        hierarchy = make_xeon_hierarchy(rng=random.Random(0), l1_policy="random")
        policy = hierarchy.l1.sets[0].policy
        assert type(policy).__name__ == "UniformRandom"

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigurationError):
            make_xeon_hierarchy(rng=random.Random(0), l1_speed="warp")

    def test_dataclass_replace(self):
        config = dataclass_replace(XeonE5_2650Config(), l1_ways=4)
        assert config.l1_ways == 4

    def test_deterministic_given_seed(self):
        first = make_xeon_hierarchy(rng=random.Random(5))
        second = make_xeon_hierarchy(rng=random.Random(5))
        first.store(0x1000)
        second.store(0x1000)
        assert first.l1.is_dirty(0x1000) == second.l1.is_dirty(0x1000)


class TestTinyHierarchy:
    def test_geometry(self):
        hierarchy = make_tiny_hierarchy(rng=random.Random(0))
        assert hierarchy.l1.num_sets == 4
        assert hierarchy.l1.associativity == 2

    def test_policy_selectable(self):
        hierarchy = make_tiny_hierarchy(l1_policy="fifo", rng=random.Random(0))
        assert type(hierarchy.l1.sets[0].policy).__name__ == "FIFO"
