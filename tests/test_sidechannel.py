"""Section 9 side channels: gadgets and the three attack scenarios."""

import random

import pytest

from repro.cache.configs import make_xeon_hierarchy
from repro.common.bits import random_bits
from repro.common.errors import ConfigurationError
from repro.mem.address_space import AddressSpace, FrameAllocator
from repro.sidechannel import (
    VictimGadgetA,
    VictimGadgetB,
    dirty_eviction_attack,
    dirty_state_attack,
    execution_time_attack,
)
from repro.sidechannel.victim import make_victim

SECRET = random_bits(48, random.Random(77))


@pytest.fixture
def victim_context():
    hierarchy = make_xeon_hierarchy(rng=random.Random(0))
    space = AddressSpace(pid=2, allocator=FrameAllocator())
    return make_victim(hierarchy, space, set0=13, set1=37)


class TestGadgets:
    def test_gadget_a_modifies_on_secret_one(self, victim_context):
        gadget = VictimGadgetA(victim_context)
        gadget.call(1)
        hierarchy = victim_context.hierarchy
        line0 = victim_context.space.translate(victim_context.line0)
        assert hierarchy.l1.is_dirty(line0)

    def test_gadget_a_reads_on_secret_zero(self, victim_context):
        gadget = VictimGadgetA(victim_context)
        gadget.call(0)
        hierarchy = victim_context.hierarchy
        line1 = victim_context.space.translate(victim_context.line1)
        assert hierarchy.l1.probe(line1)
        assert not hierarchy.l1.is_dirty(line1)

    def test_gadget_b_never_dirties(self, victim_context):
        gadget = VictimGadgetB(victim_context)
        gadget.call(1)
        gadget.call(0)
        hierarchy = victim_context.hierarchy
        for line in (victim_context.line0, victim_context.line1):
            assert not hierarchy.l1.is_dirty(victim_context.space.translate(line))

    def test_gadgets_reject_non_binary_secret(self, victim_context):
        with pytest.raises(ConfigurationError):
            VictimGadgetA(victim_context).call(2)
        with pytest.raises(ConfigurationError):
            VictimGadgetB(victim_context).call(-1)

    def test_set_placement(self, victim_context):
        assert victim_context.set_of_line0() == 13
        assert victim_context.set_of_line1() == 37

    def test_same_set_placement(self):
        hierarchy = make_xeon_hierarchy(rng=random.Random(0))
        space = AddressSpace(pid=2, allocator=FrameAllocator())
        context = make_victim(hierarchy, space, set0=5)
        assert context.set_of_line0() == context.set_of_line1() == 5
        assert context.line0 != context.line1


class TestAttacks:
    def test_dirty_state_recovers_secret(self):
        result = dirty_state_attack(SECRET, seed=0)
        assert result.accuracy >= 0.95

    def test_dirty_state_works_with_same_set_lines(self):
        # The paper's differentiator vs Prime+Probe/LRU channels.
        result = dirty_state_attack(SECRET, seed=0, same_set=True)
        assert result.accuracy >= 0.95

    def test_dirty_eviction_recovers_secret(self):
        result = dirty_eviction_attack(SECRET, seed=0)
        assert result.accuracy >= 0.95

    def test_dirty_eviction_signal_is_inverted(self):
        # secret=1 removes a dirty line, so the 1-median is *lower*.
        result = dirty_eviction_attack(SECRET, seed=0)
        median_zero, median_one = result.calibration_means
        assert median_one < median_zero

    def test_execution_time_recovers_secret(self):
        result = execution_time_attack(SECRET, seed=0)
        assert result.accuracy >= 0.9

    def test_execution_time_gadget_a(self):
        result = execution_time_attack(SECRET, seed=0, gadget="a")
        assert result.accuracy >= 0.9

    def test_execution_time_rejects_unknown_gadget(self):
        with pytest.raises(ConfigurationError):
            execution_time_attack(SECRET, gadget="c")

    def test_rejects_non_binary_secret(self):
        with pytest.raises(ConfigurationError):
            dirty_state_attack([0, 2, 1])

    def test_result_rendering(self):
        result = dirty_state_attack(SECRET[:16], seed=1)
        assert "recovered" in str(result)

    def test_deterministic(self):
        first = dirty_state_attack(SECRET[:24], seed=3)
        second = dirty_state_attack(SECRET[:24], seed=3)
        assert first.recovered == second.recovered
