"""The package's top-level public API surface."""

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quick_channel_run_exported(self):
        result = repro.quick_channel_run(message_bits=32, seed=1)
        assert result.rate_kbps > 0

    def test_subpackage_all_names_resolve(self):
        import repro.analysis
        import repro.cache
        import repro.channels
        import repro.channels.wb
        import repro.defenses
        import repro.experiments
        import repro.mem
        import repro.noise
        import repro.replacement
        import repro.service
        import repro.sidechannel

        for module in (
            repro.analysis, repro.cache, repro.channels, repro.channels.wb,
            repro.defenses, repro.experiments, repro.mem, repro.noise,
            repro.replacement, repro.service, repro.sidechannel,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestDoctests:
    def test_units_doctests(self):
        import doctest

        import repro.common.units as units

        failures, _ = doctest.testmod(units)
        assert failures == 0

    def test_capacity_doctests(self):
        import doctest

        import repro.analysis.capacity as capacity

        failures, _ = doctest.testmod(capacity)
        assert failures == 0

    def test_bits_doctests(self):
        import doctest

        import repro.common.bits as bits

        failures, _ = doctest.testmod(bits)
        assert failures == 0
