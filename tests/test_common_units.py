"""Unit conversions: the paper's cycle/rate arithmetic must be exact."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import (
    CPU_FREQUENCY_HZ,
    cycles_to_kbps,
    cycles_to_seconds,
    cycles_to_us,
    kbps_to_period_cycles,
    seconds_to_cycles,
)


class TestCyclesToKbps:
    def test_paper_anchor_400kbps(self):
        # Figure 5: Ts = 5500 cycles at 2.2 GHz is 400 Kbps.
        assert cycles_to_kbps(5500) == pytest.approx(400.0)

    def test_paper_anchor_1375kbps(self):
        # Figure 6: Ts = 1600 is the paper's 1375 Kbps point.
        assert cycles_to_kbps(1600) == pytest.approx(1375.0)

    def test_paper_anchor_4400kbps_multibit(self):
        # Figure 8: two-bit symbols at Ts = 1000 give the headline 4400 Kbps.
        assert cycles_to_kbps(1000, bits_per_symbol=2) == pytest.approx(4400.0)

    def test_paper_anchor_2200kbps(self):
        assert cycles_to_kbps(1000) == pytest.approx(2200.0)

    def test_rejects_zero_period(self):
        with pytest.raises(ConfigurationError):
            cycles_to_kbps(0)

    def test_rejects_zero_bits(self):
        with pytest.raises(ConfigurationError):
            cycles_to_kbps(1000, bits_per_symbol=0)


class TestKbpsToPeriod:
    def test_inverse_of_cycles_to_kbps(self):
        for period in (800, 1000, 1600, 2200, 5500, 11000):
            rate = cycles_to_kbps(period)
            assert kbps_to_period_cycles(rate) == period

    def test_multibit_inverse(self):
        assert kbps_to_period_cycles(4400, bits_per_symbol=2) == 1000

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            kbps_to_period_cycles(0)


class TestTimeConversions:
    def test_one_second_roundtrip(self):
        assert cycles_to_seconds(CPU_FREQUENCY_HZ) == pytest.approx(1.0)
        assert seconds_to_cycles(1.0) == CPU_FREQUENCY_HZ

    def test_microseconds(self):
        assert cycles_to_us(2200) == pytest.approx(1.0)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            cycles_to_seconds(100, frequency_hz=0)
        with pytest.raises(ConfigurationError):
            seconds_to_cycles(1.0, frequency_hz=-1)

    def test_rounding(self):
        # 1.5 cycles of time rounds to nearest integer cycle count.
        assert seconds_to_cycles(1.5 / CPU_FREQUENCY_HZ) == 2
