"""The paper's Table 1 channel classification, encoded as data."""

import pytest

from repro.channels.taxonomy import (
    KNOWN_CHANNELS,
    ContentionClass,
    TimingClass,
    channels_by_class,
    profile,
    render_table,
)


class TestClassification:
    def test_wb_is_miss_miss_contention(self):
        wb = profile("WB")
        assert wb.timing_class is TimingClass.MISS_MISS
        assert wb.contention_class is ContentionClass.CONTENTION

    def test_wb_needs_no_shared_memory_nor_clflush(self):
        wb = profile("WB")
        assert not wb.needs_shared_memory
        assert not wb.needs_clflush

    def test_flush_reload_is_reuse_hit_miss(self):
        fr = profile("Flush+Reload")
        assert fr.timing_class is TimingClass.HIT_MISS
        assert fr.needs_shared_memory
        assert fr.needs_clflush

    def test_cachebleed_is_the_hit_hit_example(self):
        grouped = channels_by_class()
        names = [p.name for p in grouped[TimingClass.HIT_HIT]]
        assert names == ["CacheBleed"]

    def test_miss_miss_column_matches_table1(self):
        grouped = channels_by_class()
        names = {p.name for p in grouped[TimingClass.MISS_MISS]}
        assert names == {"WB", "Coherence-state"}

    def test_every_channel_in_exactly_one_class(self):
        grouped = channels_by_class()
        total = sum(len(members) for members in grouped.values())
        assert total == len(KNOWN_CHANNELS)

    def test_lookup_case_insensitive(self):
        assert profile("wb").name == "WB"

    def test_unknown_channel(self):
        with pytest.raises(KeyError):
            profile("SpectreRSB")


class TestRendering:
    def test_render_lists_all_classes(self):
        text = render_table()
        for cls in TimingClass:
            assert cls.value in text

    def test_render_mentions_wb(self):
        assert "WB" in render_table()
