"""Result store: durability, LRU eviction, corruption self-healing."""

import hashlib

import pytest

from repro.common.errors import ConfigurationError, ManifestError
from repro.experiments.base import ExperimentResult
from repro.service.store import ResultStore, validate_key


def fake_key(tag) -> str:
    return hashlib.sha256(str(tag).encode()).hexdigest()


def fake_result(tag) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=f"exp-{tag}",
        title=f"result {tag}",
        paper_reference="tests",
        columns=["tag"],
        rows=[[tag]],
    )


class TestValidateKey:
    def test_accepts_sha256_hex(self):
        assert validate_key(fake_key(1)) == fake_key(1)

    @pytest.mark.parametrize("bad", [
        "", "short", fake_key(1).upper(), fake_key(1)[:-1] + "g",
        "../" + fake_key(1)[3:], fake_key(1) + "0", None, 42,
    ])
    def test_rejects_everything_else(self, bad):
        with pytest.raises(ConfigurationError, match="hex digest"):
            validate_key(bad)


class TestRoundTrip:
    def test_bytes_are_exactly_the_result_json(self, tmp_path):
        store = ResultStore(tmp_path)
        result = fake_result("a")
        store.put(fake_key("a"), result)
        assert store.get_bytes(fake_key("a")) == result.to_json().encode()

    def test_get_deserialises(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(fake_key("a"), fake_result("a"))
        loaded = store.get(fake_key("a"))
        assert loaded.experiment_id == "exp-a"
        assert loaded.rows == [["a"]]

    def test_miss_returns_none_and_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(fake_key("nope")) is None
        assert store.stats.misses == 1
        assert store.stats.hits == 0

    def test_put_rejects_non_results(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ConfigurationError, match="ExperimentResult"):
            store.put(fake_key("a"), {"not": "a result"})

    def test_stats_track_hits_and_gauges(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(fake_key("a"), fake_result("a"))
        store.get(fake_key("a"))
        store.get(fake_key("a"))
        assert store.stats.hits == 2
        assert store.stats.puts == 1
        assert store.stats.entries == 1
        assert store.stats.bytes > 0
        assert store.stats.hit_rate == 1.0


class TestPersistence:
    def test_blobs_survive_restart(self, tmp_path):
        ResultStore(tmp_path).put(fake_key("a"), fake_result("a"))
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.get(fake_key("a")).experiment_id == "exp-a"

    def test_foreign_files_are_ignored(self, tmp_path):
        (tmp_path / "README.json").write_text("{}")
        (tmp_path / "notes.txt").write_text("hello")
        store = ResultStore(tmp_path)
        assert len(store) == 0


class TestEviction:
    def test_entry_cap_evicts_least_recently_used(self, tmp_path):
        store = ResultStore(tmp_path, capacity_entries=2)
        store.put(fake_key(1), fake_result(1))
        store.put(fake_key(2), fake_result(2))
        evicted = store.put(fake_key(3), fake_result(3))
        assert [victim.key for victim in evicted] == [fake_key(1)]
        assert fake_key(1) not in store
        assert fake_key(2) in store and fake_key(3) in store
        assert store.stats.evictions == 1

    def test_get_refreshes_recency(self, tmp_path):
        store = ResultStore(tmp_path, capacity_entries=2)
        store.put(fake_key(1), fake_result(1))
        store.put(fake_key(2), fake_result(2))
        store.get(fake_key(1))  # 2 is now the LRU entry
        evicted = store.put(fake_key(3), fake_result(3))
        assert [victim.key for victim in evicted] == [fake_key(2)]
        assert fake_key(1) in store

    def test_byte_cap_never_evicts_the_fresh_put(self, tmp_path):
        store = ResultStore(tmp_path, capacity_bytes=1)  # below any blob
        store.put(fake_key(1), fake_result(1))
        evicted = store.put(fake_key(2), fake_result(2))
        # The older blob goes; the just-put one stays despite the cap.
        assert [victim.key for victim in evicted] == [fake_key(1)]
        assert fake_key(2) in store
        assert len(store) == 1

    def test_zero_capacity_is_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="positive"):
            ResultStore(tmp_path, capacity_bytes=0)
        with pytest.raises(ConfigurationError, match="positive"):
            ResultStore(tmp_path, capacity_entries=0)


class TestCorruption:
    def test_corrupt_blob_raises_manifest_error(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(fake_key("a"), fake_result("a"))
        (tmp_path / (fake_key("a") + ".json")).write_text("{\"trunc")
        with pytest.raises(ManifestError, match="corrupt"):
            store.get_bytes(fake_key("a"))

    def test_discard_heals_and_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(fake_key("a"), fake_result("a"))
        (tmp_path / (fake_key("a") + ".json")).write_text("garbage")
        assert store.discard(fake_key("a"))
        assert fake_key("a") not in store
        assert store.stats.corrupt_discarded == 1
        assert store.get(fake_key("a")) is None  # plain miss now

    def test_discard_of_absent_key_is_false(self, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.discard(fake_key("ghost"))
        assert store.stats.corrupt_discarded == 0

    def test_vanished_file_becomes_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(fake_key("a"), fake_result("a"))
        (tmp_path / (fake_key("a") + ".json")).unlink()
        assert store.get_bytes(fake_key("a")) is None
        assert fake_key("a") not in store
