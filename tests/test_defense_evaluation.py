"""Defense evaluation harness: Section 8's verdicts, end to end.

These are the slowest unit tests (each runs covert channels); they use
two seeds per defense, which is enough for the categorical verdicts.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.defenses.evaluation import (
    DEAD_CHANNEL_BER,
    available_defenses,
    evaluate_defense,
)

SEEDS = range(2)


@pytest.fixture(scope="module")
def reports():
    return {name: evaluate_defense(name, seeds=SEEDS) for name in available_defenses()}


class TestVerdicts:
    def test_baseline_channel_alive(self, reports):
        baseline = reports["baseline"]
        assert baseline.channel_alive
        assert baseline.naive_ber < 0.05

    def test_plcache_mitigates(self, reports):
        assert not reports["plcache"].channel_alive

    def test_partitioning_mitigates(self, reports):
        assert not reports["partitioned"].channel_alive

    def test_write_through_removes_signal_entirely(self, reports):
        report = reports["write-through"]
        assert report.naive_ber is None  # calibration found no signal
        assert not report.channel_alive

    def test_random_fill_defeated_by_adaptive_attacker(self, reports):
        report = reports["random-fill"]
        assert report.adaptive_ber is not None
        assert report.adaptive_ber < DEAD_CHANNEL_BER
        assert report.channel_alive  # the paper's verdict: NOT effective

    def test_randomized_mapping_blocks_naive_attacker(self, reports):
        report = reports["randomized-mapping"]
        assert not report.channel_alive

    def test_overheads_reported(self, reports):
        for report in reports.values():
            assert report.overhead_ratio > 0.5

    def test_str_renders(self, reports):
        for report in reports.values():
            assert report.name in str(report)


class TestHarness:
    def test_unknown_defense_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate_defense("prayer", seeds=SEEDS)

    def test_available_defenses_sorted(self):
        names = available_defenses()
        assert names == sorted(names)
        assert "baseline" in names
