"""Deliberately misbehaving experiments for runner fault-injection tests.

These are referenced by dotted ``entry_point`` strings in
:class:`repro.runner.TaskSpec`, so they must live in an importable module
— worker processes resolve them by import, not by pickled closure.
"""

import os
import time

from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import resolve_profile

#: Environment variable naming the marker file ``crash_once`` uses to
#: remember (across processes) that it already crashed.
CRASH_MARKER_ENV = "REPRO_TEST_CRASH_MARKER"


def _result(seed: int) -> ExperimentResult:
    return ExperimentResult(
        experiment_id="fake",
        title="fake experiment",
        paper_reference="tests",
        columns=["seed"],
        rows=[[seed]],
    )


def well_behaved(profile=None, seed=0):
    """Returns a tiny result; sanity baseline for entry-point tasks."""
    resolve_profile(profile)
    return _result(seed)


def always_crash(profile=None, seed=0):
    """Kills the worker process outright on every attempt."""
    os._exit(21)


def crash_once(profile=None, seed=0):
    """Crashes the first attempt, succeeds on the retry.

    Cross-process memory is a marker file named by ``CRASH_MARKER_ENV``
    (workers inherit the environment).
    """
    marker = os.environ[CRASH_MARKER_ENV]
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(22)
    return _result(seed)


def sleeps_forever(profile=None, seed=0):
    """Overstays any reasonable timeout."""
    time.sleep(600)
    return _result(seed)


#: Environment variable naming the file ``interrupt_after`` counts task
#: completions in before raising KeyboardInterrupt.
INTERRUPT_MARKER_ENV = "REPRO_TEST_INTERRUPT_MARKER"


def interrupt_after(profile=None, seed=0):
    """Simulates Ctrl-C: completes once, interrupts the next call.

    The marker file (``INTERRUPT_MARKER_ENV``) carries the "already ran
    once" bit across calls, so a serial run finishes its first task and
    is interrupted on the second — leaving a partial, resumable manifest.
    """
    marker = os.environ[INTERRUPT_MARKER_ENV]
    if os.path.exists(marker):
        raise KeyboardInterrupt
    with open(marker, "w"):
        pass
    return _result(seed)


def seed_echo(profile=None, seed=0):
    """Deterministic result rows keyed by seed (resume-equality fodder)."""
    return _result(seed)


def echo_experiment_id(profile=None, seed=0, experiment_id=None):
    """Reports the experiment id the pool bound for it (see
    ``resolve_entry_point``); one callable serving many task ids."""
    return ExperimentResult(
        experiment_id=str(experiment_id),
        title="fake experiment",
        paper_reference="tests",
        columns=["experiment_id"],
        rows=[[experiment_id]],
    )


def raises_error(profile=None, seed=0):
    """Fails with a deterministic Python exception (no retry expected)."""
    raise ValueError("deliberate failure for tests")


def fails_when_seed_negative(profile=None, seed=0):
    """Fails for negative seeds only — one entry point, mixed outcomes.

    Batch-group tests need a member to fail *inside* a group, and group
    membership requires an identical execution route, so the failure has
    to key off the seed rather than the callable.
    """
    if seed < 0:
        raise ValueError("deliberate failure for tests")
    return _result(seed)


#: Environment variables for ``gated_count``: the invocation log and the
#: gate file whose existence releases blocked invocations.
COUNT_FILE_ENV = "REPRO_TEST_COUNT_FILE"
GATE_FILE_ENV = "REPRO_TEST_GATE_FILE"


def gated_count(profile=None, seed=0):
    """Logs its invocation, then blocks until the gate file appears.

    The service scheduler tests use this to hold a computation in flight
    deterministically: submissions made while the gate is closed must
    coalesce (or queue) rather than racing the computation's completion.
    Appends ``seed`` to the ``COUNT_FILE_ENV`` file on entry, so the
    line count is the exact number of computations that ran and the line
    order is the order the scheduler dispatched them.
    """
    with open(os.environ[COUNT_FILE_ENV], "a") as handle:
        handle.write(f"{seed}\n")
        handle.flush()
    gate = os.environ[GATE_FILE_ENV]
    deadline = time.monotonic() + 30.0
    while not os.path.exists(gate):
        if time.monotonic() > deadline:
            raise RuntimeError("gate file never appeared; test hung?")
        time.sleep(0.005)
    return _result(seed)
