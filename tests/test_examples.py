"""Smoke tests: every example script must run and produce its headline."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=180):
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "WB covert channel" in out
        assert "BER" in out

    def test_inspect_latency_bands(self):
        out = run_example("inspect_latency_bands.py", "--reps", "40")
        assert "d = 8" in out
        assert "write-back penalty" in out

    def test_bandwidth_sweep(self):
        out = run_example("bandwidth_sweep.py", "--messages", "2")
        assert "binary d=1" in out
        assert "4400" in out

    def test_side_channel_attack(self):
        out = run_example("side_channel_attack.py")
        assert "Scenario 1" in out
        assert "accuracy" in out

    def test_detect_the_channel(self):
        out = run_example("detect_the_channel.py")
        assert "stealth claim holds" in out
        assert "CC-Hunter" in out

    @pytest.mark.slow
    def test_defense_shootout(self):
        out = run_example("defense_shootout.py", "--seeds", "2", timeout=300)
        assert "plcache" in out
        assert "mitigated" in out
