"""Channel-capacity estimation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.capacity import (
    binary_symmetric_capacity,
    bit_sequences_capacity,
    confusion_matrix,
    effective_rate_kbps,
    summarize_channel_capacity,
    symbol_capacity,
)
from repro.common.errors import ConfigurationError


class TestBscCapacity:
    def test_perfect_channel(self):
        assert binary_symmetric_capacity(0.0) == 1.0

    def test_useless_channel(self):
        assert binary_symmetric_capacity(0.5) == pytest.approx(0.0)

    def test_symmetry_in_flip_probability(self):
        assert binary_symmetric_capacity(0.1) == pytest.approx(
            binary_symmetric_capacity(0.9)
        )

    def test_paper_scale_example(self):
        # d=8 at 2700 Kbps with 4.5% BER: still carries ~0.73 bits/use.
        assert binary_symmetric_capacity(0.045) == pytest.approx(0.733, abs=0.01)

    @given(st.floats(min_value=0.0, max_value=0.5))
    def test_monotone_decreasing_to_half(self, p):
        assert binary_symmetric_capacity(p) >= binary_symmetric_capacity(0.5) - 1e-12

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            binary_symmetric_capacity(1.5)


class TestConfusionMatrix:
    def test_counts(self):
        matrix = confusion_matrix([0, 0, 3, 3], [0, 3, 3, 3])
        assert matrix == {(0, 0): 1, (0, 3): 1, (3, 3): 2}

    def test_rejects_mismatched(self):
        with pytest.raises(ConfigurationError):
            confusion_matrix([0], [0, 1])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            confusion_matrix([], [])


class TestSymbolCapacity:
    def test_perfect_two_level(self):
        matrix = confusion_matrix([0, 1] * 50, [0, 1] * 50)
        assert symbol_capacity(matrix) == pytest.approx(1.0)

    def test_perfect_four_level(self):
        levels = [0, 3, 5, 8] * 25
        assert symbol_capacity(confusion_matrix(levels, levels)) == pytest.approx(2.0)

    def test_independent_channels_carry_nothing(self):
        # Received constant regardless of sent: zero mutual information.
        matrix = confusion_matrix([0, 1] * 50, [0] * 100)
        assert symbol_capacity(matrix) == pytest.approx(0.0)

    def test_matches_bsc_for_symmetric_flips(self):
        sent = [0, 1] * 500
        received = list(sent)
        # 10% flips split evenly across both symbol values, so the
        # channel really is symmetric.
        for index in range(0, 1000, 20):
            received[index] ^= 1  # flips a sent 0
        for index in range(7, 1000, 20):
            received[index] ^= 1  # flips a sent 1
        empirical = symbol_capacity(confusion_matrix(sent, received))
        assert empirical == pytest.approx(binary_symmetric_capacity(0.1), abs=0.02)


class TestEffectiveRate:
    def test_scaling(self):
        assert effective_rate_kbps(4400.0, 2, 1.0) == pytest.approx(2200.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            effective_rate_kbps(0.0, 2, 1.0)
        with pytest.raises(ConfigurationError):
            effective_rate_kbps(100.0, 0, 1.0)
        with pytest.raises(ConfigurationError):
            effective_rate_kbps(100.0, 2, -0.1)


class TestSummary:
    def test_summary_shape(self):
        summary = summarize_channel_capacity([0, 8] * 40, [0, 8] * 40, 400.0, 1)
        assert summary["effective_rate_kbps"] == pytest.approx(400.0)
        assert summary["capacity_bits_per_symbol"] == pytest.approx(1.0)

    def test_bit_sequences_wrapper(self):
        assert bit_sequences_capacity([0, 1, 0, 1], [0, 1, 0, 1]) == 1.0
        with pytest.raises(ConfigurationError):
            bit_sequences_capacity([], [])


class TestOnRealChannelRuns:
    def test_wb_channel_capacity_at_400kbps(self):
        from repro.channels.wb import WBChannelConfig, run_wb_channel
        from repro.cpu.noise import SchedulerNoise

        result = run_wb_channel(
            WBChannelConfig(
                message_bits=96,
                seed=8,
                scheduler_noise=SchedulerNoise.disabled(),
                receiver_phase=0.5,
            )
        )
        capacity = bit_sequences_capacity(
            list(result.sent_bits), list(result.received_bits)
        )
        # A clean 400 Kbps run carries essentially its full raw rate.
        assert capacity > 0.9
