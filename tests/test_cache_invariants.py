"""Property-based invariants of the cache hierarchy.

These test whole-system conservation laws under arbitrary operation
sequences — the class of bug unit tests miss (e.g. dirty data silently
dropped during a multi-level eviction cascade would corrupt the channel's
signal in ways that still "look plausible").
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.configs import make_tiny_hierarchy
from repro.mem.address_space import AddressSpace, FrameAllocator

# The tiny hierarchy (4-set/2-way L1, 8-set/4-way L2) is exhausted by a
# handful of lines, maximising eviction traffic per operation.
LINES = [i * 64 for i in range(24)]

operations = st.lists(
    st.tuples(
        st.sampled_from(["load", "store", "flush"]),
        st.integers(min_value=0, max_value=len(LINES) - 1),
    ),
    max_size=80,
)


def run_ops(ops, seed=0):
    hierarchy = make_tiny_hierarchy(rng=random.Random(seed))
    space = AddressSpace(pid=0, allocator=FrameAllocator())
    written = set()
    for op, index in ops:
        address = space.translate(LINES[index])
        if op == "load":
            hierarchy.load(address, owner=0)
        elif op == "store":
            hierarchy.store(address, owner=0)
            written.add(address)
        else:
            hierarchy.flush(address, owner=0)
            written.discard(address)  # flushed data reached memory
    return hierarchy, space, written


class TestStructuralInvariants:
    @given(ops=operations, seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=60, deadline=None)
    def test_no_duplicate_lines_within_a_level(self, ops, seed):
        hierarchy, _, _ = run_ops(ops, seed)
        for level in hierarchy.levels:
            for set_index, cache_set in enumerate(level.sets):
                tags = [line.tag for line in cache_set.lines if line.valid]
                assert len(tags) == len(set(tags)), (
                    f"{level.name} set {set_index} holds a tag twice"
                )

    @given(ops=operations, seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=60, deadline=None)
    def test_lines_reside_in_their_indexed_set(self, ops, seed):
        hierarchy, _, _ = run_ops(ops, seed)
        for level in hierarchy.levels:
            for set_index, cache_set in enumerate(level.sets):
                for line in cache_set.lines:
                    if not line.valid:
                        continue
                    address = level._address_of(line.tag, set_index)
                    assert level.set_index(address) == set_index

    @given(ops=operations, seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=40, deadline=None)
    def test_accessed_line_is_l1_resident_afterwards(self, ops, seed):
        hierarchy, space, _ = run_ops(ops, seed)
        # One more load: afterwards the line must be in L1 (write-allocate,
        # no bypass in the base hierarchy).
        address = space.translate(LINES[0])
        hierarchy.load(address, owner=0)
        assert hierarchy.l1.probe(address)


class TestDirtyDataConservation:
    @given(ops=operations, seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=60, deadline=None)
    def test_written_data_is_cached_dirty_or_reached_memory(self, ops, seed):
        """No silent loss of dirty data.

        Every line ever stored to must either still be dirty somewhere in
        the hierarchy, or memory must have absorbed at least one write.
        (Individual-line tracking through memory would need a functional
        model; the aggregate check still catches dropped write-backs.)
        """
        hierarchy, _, written = run_ops(ops, seed)
        for address in written:
            dirty_somewhere = any(
                level.is_dirty(address) for level in hierarchy.levels
            )
            if not dirty_somewhere:
                assert hierarchy.stats.memory_writes > 0, (
                    f"dirty line {address:#x} vanished without a memory write"
                )

    @given(ops=operations, seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=40, deadline=None)
    def test_flush_leaves_nothing_behind(self, ops, seed):
        hierarchy, space, _ = run_ops(ops, seed)
        address = space.translate(LINES[3])
        hierarchy.store(address, owner=0)
        hierarchy.flush(address, owner=0)
        for level in hierarchy.levels:
            assert not level.probe(address)


class TestLatencyInvariants:
    @given(ops=operations, seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=40, deadline=None)
    def test_latency_ordering_by_hit_level(self, ops, seed):
        """Deeper hits never report lower latency than shallower ones."""
        hierarchy, space, _ = run_ops(ops, seed)
        model = hierarchy.latency
        address = space.translate(LINES[5])
        trace = hierarchy.load(address, owner=0)
        floor = {1: model.l1_hit, 2: model.l2_hit, 99: model.dram}
        assert trace.latency >= floor[trace.hit_level]

    @given(seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=30, deadline=None)
    def test_dirty_penalty_always_observable(self, seed):
        """The channel's physical signal survives arbitrary prior state."""
        hierarchy, space, _ = run_ops([], seed)
        stride = hierarchy.l1.layout.stride_between_conflicts()
        lines = [space.translate(0x40 + i * stride) for i in range(3)]
        # Fill the 2-way set with dirty lines, then load a third line that
        # was previously evicted to L2.
        hierarchy.load(lines[2], owner=0)
        hierarchy.store(lines[0], owner=0)
        hierarchy.store(lines[1], owner=0)  # evicts lines[2] to L2
        trace = hierarchy.load(lines[2], owner=0)
        assert trace.hit_level == 2
        assert trace.l1_victim_dirty
        assert trace.latency >= hierarchy.latency.l2_hit + hierarchy.latency.l1_writeback_penalty
