"""Noise processes and benign workloads."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.cpu.ops import Delay, Load, SpinUntil, Store
from repro.mem.address_space import AddressSpace, FrameAllocator
from repro.noise.models import NoiseConfig, TargetSetNoiseProgram
from repro.noise.workloads import (
    CompilerLikeWorkload,
    PointerChaseWorkload,
    StreamingWorkload,
)


@pytest.fixture
def space():
    return AddressSpace(pid=5, allocator=FrameAllocator())


def drain_ops(program):
    """Run a generator program standalone, answering 0 to every yield."""
    ops = []
    generator = program.run()
    try:
        op = next(generator)
        while True:
            ops.append(op)
            op = generator.send(0)
    except StopIteration:
        return ops


class TestNoiseConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NoiseConfig(mean_interval_cycles=0)
        with pytest.raises(ConfigurationError):
            NoiseConfig(store_fraction=1.5)
        with pytest.raises(ConfigurationError):
            NoiseConfig(distinct_lines=0)
        with pytest.raises(ConfigurationError):
            NoiseConfig(duration_cycles=0)


class TestTargetSetNoise:
    def test_touches_until_duration(self):
        program = TargetSetNoiseProgram(
            lines=[0x1000, 0x2000],
            config=NoiseConfig(
                mean_interval_cycles=1000.0, duration_cycles=50000
            ),
            seed=0,
        )
        ops = drain_ops(program)
        memory_ops = [op for op in ops if isinstance(op, (Load, Store))]
        assert 20 <= len(memory_ops) <= 100  # ~50 expected

    def test_pure_loads_by_default(self):
        program = TargetSetNoiseProgram(
            lines=[0x1000],
            config=NoiseConfig(mean_interval_cycles=500.0, duration_cycles=20000),
        )
        ops = drain_ops(program)
        assert not any(isinstance(op, Store) for op in ops)

    def test_store_fraction(self):
        program = TargetSetNoiseProgram(
            lines=[0x1000],
            config=NoiseConfig(
                mean_interval_cycles=200.0,
                duration_cycles=100000,
                store_fraction=1.0,
            ),
        )
        ops = drain_ops(program)
        memory_ops = [op for op in ops if isinstance(op, (Load, Store))]
        assert memory_ops and all(isinstance(op, Store) for op in memory_ops)

    def test_requires_lines(self):
        with pytest.raises(ConfigurationError):
            TargetSetNoiseProgram(lines=[], config=NoiseConfig())

    def test_spins_between_touches(self):
        program = TargetSetNoiseProgram(
            lines=[0x1000],
            config=NoiseConfig(mean_interval_cycles=1000.0, duration_cycles=20000),
        )
        ops = drain_ops(program)
        assert any(isinstance(op, SpinUntil) for op in ops)


class TestWorkloads:
    def test_streaming_sequential(self, space):
        workload = StreamingWorkload(space=space, accesses=100, seed=0)
        ops = drain_ops(workload)
        loads = [op.address for op in ops if isinstance(op, Load)]
        assert loads == sorted(loads)  # sweeps forward

    def test_streaming_store_mix(self, space):
        workload = StreamingWorkload(
            space=space, accesses=400, store_fraction=0.5, seed=0
        )
        ops = drain_ops(workload)
        stores = sum(isinstance(op, Store) for op in ops)
        assert 120 < stores < 280

    def test_pointer_chase_scatters(self, space):
        workload = PointerChaseWorkload(space=space, accesses=200, seed=0)
        ops = drain_ops(workload)
        addresses = [op.address for op in ops if isinstance(op, (Load, Store))]
        assert len(set(addresses)) > 150  # mostly distinct lines

    def test_compiler_like_phases(self, space):
        workload = CompilerLikeWorkload(space=space, total_accesses=2000, seed=0)
        ops = drain_ops(workload)
        memory_ops = [op for op in ops if isinstance(op, (Load, Store))]
        assert len(memory_ops) == 2000
        assert any(isinstance(op, Delay) for op in ops)

    def test_compiler_touches_all_tiers(self, space):
        workload = CompilerLikeWorkload(space=space, total_accesses=4000, seed=1)
        ops = drain_ops(workload)
        addresses = {op.address for op in ops if isinstance(op, (Load, Store))}
        tiers_touched = sum(
            any(base <= a < base + size for a in addresses)
            for base, size in (
                (workload.hot_base, 16 * 1024),
                (workload.stream_base, 192 * 1024),
                (workload.heap_base, 2 << 20),
            )
        )
        assert tiers_touched == 3

    def test_validation(self, space):
        with pytest.raises(ConfigurationError):
            StreamingWorkload(space=space, accesses=0)
        with pytest.raises(ConfigurationError):
            PointerChaseWorkload(space=space, accesses=0)
        with pytest.raises(ConfigurationError):
            CompilerLikeWorkload(space=space, total_accesses=0)
