"""Whole-process sender models used by the Table 6/7 experiments."""

import pytest

from repro.channels.testbench import ChannelTestbench
from repro.channels.testbench import TestbenchConfig as BenchConfig
from repro.common.errors import ConfigurationError
from repro.cpu.noise import SchedulerNoise
from repro.cpu.perf_counters import PerfReport
from repro.experiments.process_models import (
    InstrumentedBenignProcess,
    InstrumentedLRUSender,
    InstrumentedWBSender,
    make_activity,
)
from repro.mem.sets import build_set_conflicting_lines


def make_bench():
    return ChannelTestbench(
        BenchConfig(seed=0, scheduler_noise=SchedulerNoise.disabled())
    )


def run_sender(sender_cls, **kwargs):
    bench = make_bench()
    space = bench.new_space(pid=0)
    lines = build_set_conflicting_lines(space, bench.l1_layout, 7, 2)
    activity = make_activity(space, seed=0)
    if sender_cls is InstrumentedWBSender:
        sender = InstrumentedWBSender(
            activity=activity,
            lines=lines,
            schedule=kwargs.pop("schedule", [1, 0, 1, 1]),
            period=11000,
            start_time=1_800_000,
        )
    else:
        sender = InstrumentedLRUSender(
            activity=activity,
            line=lines[0],
            message=kwargs.pop("message", [1, 0, 1, 1]),
            period=11000,
            start_time=1_800_000,
        )
    bench.add_thread(0, space, sender, name="sender")
    core = bench.run()
    cycles = max(1.0, core.elapsed_cycles() - 1_800_000)
    return bench, PerfReport.from_stats(bench.hierarchy.stats, 0, cycles)


class TestActivity:
    def test_validation(self):
        bench = make_bench()
        space = bench.new_space(pid=0)
        with pytest.raises(ConfigurationError):
            make_activity(space, hot_accesses_per_period=-1)

    def test_warmup_covers_tiers(self):
        bench = make_bench()
        space = bench.new_space(pid=0)
        activity = make_activity(space, seed=1)
        ops = list(activity.warmup())
        assert len(ops) == activity.hot_lines + activity.warm_lines


class TestInstrumentedWBSender:
    def test_counters_exclude_warmup(self):
        _, report = run_sender(InstrumentedWBSender)
        # Warm-up touches ~6k warm lines; if counted, L1 accesses would be
        # in the thousands with a huge miss count.  The measured window
        # only contains 4 periods of housekeeping (~400 accesses each).
        assert report.l1_accesses < 4 * 500
        assert report.l1_miss_rate < 0.2

    def test_channel_dirty_state_produced(self):
        bench, _ = run_sender(InstrumentedWBSender, schedule=[2, 2])
        assert bench.hierarchy.dirty_in_l1_set(7) >= 1

    def test_line_validation(self):
        bench = make_bench()
        space = bench.new_space(pid=0)
        with pytest.raises(ConfigurationError):
            InstrumentedWBSender(
                activity=make_activity(space),
                lines=[0x0],
                schedule=[5],
                period=1000,
                start_time=0,
            )


class TestInstrumentedLRUSender:
    def test_generates_more_loads_than_wb(self):
        # The structural fact behind Table 7.
        _, wb = run_sender(InstrumentedWBSender)
        _, lru = run_sender(InstrumentedLRUSender)
        assert lru.l1_loads_per_ms > wb.l1_loads_per_ms

    def test_modulation_interval_validated(self):
        bench = make_bench()
        space = bench.new_space(pid=0)
        with pytest.raises(ConfigurationError):
            InstrumentedLRUSender(
                activity=make_activity(space),
                line=0x0,
                message=[1],
                period=1000,
                start_time=0,
                modulation_interval=0,
            )


class TestInstrumentedBenignProcess:
    def run_benign(self, periods=4):
        bench = make_bench()
        space = bench.new_space(pid=0)
        benign = InstrumentedBenignProcess(
            activity=make_activity(space, seed=0),
            periods=periods,
            period=11000,
            start_time=1_800_000,
        )
        bench.add_thread(0, space, benign, name="benign")
        core = bench.run()
        cycles = max(1.0, core.elapsed_cycles() - 1_800_000)
        return PerfReport.from_stats(bench.hierarchy.stats, 0, cycles)

    def test_matches_sender_housekeeping_envelope(self):
        # Same whole-process model as the senders, minus channel traffic:
        # the measured window holds exactly the housekeeping batches.
        report = self.run_benign()
        _, wb = run_sender(InstrumentedWBSender)
        assert report.l1_accesses <= wb.l1_accesses
        assert report.l1_accesses > 0.8 * wb.l1_accesses

    def test_periods_validated(self):
        bench = make_bench()
        space = bench.new_space(pid=0)
        with pytest.raises(ConfigurationError):
            InstrumentedBenignProcess(
                activity=make_activity(space),
                periods=-1,
                period=1000,
                start_time=0,
            )
