"""Bit-identity of the spec-rebased experiments against committed goldens.

The WB-channel experiment family was rebased from imperative bodies onto
``compile_scenario`` + the library specs.  These tests pin the refactor:
each experiment's quick/seed-0 JSON must equal, byte for byte, the output
captured from the pre-refactor implementation (``tests/golden/``).  Any
drift — RNG consumption order, loop nesting, seed formulas, row shaping —
fails here before it can silently change published numbers.
"""

from pathlib import Path

import pytest

from repro.experiments import run_experiment
from repro.scenario.library import available_library_specs

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: The spec-backed experiment family (mirrors repro.scenario.library).
SPEC_BACKED = (
    "fig6",
    "fig7",
    "fig8",
    "extension_l2",
    "fault_tolerance",
    "online_detection",
    "defenses",
    # Added with the coherence layer (no pre-refactor ancestor; the
    # golden pins cross-engine/cross-version determinism from day one).
    "cross_core_wb",
    # Added with the orchestration layer; the golden pins alarm times,
    # the flip event id, and pre/post-flip capacities from day one.
    "closed_loop_defense",
)


def test_every_library_spec_has_a_golden():
    assert sorted(SPEC_BACKED) == sorted(available_library_specs())
    for experiment_id in SPEC_BACKED:
        assert (GOLDEN_DIR / f"{experiment_id}.quick-seed0.json").is_file()


@pytest.mark.parametrize("experiment_id", SPEC_BACKED)
def test_spec_rebased_experiment_matches_golden(experiment_id):
    golden_path = GOLDEN_DIR / f"{experiment_id}.quick-seed0.json"
    golden = golden_path.read_text(encoding="utf-8")
    result = run_experiment(experiment_id, profile="quick", seed=0)
    assert result.to_json(indent=2) + "\n" == golden, (
        f"{experiment_id}: spec-compiled output drifted from the "
        f"pre-refactor golden ({golden_path.name})"
    )
