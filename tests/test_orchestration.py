"""Fleet-wide fusion and closed-loop response: aggregator + responder.

The :class:`FleetAggregator` k-of-n decision and the
:class:`DefenseResponder` flip are pure functions of the observation
sequence — these tests pin the decision rule (window expiry, min_hits,
warmup suppression, latching), the flip semantics on a live hierarchy
(write-through and partition), and the observability plumbing
(stream frames, process counters, the /healthz live registry).
"""

import gc
import random

import pytest

from repro.cache.cache import AllocationPolicy, WritePolicy
from repro.cache.configs import make_xeon_hierarchy
from repro.common.errors import ConfigurationError
from repro.defenses.partitioned import (
    make_partitioned_hierarchy,
    split_ways_evenly,
)
from repro.orchestration.aggregator import AlarmEvent, FleetAggregator
from repro.orchestration.counters import (
    live_snapshots,
    orchestration_counters,
    reset_counters,
)
from repro.orchestration.responder import DEFENSES, DefenseResponder
from repro.telemetry.net import StreamPublisher


@pytest.fixture(autouse=True)
def _clean_counters():
    reset_counters()
    yield
    reset_counters()


def _alarm(time=42):
    return AlarmEvent(
        time=time, sources=("a", "b"), hits=(1, 1), rule="2-of-2"
    )


def _pair_aggregator(**kwargs):
    aggregator = FleetAggregator(k=2, **kwargs)
    aggregator.register_source("a", threshold=1.0)
    aggregator.register_source("b", threshold=1.0)
    return aggregator


class TestAlarmEvent:
    def test_to_dict(self):
        assert _alarm().to_dict() == {
            "time": 42,
            "sources": ["a", "b"],
            "hits": [1, 1],
            "rule": "2-of-2",
        }


class TestFleetAggregatorValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"window": 0},
            {"min_hits": 0},
            {"warmup": -1},
        ],
    )
    def test_constructor_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            FleetAggregator(**kwargs)

    def test_duplicate_source_rejected(self):
        aggregator = FleetAggregator()
        aggregator.register_source("a", threshold=1.0)
        with pytest.raises(ConfigurationError):
            aggregator.register_source("a", threshold=2.0)

    def test_unknown_source_rejected(self):
        aggregator = FleetAggregator()
        with pytest.raises(ConfigurationError):
            aggregator.observe("ghost", 1, 5.0)
        with pytest.raises(ConfigurationError):
            aggregator.sink("ghost")


class TestFusionRule:
    def test_k_of_n_fires_on_the_completing_observation(self):
        aggregator = _pair_aggregator(window=100)
        assert aggregator.observe("a", 10, 2.0) is None  # 1 of 2
        alarm = aggregator.observe("b", 20, 2.0)
        assert alarm is not None
        assert alarm.time == 20
        assert alarm.sources == ("a", "b")
        assert alarm.hits == (1, 1)
        assert aggregator.fired
        assert aggregator.alarms == [alarm]

    def test_under_threshold_scores_never_hit(self):
        aggregator = _pair_aggregator(window=100)
        for clock in range(10, 100, 10):
            assert aggregator.observe("a", clock, 0.5) is None
            assert aggregator.observe("b", clock, 0.5) is None
        assert not aggregator.fired

    def test_window_expires_stale_hits(self):
        aggregator = _pair_aggregator(window=10)
        aggregator.observe("a", 10, 2.0)
        # b's hit arrives after a's fell out of the trailing window.
        assert aggregator.observe("b", 25, 2.0) is None
        assert not aggregator.fired

    def test_min_hits_requires_repeated_evidence(self):
        aggregator = _pair_aggregator(window=100, min_hits=2)
        aggregator.observe("a", 1, 2.0)
        assert aggregator.observe("b", 2, 2.0) is None  # 1 hit each
        aggregator.observe("a", 3, 2.0)
        alarm = aggregator.observe("b", 4, 2.0)  # now 2 hits each
        assert alarm is not None
        assert alarm.hits == (2, 2)

    def test_warmup_suppresses_startup_transient_scores(self):
        aggregator = _pair_aggregator(window=100, warmup=50)
        aggregator.observe("a", 10, 99.0)
        assert aggregator.observe("b", 10, 99.0) is None
        aggregator.observe("a", 60, 2.0)
        alarm = aggregator.observe("b", 60, 2.0)
        assert alarm is not None
        assert alarm.hits == (1, 1)  # the warmup outliers never counted

    def test_latch_makes_the_first_alarm_final(self):
        aggregator = _pair_aggregator(window=100)
        aggregator.observe("a", 10, 2.0)
        assert aggregator.observe("b", 10, 2.0) is not None
        assert aggregator.observe("a", 20, 2.0) is None
        assert aggregator.observe("b", 20, 2.0) is None
        assert len(aggregator.alarms) == 1

    def test_unlatched_aggregator_keeps_firing(self):
        aggregator = _pair_aggregator(window=100, latch=False)
        aggregator.observe("a", 10, 2.0)
        aggregator.observe("b", 10, 2.0)
        aggregator.observe("a", 20, 2.0)
        aggregator.observe("b", 20, 2.0)
        assert len(aggregator.alarms) > 1

    def test_sink_binds_a_source_to_the_score_hook_shape(self):
        aggregator = _pair_aggregator(window=100)
        sink_a = aggregator.sink("a")
        sink_b = aggregator.sink("b")
        sink_a(10, 2.0)
        sink_b(11, 2.0)
        assert aggregator.fired

    def test_on_alarm_callbacks_see_the_alarm(self):
        seen = []
        aggregator = _pair_aggregator(window=100)
        aggregator.on_alarm.append(seen.append)
        aggregator.observe("a", 10, 2.0)
        alarm = aggregator.observe("b", 10, 2.0)
        assert seen == [alarm]

    def test_alarms_increment_the_process_counter(self):
        aggregator = _pair_aggregator(window=100)
        aggregator.observe("a", 10, 2.0)
        aggregator.observe("b", 10, 2.0)
        assert orchestration_counters()["alarms_total"] == 1


class TestAggregatorStreaming:
    def test_score_and_alarm_frames_carry_the_label(self):
        publisher = StreamPublisher()
        client = publisher.attach()
        aggregator = FleetAggregator(
            k=2, window=100, publisher=publisher, source_label="lru"
        )
        aggregator.register_source("a", threshold=1.0)
        aggregator.register_source("b", threshold=1.0)
        aggregator.observe("a", 10, 2.0)
        aggregator.observe("b", 10, 2.5)
        frames = []
        while True:
            frame = client.get(timeout=0.0)
            if frame is None:
                break
            frames.append(frame)
        assert [frame.type for frame in frames] == ["score", "score", "alarm"]
        score = frames[0].payload
        assert score == {
            "source": "a",
            "clock": 10,
            "score": 2.0,
            "threshold": 1.0,
            "label": "lru",
        }
        alarm = frames[2].payload
        assert alarm["sources"] == ["a", "b"]
        assert alarm["label"] == "lru"

    def test_snapshot_reports_rule_and_observations(self):
        aggregator = _pair_aggregator(window=100, min_hits=1)
        aggregator.observe("a", 1, 0.0)
        snapshot = aggregator.snapshot()
        assert snapshot["sources"] == 2
        assert snapshot["observed"] == {"a": 1, "b": 0}
        assert snapshot["alarms"] == 0
        assert snapshot["rule"] == "2-of-2/min_hits=1/window=100"


class TestDefenseResponderValidation:
    def test_defense_must_be_known(self, xeon):
        with pytest.raises(ConfigurationError):
            DefenseResponder(xeon, defense="unplug")
        assert DEFENSES == ("write_through", "partition")

    def test_num_domains_must_be_positive(self, xeon):
        with pytest.raises(ConfigurationError):
            DefenseResponder(xeon, num_domains=0)

    def test_partition_needs_a_partition_capable_l1(self, xeon):
        with pytest.raises(ConfigurationError):
            DefenseResponder(xeon, defense="partition")


class TestDefenseResponderFlip:
    def test_write_through_flip_stops_stores_dirtying(self):
        hierarchy = make_xeon_hierarchy(rng=random.Random(0))
        responder = DefenseResponder(hierarchy, defense="write_through").arm()
        address = 0x4000
        hierarchy.access(address, True, 0)
        assert hierarchy.l1.is_dirty(address)  # write-back before the flip
        responder.on_alarm(_alarm(time=42))
        assert hierarchy.l1.write_policy is WritePolicy.WRITE_THROUGH
        assert (
            hierarchy.l1.allocation_policy is AllocationPolicy.NO_WRITE_ALLOCATE
        )
        other = 0x8000
        hierarchy.access(other, True, 0)
        assert not hierarchy.l1.is_dirty(other)  # nothing left to modulate
        assert responder.fired
        assert responder.flip_time == 42
        assert orchestration_counters()["defense_flips_total"] == 1

    def test_partition_flip_installs_even_way_masks(self):
        hierarchy = make_partitioned_hierarchy(rng=random.Random(0))
        hierarchy.l1.partitions = {}  # start unpartitioned, flip installs
        responder = DefenseResponder(hierarchy, defense="partition").arm()
        responder.on_alarm(_alarm())
        assert hierarchy.l1.partitions == split_ways_evenly(
            hierarchy.l1.associativity, 2
        )

    def test_disarmed_responder_only_observes(self, xeon):
        responder = DefenseResponder(xeon)
        responder.on_alarm(_alarm())
        assert not responder.fired
        assert responder.flip_time is None
        assert xeon.l1.write_policy is WritePolicy.WRITE_BACK
        assert orchestration_counters()["defense_flips_total"] == 0

    def test_responder_fires_exactly_once(self, xeon):
        responder = DefenseResponder(xeon).arm()
        responder.on_alarm(_alarm(time=42))
        responder.on_alarm(_alarm(time=99))
        assert responder.flip_time == 42
        assert orchestration_counters()["defense_flips_total"] == 1

    def test_flip_frame_pins_the_boundary_on_the_wire(self, xeon):
        publisher = StreamPublisher()
        client = publisher.attach()
        responder = DefenseResponder(
            xeon, publisher=publisher, source_label="lru"
        ).arm()
        responder.on_alarm(_alarm(time=60))
        frame = client.get(timeout=0.0)
        assert frame.type == "flip"
        assert frame.payload == {
            "defense": "write_through", "time": 60, "label": "lru"
        }
        assert responder.flip_event_id == frame.event_id

    def test_snapshot_shape(self, xeon):
        responder = DefenseResponder(xeon).arm()
        responder.on_alarm(_alarm(time=7))
        assert responder.snapshot() == {
            "defense": "write_through",
            "armed": True,
            "fired": True,
            "flip_time": 7,
            "flip_event_id": None,
        }


class TestLiveRegistry:
    def test_components_register_weakly_for_healthz(self, xeon):
        aggregator = _pair_aggregator(window=100)
        responder = DefenseResponder(xeon).arm()
        live = live_snapshots()
        assert aggregator.snapshot() in live["aggregators"]
        assert responder.snapshot() in live["responders"]
        marker = responder.snapshot()
        del aggregator, responder
        gc.collect()
        assert marker not in live_snapshots()["responders"]
