"""Property tests: batched policy updates equal independent scalar updates.

For every lifted policy, a :class:`~repro.replacement.batch_state
.BatchPolicyState` holding B replicas x S sets must behave exactly like
B*S independent :mod:`repro.replacement.fast_state` machines fed the same
operation sequence: identical victim choices at every draw, identical
canonical metadata snapshots at every checkpoint.  This is the unit-level
half of the batch parity contract — the engine-level half lives in
``tests/test_engine_parity.py``.
"""

import random

import numpy as np
import pytest

from repro.replacement.batch_state import (
    is_lifted,
    lifted_policies,
    make_batch_state,
    scalar_snapshot,
)
from repro.replacement.fast_state import fast_state_for
from repro.replacement.registry import available_policies, make_policy_factory

REPLICAS = 5
SETS = 4
WAYS = 4
ROUNDS = 400

_OPS = ("fill", "hit", "invalidate", "victim")


def _build_pair(policy_name, seed):
    """One batch state plus a mirrored grid of scalar fast states."""
    rng = random.Random(seed)
    seed_grid = [
        [rng.getrandbits(32) for _ in range(SETS)] for _ in range(REPLICAS)
    ]
    batch = make_batch_state(
        policy_name, REPLICAS, SETS, WAYS, seed_grid=seed_grid
    )
    factory = make_policy_factory(policy_name)
    scalars = [
        [
            fast_state_for(factory(WAYS, random.Random(seed_grid[b][s])))
            for s in range(SETS)
        ]
        for b in range(REPLICAS)
    ]
    return batch, scalars


def _assert_snapshots_equal(policy_name, batch, scalars, context):
    for b in range(REPLICAS):
        for s in range(SETS):
            assert batch.snapshot(b, s) == scalar_snapshot(scalars[b][s]), (
                f"{policy_name}: replica {b} set {s} diverged after {context}"
            )


@pytest.mark.parametrize("policy_name", lifted_policies())
def test_batched_update_equals_scalar_updates(policy_name):
    """Seeded fuzz: one random (set, op, way) per replica per round."""
    batch, scalars = _build_pair(policy_name, seed=20220415)
    driver = random.Random(99)
    for round_index in range(ROUNDS):
        sets, ops, ways = [], [], []
        for _ in range(REPLICAS):
            sets.append(driver.randrange(SETS))
            ops.append(driver.choice(_OPS))
            ways.append(driver.randrange(WAYS))
        rows_arr = np.arange(REPLICAS, dtype=np.int64)
        sets_arr = np.array(sets, dtype=np.int64)
        ways_arr = np.array(ways, dtype=np.int64)
        # Group the round by op so each batched call still selects at
        # most one set per replica (the documented call convention).
        for op in _OPS:
            mask = np.array([o == op for o in ops])
            if not mask.any():
                continue
            rows_op = rows_arr[mask]
            sets_op = sets_arr[mask]
            ways_op = ways_arr[mask]
            if op == "victim":
                got = batch.victim(rows_op, sets_op)
                expected = [
                    scalars[b][s].victim()
                    for b, s in zip(rows_op.tolist(), sets_op.tolist())
                ]
                assert got.tolist() == expected, (
                    f"{policy_name}: victim mismatch in round {round_index}"
                )
            else:
                getattr(batch, f"on_{op}")(rows_op, sets_op, ways_op)
                for b, s, w in zip(
                    rows_op.tolist(), sets_op.tolist(), ways_op.tolist()
                ):
                    getattr(scalars[b][s], f"on_{op}")(w)
        if round_index % 50 == 0:
            _assert_snapshots_equal(
                policy_name, batch, scalars, f"round {round_index}"
            )
    _assert_snapshots_equal(policy_name, batch, scalars, "the final round")


@pytest.mark.parametrize("policy_name", lifted_policies())
def test_scatter_update_hits_only_selected_sets(policy_name):
    """A batched call must not disturb unselected (replica, set) pairs."""
    batch, scalars = _build_pair(policy_name, seed=7)
    before = {
        (b, s): batch.snapshot(b, s)
        for b in range(REPLICAS)
        for s in range(SETS)
    }
    rows = np.array([1, 3], dtype=np.int64)
    sets = np.array([2, 0], dtype=np.int64)
    ways = np.array([1, 3], dtype=np.int64)
    batch.on_fill(rows, sets, ways)
    batch.victim(rows, sets)
    touched = {(1, 2), (3, 0)}
    for b in range(REPLICAS):
        for s in range(SETS):
            if (b, s) not in touched:
                assert batch.snapshot(b, s) == before[(b, s)], (
                    f"{policy_name}: untouched ({b}, {s}) changed"
                )


def test_lifted_set_is_the_documented_one():
    """The lifted subset is stable and every name exists in the registry."""
    assert lifted_policies() == [
        "bit-plru",
        "fifo",
        "lru",
        "random",
        "srrip",
        "tree-plru",
    ]
    assert set(lifted_policies()) <= set(available_policies())


def test_tree_plru_lift_requires_power_of_two_ways():
    assert is_lifted("tree-plru", 8)
    assert is_lifted("tree-plru", 16)
    assert not is_lifted("tree-plru", 6)
    assert not is_lifted("tree-plru", 32)
    assert not is_lifted("nru", 8)
    assert is_lifted("lru", 6)


def test_unlifted_policy_has_no_batch_state():
    with pytest.raises(ValueError):
        make_batch_state("nru", 2, 2, 4)
    with pytest.raises(ValueError):
        make_batch_state("tree-plru", 2, 2, 6)
