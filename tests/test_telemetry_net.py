"""Network-facing telemetry: frames, bounded clients, buffered delivery.

Covers :mod:`repro.telemetry.net` (the stream publisher the service and
the closed-loop scenario share) and the :class:`BufferedSubscriber`
hardening in :mod:`repro.telemetry.bus` — including the regression that
a subscriber far slower than the event rate can never stall
``run_trace``.
"""

import json
import random
import time

import pytest

from repro.common.errors import ConfigurationError
from repro.engine import run_trace
from repro.engine.workloads import random_workload
from repro.telemetry.bus import (
    OVERFLOW_POLICIES,
    BufferedSubscriber,
    TelemetryBus,
)
from repro.telemetry.events import CacheEvent, EventKind
from repro.telemetry.net import (
    StreamClient,
    StreamFrame,
    StreamPublisher,
    active_publisher,
    bind_publisher,
    ndjson_line,
    publish_ambient,
    sse_block,
)
from repro.telemetry.subscribers import BusProfiler


def _drain(client, limit=1000):
    """Everything currently queued on a client (non-blocking)."""
    frames = []
    for _ in range(limit):
        frame = client.get(timeout=0.0)
        if frame is None:
            break
        frames.append(frame)
    return frames


class TestFrames:
    def test_to_dict_merges_payload_after_id_and_type(self):
        frame = StreamFrame(7, "score", {"source": "m", "score": 1.5})
        assert frame.to_dict() == {
            "id": 7, "type": "score", "source": "m", "score": 1.5
        }

    def test_ndjson_line_is_one_sorted_json_line(self):
        line = ndjson_line(StreamFrame(3, "mark", {"label": "epoch"}))
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        decoded = json.loads(line)
        assert decoded == {"id": 3, "type": "mark", "label": "epoch"}
        assert line == (
            json.dumps(decoded, sort_keys=True) + "\n"
        ).encode("utf-8")

    def test_sse_block_carries_cursor_event_and_data(self):
        block = sse_block(StreamFrame(12, "alarm", {"time": 60}))
        text = block.decode("utf-8")
        lines = text.split("\n")
        assert lines[0] == "id: 12"
        assert lines[1] == "event: alarm"
        assert lines[2].startswith("data: ")
        assert json.loads(lines[2][len("data: "):])["time"] == 60
        assert text.endswith("\n\n")


class TestStreamClient:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            StreamClient(capacity=0)

    def test_overflow_drops_oldest_and_counts(self):
        client = StreamClient(capacity=2)
        for event_id in (1, 2, 3):
            client._offer(StreamFrame(event_id, "mark", {}))
        assert client.dropped == 1
        assert [frame.event_id for frame in _drain(client)] == [2, 3]

    def test_accepts_predicate_filters_without_counting_drops(self):
        client = StreamClient(
            capacity=8, accepts=lambda frame: frame.type == "score"
        )
        client._offer(StreamFrame(1, "cache_event", {}))
        client._offer(StreamFrame(2, "score", {}))
        assert client.dropped == 0
        assert [frame.event_id for frame in _drain(client)] == [2]

    def test_close_wakes_a_blocked_get_and_refuses_new_frames(self):
        client = StreamClient(capacity=4)
        client.close()
        assert client.get(timeout=0.0) is None
        client._offer(StreamFrame(1, "mark", {}))
        assert client.get(timeout=0.0) is None


class TestStreamPublisher:
    def test_ring_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            StreamPublisher(ring_capacity=0)

    def test_ids_are_monotonic_in_publish_order(self):
        publisher = StreamPublisher()
        ids = [
            publisher.publish("mark", {"n": n}).event_id for n in range(5)
        ]
        assert ids == [1, 2, 3, 4, 5]
        assert publisher.last_event_id == 5

    def test_attach_replays_ring_past_last_event_id(self):
        publisher = StreamPublisher()
        for n in range(5):
            publisher.publish("mark", {"n": n})
        client = publisher.attach(last_event_id=2)
        assert [frame.event_id for frame in _drain(client)] == [3, 4, 5]

    def test_replay_gap_when_the_ring_evicted_frames(self):
        publisher = StreamPublisher(ring_capacity=3)
        for n in range(5):
            publisher.publish("mark", {"n": n})
        client = publisher.attach(last_event_id=0)
        # Frames 1-2 fell off the ring: replay starts at the oldest
        # retained frame and the gap is visible as non-contiguous ids.
        assert [frame.event_id for frame in _drain(client)] == [3, 4, 5]

    def test_detach_is_idempotent_and_updates_client_count(self):
        publisher = StreamPublisher()
        client = publisher.attach()
        assert publisher.client_count == 1
        publisher.detach(client)
        publisher.detach(client)
        assert publisher.client_count == 0

    def test_slow_client_drops_are_counted_and_mirrored(self):
        profiler = BusProfiler()
        publisher = StreamPublisher(profiler=profiler)
        publisher.attach(capacity=2)
        for n in range(10):
            publisher.publish("mark", {"n": n})
        assert publisher.dropped_total == 8
        assert profiler.dropped_events == 8
        assert publisher.snapshot()["dropped_total"] == 8

    def test_snapshot_shape(self):
        publisher = StreamPublisher()
        publisher.publish("mark", {})
        snapshot = publisher.snapshot()
        assert snapshot == {
            "clients": 0,
            "last_event_id": 1,
            "dropped_total": 0,
            "ring_size": 1,
        }

    def test_mirror_forwards_frames_under_its_own_ids(self):
        hub = StreamPublisher()
        hub.publish("job", {})  # the hub has its own history
        local = StreamPublisher(mirror=hub)
        frame = local.publish("score", {"source": "m"})
        assert frame.event_id == 1  # run-local sequence stays pure
        mirrored = hub.attach(last_event_id=0)
        frames = _drain(mirrored)
        assert [f.event_id for f in frames] == [1, 2]
        assert frames[1].type == "score"
        assert frames[1].payload == {"source": "m"}

    def test_bus_subscriber_surface_maps_events_to_frames(self):
        publisher = StreamPublisher()
        client = publisher.attach()
        publisher.on_event(
            CacheEvent(1, EventKind.HIT, 1, 0, 0, 0x40, False, False)
        )
        publisher.on_event(
            CacheEvent(2, EventKind.FAULT, 1, 0, 0, 0x80, False, False)
        )
        publisher.on_mark("epoch")
        publisher.finish()
        types = [frame.type for frame in _drain(client)]
        assert types == ["cache_event", "fault", "mark", "finish"]


class TestAmbientBinding:
    def test_bind_returns_previous_and_restores(self):
        first = StreamPublisher()
        second = StreamPublisher()
        assert active_publisher() is None
        previous = bind_publisher(first)
        try:
            assert previous is None
            assert active_publisher() is first
            inner = bind_publisher(second)
            assert inner is first
            bind_publisher(inner)
            assert active_publisher() is first
        finally:
            bind_publisher(None)
        assert active_publisher() is None

    def test_publish_ambient_is_a_noop_when_unbound(self):
        publish_ambient("progress", {"stage": "nowhere"})  # must not raise

    def test_publish_ambient_reaches_the_bound_publisher(self):
        publisher = StreamPublisher()
        client = publisher.attach()
        bind_publisher(publisher)
        try:
            publish_ambient("progress", {"stage": "sweep_point"})
        finally:
            bind_publisher(None)
        frames = _drain(client)
        assert [frame.type for frame in frames] == ["progress"]
        assert frames[0].payload["stage"] == "sweep_point"


class _Recording:
    """Inner subscriber capturing the delivered sequence."""

    def __init__(self, delay=0.0, explode_after=None):
        self.delay = delay
        self.explode_after = explode_after
        self.items = []
        self.finished = False

    def on_event(self, event):
        if self.delay:
            time.sleep(self.delay)
        if (
            self.explode_after is not None
            and len(self.items) >= self.explode_after
        ):
            raise RuntimeError("subscriber exploded")
        self.items.append(("event", event.time))

    def on_mark(self, label):
        self.items.append(("mark", label))

    def finish(self):
        self.finished = True


def _event(time_):
    return CacheEvent(time_, EventKind.HIT, 1, 0, 0, 0x40, False, False)


class TestBufferedSubscriber:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BufferedSubscriber(_Recording(), capacity=0)
        with pytest.raises(ConfigurationError):
            BufferedSubscriber(_Recording(), overflow="teleport")
        assert set(OVERFLOW_POLICIES) == {
            "drop_oldest", "drop_newest", "block"
        }

    def test_preserves_order_and_flushes_on_finish(self):
        inner = _Recording()
        buffered = BufferedSubscriber(inner)
        buffered.on_event(_event(1))
        buffered.on_mark("epoch")
        buffered.on_event(_event(2))
        buffered.finish()
        assert inner.items == [("event", 1), ("mark", "epoch"), ("event", 2)]
        assert inner.finished
        assert buffered.dropped_events == 0

    def test_drop_oldest_keeps_the_recent_tail(self):
        inner = _Recording(delay=0.05)
        buffered = BufferedSubscriber(inner, capacity=2)
        for time_ in range(1, 21):
            buffered.on_event(_event(time_))
        buffered.finish()
        assert buffered.dropped_events > 0
        assert inner.items[-1] == ("event", 20)

    def test_drop_newest_keeps_history(self):
        inner = _Recording(delay=0.05)
        buffered = BufferedSubscriber(inner, capacity=2, overflow="drop_newest")
        for time_ in range(1, 21):
            buffered.on_event(_event(time_))
        buffered.finish()
        assert buffered.dropped_events > 0
        assert inner.items[0] == ("event", 1)

    def test_drops_mirror_into_a_profiler(self):
        profiler = BusProfiler()
        buffered = BufferedSubscriber(
            _Recording(delay=0.05), capacity=1, profiler=profiler
        )
        for time_ in range(1, 11):
            buffered.on_event(_event(time_))
        buffered.finish()
        assert buffered.dropped_events == profiler.dropped_events > 0
        assert profiler.summary()["dropped_events"] == profiler.dropped_events

    def test_inner_error_is_captured_not_propagated(self):
        inner = _Recording(explode_after=2)
        buffered = BufferedSubscriber(inner, capacity=8)
        for time_ in range(1, 6):
            buffered.on_event(_event(time_))  # producer must stay unharmed
        buffered.finish()
        assert isinstance(buffered.error, RuntimeError)
        assert len(inner.items) == 2


class TestSlowSubscriberCannotStallTheEngine:
    """The hardening regression: a consumer ~10x slower than the event
    rate, wrapped in a BufferedSubscriber, must not block ``run_trace``;
    the loss is surfaced on the profiler instead."""

    def test_run_trace_outpaces_a_sleeping_subscriber(self, xeon):
        num_accesses = 3000
        slow = _Recording(delay=0.002)  # blocking delivery would need >= 6s
        profiler = BusProfiler()
        buffered = BufferedSubscriber(slow, capacity=64, profiler=profiler)
        bus = xeon.attach_telemetry(TelemetryBus())
        bus.subscribe(profiler)
        bus.subscribe(buffered)
        trace = list(random_workload(num_accesses, seed=3))
        try:
            started = time.monotonic()
            result = run_trace(xeon, trace, owner=0)
            elapsed = time.monotonic() - started
        finally:
            bus.close()
            xeon.detach_telemetry()
        assert len(result.latencies) == num_accesses
        assert elapsed < 2.0, (
            f"run_trace took {elapsed:.2f}s behind a slow subscriber — "
            "the buffer is no longer decoupling the hot loop"
        )
        assert buffered.dropped_events > 0
        assert profiler.dropped_events == buffered.dropped_events
        assert profiler.summary()["dropped_events"] > 0
