"""Telemetry: bus, events, subscribers, session plumbing."""

import json
import random

import pytest

from repro.cache.cache import WritePolicy
from repro.cache.configs import make_xeon_hierarchy
from repro.cache.stats import ALL_OWNERS
from repro.engine import random_workload, run_trace
from repro.telemetry import (
    AGGREGATE_OWNER,
    BusProfiler,
    CacheEvent,
    EventKind,
    TelemetryBus,
    TelemetryConfig,
    TelemetrySession,
    TraceRecorder,
    WindowedCounters,
    active_session,
    configure,
    default_config,
    session_bus,
    telemetry_session,
)


def make_event(time=0, kind=EventKind.HIT, level=1, owner=0, **overrides):
    fields = dict(
        time=time,
        kind=kind,
        level=level,
        set_index=overrides.pop("set_index", 0),
        owner=owner,
        address=overrides.pop("address", 0x1000),
        write=overrides.pop("write", False),
        dirty=overrides.pop("dirty", False),
    )
    assert not overrides, overrides
    return CacheEvent(**fields)


class RecordingSubscriber:
    def __init__(self):
        self.events = []
        self.marks = []
        self.finished = 0

    def on_event(self, event):
        self.events.append(event)

    def on_mark(self, label):
        self.marks.append(label)

    def finish(self):
        self.finished += 1


class TestEvents:
    def test_aggregate_owner_matches_stats_sentinel(self):
        # events.py re-declares the sentinel to stay an import leaf.
        assert AGGREGATE_OWNER == ALL_OWNERS

    def test_to_dict_renders_kind_by_name(self):
        event = make_event(kind=EventKind.WRITEBACK, dirty=True)
        as_dict = event.to_dict()
        assert as_dict["kind"] == "writeback"
        assert as_dict["dirty"] is True
        assert json.dumps(as_dict)  # JSONL-exportable

    def test_tuple_equality(self):
        assert make_event() == make_event()
        assert make_event() != make_event(time=1)


class TestBus:
    def test_emit_fans_out_in_subscription_order(self):
        bus = TelemetryBus()
        first, second = RecordingSubscriber(), RecordingSubscriber()
        bus.subscribe(first)
        bus.subscribe(second)
        event = make_event()
        bus.emit(event)
        assert first.events == [event]
        assert second.events == [event]

    def test_unsubscribe_stops_delivery(self):
        bus = TelemetryBus()
        subscriber = RecordingSubscriber()
        bus.subscribe(subscriber)
        bus.unsubscribe(subscriber)
        bus.emit(make_event())
        assert subscriber.events == []
        bus.unsubscribe(subscriber)  # no-op, not an error

    def test_tick_advances_logical_clock(self):
        bus = TelemetryBus()
        assert bus.tick() == 1
        assert bus.tick() == 2
        assert bus.time == 2

    def test_mark_respects_enabled(self):
        bus = TelemetryBus()
        subscriber = RecordingSubscriber()
        bus.subscribe(subscriber)
        bus.mark("epoch")
        bus.disable()
        bus.mark("ignored")
        assert subscriber.marks == ["epoch"]

    def test_close_finishes_subscribers(self):
        bus = TelemetryBus()
        subscriber = RecordingSubscriber()
        bus.subscribe(subscriber)
        bus.close()
        assert subscriber.finished == 1


class TestHierarchyIntegration:
    def build(self, **kwargs):
        hierarchy = make_xeon_hierarchy(rng=random.Random(0), **kwargs)
        recorder = TraceRecorder(capacity=None)
        hierarchy.attach_telemetry(TelemetryBus()).subscribe(recorder)
        return hierarchy, recorder

    def test_no_bus_by_default(self):
        hierarchy = make_xeon_hierarchy(rng=random.Random(0))
        assert hierarchy.telemetry is None
        assert not hierarchy.telemetry_enabled

    def test_cold_miss_walks_all_levels(self):
        hierarchy, recorder = self.build()
        hierarchy.access(0x4000, False, owner=0)
        kinds = [(e.kind, e.level) for e in recorder.events]
        assert kinds == [
            (EventKind.MISS, 1),
            (EventKind.MISS, 2),
            (EventKind.MISS, 3),
        ]
        assert all(e.time == 1 for e in recorder.events)

    def test_hit_after_fill(self):
        hierarchy, recorder = self.build()
        hierarchy.access(0x4000, False, owner=0)
        recorder.clear()
        hierarchy.access(0x4000, True, owner=0)
        (event,) = recorder.events
        assert event.kind == EventKind.HIT
        assert event.level == 1
        assert event.write is True
        assert event.dirty is False  # dirty state *before* this store lands

    def test_dirty_hit_observed(self):
        hierarchy, recorder = self.build()
        hierarchy.access(0x4000, True, owner=0)
        recorder.clear()
        hierarchy.access(0x4000, False, owner=0)
        (event,) = recorder.events
        assert event.kind == EventKind.HIT
        assert event.dirty is True

    def test_flush_emits_per_resident_level(self):
        hierarchy, recorder = self.build()
        hierarchy.access(0x4000, True, owner=0)
        recorder.clear()
        hierarchy.flush(0x4000, owner=0)
        flushes = [e for e in recorder.events if e.kind == EventKind.FLUSH]
        writebacks = [
            e for e in recorder.events if e.kind == EventKind.WRITEBACK
        ]
        assert len(flushes) == len(hierarchy.levels)
        assert flushes[0].dirty is True  # the L1 copy was dirty
        assert writebacks, "flushing a dirty line must record a write-back"

    def test_event_counts_match_stats(self):
        hierarchy, recorder = self.build()
        trace = list(random_workload(num_accesses=3_000, seed=3))
        run_trace(hierarchy, trace, owner=0)
        events = recorder.events
        snapshot = hierarchy.stats.snapshot()
        for level in (1, 2, 3):
            level_events = [
                e
                for e in events
                if e.level == level
                and e.kind in (EventKind.HIT, EventKind.MISS)
            ]
            misses = [e for e in level_events if e.kind == EventKind.MISS]
            assert len(level_events) == snapshot[f"L{level}"]["accesses"]
            assert len(misses) == snapshot[f"L{level}"]["misses"]
        writebacks_l1 = [
            e
            for e in events
            if e.kind == EventKind.WRITEBACK and e.level == 1
        ]
        assert len(writebacks_l1) == snapshot["L1"]["writebacks"]

    def test_telemetry_does_not_change_results(self):
        trace = list(random_workload(num_accesses=3_000, seed=9))
        plain = make_xeon_hierarchy(rng=random.Random(0))
        observed, _ = self.build()
        result_plain = run_trace(plain, trace, owner=0)
        result_observed = run_trace(observed, trace, owner=0)
        assert result_plain.hit_levels == result_observed.hit_levels
        assert result_plain.latencies == result_observed.latencies
        assert plain.stats.snapshot() == observed.stats.snapshot()

    def test_detach_stops_emission(self):
        hierarchy, recorder = self.build()
        hierarchy.detach_telemetry()
        hierarchy.access(0x4000, False, owner=0)
        assert recorder.events == []
        assert not hierarchy.telemetry_enabled

    def test_write_through_l1_emits_consistently(self):
        hierarchy, recorder = self.build(
            l1_write_policy=WritePolicy.WRITE_THROUGH
        )
        hierarchy.access(0x4000, True, owner=0)
        hierarchy.access(0x4000, True, owner=0)
        assert any(e.kind == EventKind.HIT for e in recorder.events)


class TestWindowedCounters:
    def feed(self, counters, specs):
        """specs: (time, kind, level, owner) tuples."""
        for time, kind, level, owner in specs:
            counters.on_event(
                make_event(time=time, kind=kind, level=level, owner=owner)
            )

    def test_windows_split_on_logical_time(self):
        counters = WindowedCounters(window=4)
        self.feed(
            counters,
            [(t, EventKind.MISS if t % 2 else EventKind.HIT, 1, 0)
             for t in range(1, 9)],
        )
        counters.finish()
        assert len(counters.windows) == 2
        assert counters.series("accesses", level=1, owner=0) == [4, 4]
        assert counters.series("misses", level=1, owner=0) == [2, 2]

    def test_gap_windows_are_materialised(self):
        counters = WindowedCounters(window=2)
        self.feed(counters, [(0, EventKind.HIT, 1, 0), (9, EventKind.HIT, 1, 0)])
        counters.finish()
        assert counters.series("accesses", level=1, owner=0) == [1, 0, 0, 0, 1]

    def test_aggregate_owner_view(self):
        counters = WindowedCounters(window=8)
        self.feed(
            counters,
            [(0, EventKind.HIT, 1, 0), (1, EventKind.MISS, 1, 1)],
        )
        counters.finish()
        assert counters.totals(1).accesses == 2  # owner=None -> aggregate
        assert counters.totals(1, owner=0).accesses == 1
        assert counters.totals(1, owner=1).misses == 1

    def test_mark_restarts_epoch(self):
        counters = WindowedCounters(window=4)
        self.feed(counters, [(t, EventKind.HIT, 1, 0) for t in range(6)])
        counters.on_mark("reset-stats")
        self.feed(counters, [(100, EventKind.MISS, 1, 0)])
        counters.finish()
        assert counters.series("misses", level=1, owner=0) == [1]

    def test_miss_profile_bridges_to_detection(self):
        counters = WindowedCounters(window=16)
        self.feed(
            counters,
            [(0, EventKind.MISS, 1, 0), (1, EventKind.HIT, 1, 0)]
            + [(2, EventKind.HIT, 2, 0)],
        )
        counters.finish()
        profile = counters.miss_profile()
        assert profile["L1D"] == pytest.approx(0.5)
        assert profile["L2"] == 0.0
        assert profile["LLC"] == 0.0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowedCounters(window=0)


class TestTraceRecorder:
    def test_ring_buffer_drops_oldest(self):
        recorder = TraceRecorder(capacity=2)
        for t in range(5):
            recorder.on_event(make_event(time=t))
        assert [e.time for e in recorder.events] == [3, 4]
        assert recorder.total_events == 5
        assert recorder.dropped == 3

    def test_jsonl_round_trip(self, tmp_path):
        recorder = TraceRecorder(capacity=None)
        recorder.on_event(make_event(time=1, kind=EventKind.MISS))
        recorder.on_event(make_event(time=2, kind=EventKind.WRITEBACK))
        path = tmp_path / "trace.jsonl"
        assert recorder.to_jsonl(str(path)) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["kind"] for line in lines] == ["miss", "writeback"]


class TestBusProfiler:
    def test_counts_and_phases(self):
        profiler = BusProfiler()
        profiler.on_event(make_event())
        with profiler.phase("measure"):
            profiler.on_event(make_event(time=1))
        summary = profiler.summary()
        assert summary["events"] == 2
        assert summary["phases"]["measure"]["events"] == 1


class TestSession:
    def test_session_attaches_hierarchies(self):
        with telemetry_session() as session:
            assert session is active_session()
            assert session_bus() is session.bus
            hierarchy = make_xeon_hierarchy(rng=random.Random(0))
            assert hierarchy.telemetry is session.bus
            hierarchy.access(0x4000, False, owner=0)
        assert active_session() is None
        assert session_bus() is None
        assert session.summary()["events"] == 3  # cold miss walks 3 levels

    def test_disabled_session_yields_none(self):
        with telemetry_session(enabled=False) as session:
            assert session is None
            hierarchy = make_xeon_hierarchy(rng=random.Random(0))
            assert hierarchy.telemetry is None

    def test_sessions_do_not_nest(self):
        with telemetry_session() as outer:
            with telemetry_session() as inner:
                assert inner is None
                assert session_bus() is outer.bus
            # Inner exit leaves the outer session active.
            assert active_session() is outer

    def test_configure_sets_process_default(self):
        previous = configure(TelemetryConfig(window=32))
        try:
            assert default_config().window == 32
            with telemetry_session() as session:
                assert session.config.window == 32
        finally:
            configure(previous)

    def test_export_trace(self, tmp_path):
        session = TelemetrySession(TelemetryConfig(trace_capacity=None))
        session.bus.emit(make_event())
        path = tmp_path / "out.jsonl"
        assert session.export_trace(str(path)) == 1
        assert path.read_text().count("\n") == 1
