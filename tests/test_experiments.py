"""Experiment framework and per-experiment shape assertions (quick mode)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments import available_experiments, run_experiment
from repro.experiments.base import ExperimentResult
from repro.experiments.table5 import analytic_probability


class TestFramework:
    def test_result_validates_row_width(self):
        with pytest.raises(ConfigurationError):
            ExperimentResult(
                experiment_id="x",
                title="t",
                paper_reference="r",
                columns=["a", "b"],
                rows=[[1]],
            )

    def test_render_contains_title_and_cells(self):
        result = ExperimentResult(
            experiment_id="x",
            title="My Table",
            paper_reference="Table 9",
            columns=["k", "v"],
            rows=[["alpha", 1.5]],
            notes="a note",
        )
        text = result.render()
        assert "My Table" in text
        assert "alpha" in text
        assert "a note" in text

    def test_row_dict(self):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            paper_reference="r",
            columns=["k", "v"],
            rows=[["a", 1], ["b", 2]],
        )
        assert result.row_dict("k")["b"] == ["b", 2]
        with pytest.raises(ConfigurationError):
            result.row_dict("missing")

    def test_registry_contains_every_paper_artifact(self):
        ids = available_experiments()
        for required in (
            "table2", "table4", "table5", "table6", "table7",
            "fig4", "fig5", "fig6", "fig7", "fig8",
            "random_policy", "stability", "defenses", "sidechannel",
            "online_detection",
        ):
            assert required in ids

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("table99")

    def test_every_registered_run_is_keyword_only(self):
        # The spec compiler and the runner invoke entry points uniformly
        # as run(profile=..., seed=...); positional or extra parameters
        # would break that contract silently.
        import inspect

        from repro.experiments import registry

        for experiment_id, runner in registry._EXPERIMENTS.items():
            signature = inspect.signature(runner)
            parameters = dict(signature.parameters)
            assert set(parameters) == {"profile", "seed"}, experiment_id
            for parameter in parameters.values():
                assert parameter.kind is inspect.Parameter.KEYWORD_ONLY, (
                    f"{experiment_id}.run must be keyword-only, "
                    f"got {parameter.kind} for {parameter.name}"
                )
            assert parameters["profile"].default is None, experiment_id
            assert parameters["seed"].default == 0, experiment_id


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table2", profile="quick")

    def test_lru_always_100(self, result):
        rows = result.row_dict("N")
        for n in (8, 9, 10):
            assert rows[n][1] == "100.0%"

    def test_surrogate_monotone_and_certain_at_10(self, result):
        rows = result.row_dict("N")
        values = [float(rows[n][3].rstrip("%")) for n in (8, 9, 10)]
        assert values[0] < values[1] < values[2]
        assert values[2] == 100.0

    def test_surrogate_near_paper_values(self, result):
        rows = result.row_dict("N")
        assert float(rows[8][3].rstrip("%")) == pytest.approx(68.8, abs=6.0)
        assert float(rows[9][3].rstrip("%")) == pytest.approx(81.7, abs=6.0)


class TestTable4:
    def test_latency_bands_match_paper(self):
        result = run_experiment("table4", profile="quick")
        _, l1, clean, dirty = result.rows[0]
        assert l1 == "4-5"
        low, high = map(int, clean.split("-"))
        assert 10 <= low and high <= 12
        low, high = map(int, dirty.split("-"))
        assert 21 <= low and high <= 24


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table5", profile="quick")

    def test_analytic_formula_paper_anchor(self):
        # Section 6.1: "approximately equal to 99.1% when d=3 and L=10".
        assert analytic_probability(8, 3, 10) == pytest.approx(0.991, abs=0.001)

    def test_probabilities_monotone_in_L(self, result):
        # Quick mode uses few trials, so allow Monte-Carlo wobble around
        # the monotone trend.
        for row in result.rows:
            values = [float(cell.rstrip("%")) for cell in row[2:]]
            assert all(b >= a - 6.0 for a, b in zip(values, values[1:]))
            assert values[-1] > values[0] - 3.0

    def test_uniform_matches_formula(self, result):
        uniform = next(r for r in result.rows if r[0] == "d=3" and r[1] == "uniform random")
        analytic = next(r for r in result.rows if r[0] == "d=3" and r[1] == "analytic")
        for measured, expected in zip(uniform[2:], analytic[2:]):
            assert float(measured.rstrip("%")) == pytest.approx(
                float(expected.rstrip("%")), abs=5.0
            )


class TestFig4:
    def test_median_steps_are_one_writeback_penalty(self):
        result = run_experiment("fig4", profile="quick")
        steps = [float(row[5]) for row in result.rows[1:]]
        for step in steps:
            assert 7.0 <= step <= 15.0

    def test_all_nine_levels_present(self):
        result = run_experiment("fig4", profile="quick")
        assert [row[0] for row in result.rows] == list(range(9))


class TestFig5:
    def test_trace_separation_grows_with_d(self):
        result = run_experiment("fig5", profile="quick")
        separations = [float(row[3]) for row in result.rows]
        assert separations[0] < separations[1] < separations[2]

    def test_traces_attached(self):
        result = run_experiment("fig5", profile="quick")
        assert "trace_d1" in result.series
        assert len(result.series["trace_d8"]) > 0


class TestFig6And8:
    def test_fig6_ber_rises_with_rate(self):
        result = run_experiment("fig6", profile="quick")
        # Compare the slowest and fastest rows for d=8 (last column).
        slowest = float(result.rows[-1][-1].rstrip("%"))
        fastest = float(result.rows[0][-1].rstrip("%"))
        assert fastest >= slowest - 1.0

    def test_fig8_reaches_4400kbps(self):
        result = run_experiment("fig8", profile="quick")
        rates = [float(row[1]) for row in result.rows]
        assert 4400.0 in rates


class TestFig7:
    def test_four_bands(self):
        result = run_experiment("fig7", profile="quick")
        assert [row[1] for row in result.rows] == [0, 3, 5, 8]
        medians = [float(row[2]) for row in result.rows]
        assert medians == sorted(medians)


class TestSideChannelExperiment:
    def test_all_scenarios_recover_most_bits(self):
        result = run_experiment("sidechannel", profile="quick")
        for row in result.rows:
            assert float(row[1].rstrip("%")) >= 90.0


class TestStabilityExperiment:
    def test_wb_stays_below_baselines_under_noise(self):
        result = run_experiment("stability", profile="quick")
        noise_row = next(r for r in result.rows if r[0] == "noise loads")
        wb = float(noise_row[1].rstrip("%"))
        lru = float(noise_row[2].rstrip("%"))
        pp = float(noise_row[3].rstrip("%"))
        assert wb < lru
        assert wb < pp


class TestOnlineDetection:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("online_detection", profile="quick")

    def test_stealth_claim_holds_online(self, result):
        # The paper's Section 7 claim in online form: at matched
        # bandwidth both detectors flag the LRU sender strictly more
        # often than the WB sender.
        assert result.params["stealth_holds"] is True
        rates = result.params["detection_rates"]
        for detector in ("monitor", "burst"):
            assert rates[detector]["lru"] > rates[detector]["wb"]

    def test_benign_fpr_reported(self, result):
        rates = result.params["detection_rates"]
        for detector in ("monitor", "burst"):
            assert 0.0 <= rates[detector]["benign"] <= 1.0
        assert "benign FPR" in result.columns

    def test_roc_series_attached(self, result):
        for detector in ("monitor", "burst"):
            thresholds = result.series[f"{detector}_roc_threshold"]
            fprs = result.series[f"{detector}_roc_benign_fpr"]
            assert len(thresholds) == len(fprs) > 2
            # FPR is monotone non-increasing in the threshold.
            assert all(b <= a for a, b in zip(fprs, fprs[1:]))

    def test_rows_cover_both_detectors(self, result):
        assert [row[0] for row in result.rows] == ["monitor", "burst"]
        assert all(row[-1] == "yes" for row in result.rows)


class TestExtensionsAndAblations:
    def test_3bit_more_fragile_than_2bit(self):
        result = run_experiment("extension_3bit", profile="quick")
        # At the fastest period the adjacent-level codec must not beat
        # the paper's non-adjacent scheme on BER.
        fastest = result.rows[0]
        assert float(fastest[4].rstrip("%")) >= float(fastest[2].rstrip("%"))

    def test_error_sources_fully_accounted(self):
        result = run_experiment("ablation_errors", profile="quick")
        rows = {row[0]: float(row[1].rstrip("%")) for row in result.rows}
        assert rows["all three removed"] == 0.0
        assert rows["baseline (all sources on)"] >= rows["all three removed"]

    def test_replacement_set_rule(self):
        result = run_experiment("ablation_replacement_set", profile="quick")
        rows = result.row_dict("L")
        # L=10 (the paper's choice) must be at least as clean as L=8 on
        # the E5-2650 surrogate.
        def ber(cell):
            return 100.0 if cell == "no signal" else float(cell.rstrip("%"))
        assert ber(rows[10][2]) <= ber(rows[8][2]) + 0.5
