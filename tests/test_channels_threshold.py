"""Threshold decoder calibration and classification."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, ProtocolError
from repro.channels.threshold import ThresholdDecoder, majority_vote


def simple_decoder():
    return ThresholdDecoder.calibrate(
        {0: [100.0, 102.0, 101.0], 4: [140.0, 144.0], 8: [190.0, 186.0]}
    )


class TestCalibration:
    def test_thresholds_are_midpoints(self):
        decoder = simple_decoder()
        assert decoder.thresholds[0] == pytest.approx((101 + 142) / 2)
        assert decoder.thresholds[1] == pytest.approx((142 + 188) / 2)

    def test_levels_sorted(self):
        assert list(simple_decoder().levels) == [0, 4, 8]

    def test_rejects_single_level(self):
        with pytest.raises(ConfigurationError):
            ThresholdDecoder.calibrate({0: [1.0]})

    def test_rejects_empty_samples(self):
        with pytest.raises(ConfigurationError):
            ThresholdDecoder.calibrate({0: [], 1: [5.0]})

    def test_rejects_unseparated_medians(self):
        # The no-signal case (e.g. a write-through cache): medians overlap.
        with pytest.raises(ConfigurationError):
            ThresholdDecoder.calibrate({0: [100.0], 1: [101.0]})

    def test_rejects_inverted_medians(self):
        with pytest.raises(ConfigurationError):
            ThresholdDecoder.calibrate({0: [200.0], 1: [100.0]})

    def test_min_separation_configurable(self):
        decoder = ThresholdDecoder.calibrate(
            {0: [100.0], 1: [101.5]}, min_separation=1.0
        )
        assert decoder.classify(99.0) == 0


class TestClassify:
    def test_band_membership(self):
        decoder = simple_decoder()
        assert decoder.classify(95) == 0
        assert decoder.classify(120) == 0
        assert decoder.classify(122) == 4
        assert decoder.classify(160) == 4
        assert decoder.classify(170) == 8
        assert decoder.classify(500) == 8

    def test_classify_many(self):
        decoder = simple_decoder()
        assert decoder.classify_many([95, 150, 200]) == [0, 4, 8]

    def test_separation(self):
        assert simple_decoder().separation() == pytest.approx(41.0)

    def test_describe_mentions_levels(self):
        text = simple_decoder().describe()
        assert "d=0" in text and "d=8" in text

    @given(st.floats(min_value=0, max_value=1000, allow_nan=False))
    def test_classification_is_total(self, latency):
        assert simple_decoder().classify(latency) in (0, 4, 8)


class TestValidation:
    def test_threshold_count_must_match(self):
        with pytest.raises(ConfigurationError):
            ThresholdDecoder(levels=(0, 1, 2), thresholds=(10.0,), medians=(1, 2, 3))

    def test_thresholds_must_ascend(self):
        with pytest.raises(ConfigurationError):
            ThresholdDecoder(levels=(0, 1, 2), thresholds=(20.0, 10.0), medians=(1, 2, 3))


class TestMajorityVote:
    def test_majority(self):
        assert majority_vote([1, 1, 0]) == 1
        assert majority_vote([0, 0, 1]) == 0

    def test_tie_breaks_to_one(self):
        assert majority_vote([0, 1]) == 1

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            majority_vote([])
