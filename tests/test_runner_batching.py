"""Batch-group coalescing in the runner: grouping rules, split-back parity.

A batch group is a scheduling affinity, never a correctness input: these
tests hold the grouped pool to bit-identical manifests against ungrouped
execution, and pin the grouping rules (hint + profile + route must all
agree; hintless tasks stay singletons; groups cap at ``max_group``).
"""

import dataclasses

import pytest

from repro.experiments.profiles import FULL, QUICK
from repro.runner import (
    STATUS_FAILED,
    STATUS_OK,
    TaskSpec,
    batch_group_key,
    coalesce_tasks,
    execute_group_payload,
    group_timeout,
    run_tasks,
)
from repro.runner.batching import group_weight


def _task(task_id, seed=0, hint=None, profile=QUICK, **kwargs):
    return TaskSpec(
        task_id=task_id,
        experiment_id="fake",
        seed=seed,
        profile=profile,
        entry_point="tests.fake_experiments:seed_echo",
        batch_hint=hint,
        **kwargs,
    )


class TestGroupKey:
    def test_hintless_task_never_groups(self):
        assert batch_group_key(_task("a")) is None

    def test_same_hint_profile_route_share_a_key(self):
        assert batch_group_key(_task("a", 1, "g")) == batch_group_key(
            _task("b", 2, "g")
        )

    def test_different_hint_splits(self):
        assert batch_group_key(_task("a", hint="g1")) != batch_group_key(
            _task("b", hint="g2")
        )

    def test_different_profile_splits(self):
        assert batch_group_key(_task("a", hint="g")) != batch_group_key(
            _task("b", hint="g", profile=FULL)
        )

    def test_different_route_splits(self):
        by_entry = _task("a", hint="g")
        by_registry = TaskSpec(
            task_id="b", experiment_id="fig7", seed=0, profile=QUICK,
            batch_hint="g",
        )
        by_scenario = TaskSpec(
            task_id="c", experiment_id="scenario:x", seed=0, profile=QUICK,
            scenario="{}", batch_hint="g",
        )
        keys = {
            batch_group_key(by_entry),
            batch_group_key(by_registry),
            batch_group_key(by_scenario),
        }
        assert len(keys) == 3


class TestCoalesce:
    def test_hintless_tasks_stay_singletons(self):
        groups = coalesce_tasks([_task("a"), _task("b")])
        assert [[t.task_id for t in g] for g in groups] == [["a"], ["b"]]

    def test_compatible_tasks_group_in_first_seen_order(self):
        tasks = [
            _task("a", 1, "g"),
            _task("x", 2, None),
            _task("b", 3, "g"),
            _task("c", 4, "other"),
            _task("d", 5, "g"),
        ]
        groups = coalesce_tasks(tasks)
        assert [[t.task_id for t in g] for g in groups] == [
            ["a", "b", "d"], ["x"], ["c"],
        ]

    def test_concatenation_is_a_permutation(self):
        tasks = [_task(f"t{i}", i, "g" if i % 2 else None) for i in range(9)]
        groups = coalesce_tasks(tasks)
        flat = [t.task_id for g in groups for t in g]
        assert sorted(flat) == sorted(t.task_id for t in tasks)

    def test_overflow_starts_a_fresh_group(self):
        tasks = [_task(f"t{i}", i, "g") for i in range(5)]
        groups = coalesce_tasks(tasks, max_group=2)
        assert [len(g) for g in groups] == [2, 2, 1]

    def test_group_weight_is_member_sum(self):
        tasks = [_task("a", weight=2.0), _task("b", weight=0.5)]
        assert group_weight(tasks) == 2.5

    def test_group_timeout_sums_and_none_wins(self):
        assert group_timeout(
            [_task("a", timeout=3.0), _task("b", timeout=4.5)]
        ) == pytest.approx(7.5)
        assert group_timeout([_task("a", timeout=3.0), _task("b")]) is None


class TestGroupExecution:
    def test_group_payload_isolates_member_failures(self):
        group = [
            _task("good", seed=7),
            dataclasses.replace(
                _task("bad", seed=8),
                entry_point="tests.fake_experiments:raises_error",
            ),
            _task("also-good", seed=9),
        ]
        payload = execute_group_payload(group)
        assert [kind for kind, _ in payload] == ["ok", "error", "ok"]
        assert "deliberate failure" in payload[1][1]

    def test_grouped_manifest_bit_identical_to_ungrouped(self):
        plain = [_task(f"t{i}", seed=10 + i) for i in range(4)]
        hinted = [dataclasses.replace(t, batch_hint="geom") for t in plain]
        baseline = run_tasks(plain, jobs=2)
        grouped = run_tasks(hinted, jobs=2)
        assert [e.task_id for e in grouped.entries] == [
            e.task_id for e in baseline.entries
        ]
        for a, b in zip(grouped.entries, baseline.entries):
            assert a.status == STATUS_OK
            assert a.result.to_json() == b.result.to_json()

    def test_group_members_run_on_one_worker(self):
        tasks = [
            _task(f"t{i}", seed=i, hint="geom", weight=1.0) for i in range(3)
        ]
        manifest = run_tasks(tasks, jobs=3)
        workers = {entry.worker_id for entry in manifest.entries}
        assert len(workers) == 1

    def test_failed_member_does_not_sink_the_group(self):
        # Grouping requires one shared execution route, so the failure
        # keys off the seed: all three coalesce, only the middle fails.
        entry = "tests.fake_experiments:fails_when_seed_negative"
        tasks = [
            dataclasses.replace(_task("ok1", seed=1, hint="geom"),
                                entry_point=entry),
            dataclasses.replace(_task("bad", seed=-2, hint="geom"),
                                entry_point=entry),
            dataclasses.replace(_task("ok2", seed=3, hint="geom"),
                                entry_point=entry),
        ]
        manifest = run_tasks(tasks, jobs=2)
        statuses = {e.task_id: e.status for e in manifest.entries}
        assert statuses["ok1"] == STATUS_OK
        assert statuses["ok2"] == STATUS_OK
        assert statuses["bad"] == STATUS_FAILED
