"""The closed-loop defense experiment: pinned outcomes and determinism.

The ``closed_loop_defense`` scenario closes the paper's Section 7
stealth asymmetry into a live detect→fuse→respond loop.  These tests pin
the quick/seed-0 outcome to the digit — alarm times, the flip frame's
stream event id, the boundary symbol, pre/post-flip capacities — and
then assert the whole measurement is bit-identical across the reference
and fast engines *and* across stream clients attaching, dropping and
resuming mid-run (observers must never perturb the result).
"""

import dataclasses

import pytest

from repro.common.errors import ConfigurationError
from repro.engine import engine_context
from repro.experiments.profiles import RunProfile
from repro.scenario.closed_loop import (
    ModulatingDirtySender,
    PhaseStats,
    _phase_stats,
    measure_closed_loop,
)
from repro.scenario.library import closed_loop_defense_spec

SEED = 0


def _measure(stream_hook=None):
    return measure_closed_loop(
        closed_loop_defense_spec(),
        RunProfile("quick", reduced=True),
        SEED,
        stream_hook=stream_hook,
    )


@pytest.fixture(scope="module")
def measurement():
    """One reference-engine quick/seed-0 run, shared by the pin tests."""
    return _measure()


class TestPinnedOutcomes:
    """quick/seed-0 values, frozen alongside the committed golden."""

    def test_calibrated_thresholds(self, measurement):
        assert measurement.thresholds == {
            "monitor_fast": 5.374339756509049,
            "monitor_slow": 5.706504836352046,
            "burst": 0.8351449305454429,
        }

    def test_fusion_rule(self, measurement):
        assert measurement.fusion_rule == (
            "2-of-3 sources with >= 1 over-threshold scores within 300"
        )
        assert measurement.num_symbols == 48
        assert measurement.defense == "write_through"

    def test_wb_sender_completes_without_an_alarm(self, measurement):
        wb = measurement.outcomes["wb"]
        assert wb.alarm_time is None
        assert wb.alarm_sources == ()
        assert wb.flip_time is None
        assert wb.flip_event_id is None
        assert wb.boundary_symbol is None
        assert wb.post is None
        assert wb.pre == PhaseStats(
            symbols=48,
            errors=3,
            ber=0.0625,
            capacity=0.6627099333829861,
        )
        assert wb.stream_events == 48632
        assert wb.stream_dropped == 0

    def test_lru_sender_trips_the_loop_and_loses_the_channel(
        self, measurement
    ):
        lru = measurement.outcomes["lru"]
        assert lru.alarm_time == 60
        assert lru.alarm_sources == ("monitor_fast", "monitor_slow")
        assert lru.flip_time == 60
        assert lru.flip_event_id == 30169
        assert lru.boundary_symbol == 5
        assert lru.pre == PhaseStats(
            symbols=5, errors=0, ber=0.0, capacity=1.0
        )
        assert lru.post == PhaseStats(
            symbols=42, errors=21, ber=0.5, capacity=0.0
        )
        assert not lru.payload_intact
        assert lru.stream_events == 56945
        assert lru.stream_dropped == 0

    def test_stealth_asymmetry_holds(self, measurement):
        assert measurement.asymmetry_holds is True
        lru = measurement.outcomes["lru"]
        assert lru.post.capacity * 10.0 <= lru.pre.capacity


class TestCrossEngineDeterminism:
    def test_fast_engine_reproduces_the_reference_bit_for_bit(
        self, measurement
    ):
        with engine_context("fast"):
            fast = _measure()
        assert fast.thresholds == measurement.thresholds
        assert fast.outcomes == measurement.outcomes
        assert fast.series == measurement.series
        assert fast.asymmetry_holds is measurement.asymmetry_holds


class _ReconnectingObserver:
    """A stream consumer that drops its client mid-run and resumes.

    Attached via ``stream_hook``: the first client detaches itself after
    ``drop_after`` frames (from inside the publisher's fan-out, like a
    consumer dying mid-write); the observer then re-attaches with
    ``Last-Event-ID`` semantics and keeps following to the end.
    """

    def __init__(self, drop_after=500):
        self.drop_after = drop_after
        self.cursors = {}

    def __call__(self, suspect, publisher):
        state = {"seen": 0, "resumed": None, "first_resumed_id": None}
        self.cursors[suspect] = state

        def second_leg(frame):
            if state["first_resumed_id"] is None:
                state["first_resumed_id"] = frame.event_id
            return True

        def first_leg(frame):
            state["seen"] += 1
            if state["seen"] == self.drop_after:
                publisher.detach(first_client)
                state["resumed"] = publisher.attach(
                    last_event_id=frame.event_id, accepts=second_leg
                )
            return True

        first_client = publisher.attach(accepts=first_leg, capacity=16)


class TestMidRunReconnect:
    def test_reconnecting_clients_cannot_perturb_the_outcome(
        self, measurement
    ):
        observer = _ReconnectingObserver(drop_after=500)
        observed = _measure(stream_hook=observer)
        assert observed.thresholds == measurement.thresholds
        # The slow bounded clients *do* drop frames — that is the point —
        # so the drop counter is the one field allowed to differ.
        normalized = {
            suspect: dataclasses.replace(outcome, stream_dropped=0)
            for suspect, outcome in observed.outcomes.items()
        }
        assert normalized == measurement.outcomes
        assert all(
            outcome.stream_dropped > 0
            for outcome in observed.outcomes.values()
        )
        assert observed.series == measurement.series
        # Each suspect's observer did drop mid-run and resume.
        for suspect in ("wb", "lru"):
            state = observer.cursors[suspect]
            assert state["seen"] == 500
            assert state["resumed"] is not None
            # The resume picked up contiguously with the drop cursor.
            assert state["first_resumed_id"] == 501


class TestUnits:
    def test_phase_stats_of_an_empty_phase_is_none(self):
        assert _phase_stats([], []) is None

    def test_phase_stats_counts_errors(self):
        stats = _phase_stats([0, 1, 1, 0], [0, 0, 1, 0])
        assert stats.symbols == 4
        assert stats.errors == 1
        assert stats.ber == 0.25

    def test_modulating_sender_validation(self):
        with pytest.raises(ConfigurationError):
            ModulatingDirtySender(
                activity=None, line=0, message=[], period=10,
                start_time=0, modulation_interval=0,
            )
        with pytest.raises(ConfigurationError):
            ModulatingDirtySender(
                activity=None, line=0, message=[], period=10,
                start_time=0, duty=0.0,
            )
