"""Differential parity: the fast engine must be bit-identical to the oracle.

The reference object-per-line core is the semantic oracle; the fast
struct-of-arrays core (:mod:`repro.engine`) must reproduce it exactly —
per-access hit levels, latencies, dirty-victim flags and eviction streams,
final cache state, and statistics counters.  Any divergence, however
small, is a bug in the fast engine.

The fuzz matrix covers every policy in the replacement registry, both L1
write policies, and seeded random traces of >= 10,000 accesses, plus a
real WB-channel transmission end to end.

The same contract extends one link down the chain: the batch kernel
(:mod:`repro.engine.batch`) must reproduce the fast engine replica by
replica — every event stream, every counter, every final way state — for
all lifted policies and both write policies (the ``TestBatchEngineParity``
section below).
"""

import random

import pytest

from repro.cache.cache import WritePolicy
from repro.cache.configs import HierarchyParams, make_xeon_hierarchy
from repro.engine import event_stream, fig6_workload, random_workload, run_trace
from repro.engine.batch import BatchReplay, batch_eligibility, run_batch_traces
from repro.replacement.batch_state import lifted_policies
from repro.replacement.registry import available_policies

SEED = 1234


def build_pair(policy, write_policy=WritePolicy.WRITE_BACK, seed=SEED):
    """Two hierarchies with identical RNG streams, one per engine."""
    kwargs = dict(l1_policy=policy, l1_write_policy=write_policy)
    reference = make_xeon_hierarchy(
        rng=random.Random(seed), engine="reference", **kwargs
    )
    fast = make_xeon_hierarchy(rng=random.Random(seed), engine="fast", **kwargs)
    return reference, fast


def assert_state_identical(reference, fast):
    """Every set of every level holds the same normalised way states."""
    for level_ref, level_fast in zip(reference.levels, fast.levels):
        for index, (set_ref, set_fast) in enumerate(
            zip(level_ref.sets, level_fast.sets)
        ):
            assert set_ref.way_states() == set_fast.way_states(), (
                f"{level_ref.name} set {index} diverged"
            )
            assert set_ref.index_snapshot() == set_fast.index_snapshot()
            assert set_ref.dirty_count() == set_fast.dirty_count()
            assert set_ref.valid_count() == set_fast.valid_count()


@pytest.mark.parametrize("policy", available_policies())
@pytest.mark.parametrize(
    "write_policy", [WritePolicy.WRITE_BACK, WritePolicy.WRITE_THROUGH]
)
def test_random_trace_parity(policy, write_policy):
    """>= 10k random accesses: identical event streams and final state."""
    trace = list(
        random_workload(
            num_accesses=10_000,
            working_set_lines=1024,
            write_ratio=0.3,
            seed=SEED,
        )
    )
    reference, fast = build_pair(policy, write_policy)
    events_ref = event_stream(reference, trace, owner=0)
    events_fast = event_stream(fast, trace, owner=0)
    assert events_ref == events_fast
    assert_state_identical(reference, fast)
    assert reference.stats.snapshot() == fast.stats.snapshot()


@pytest.mark.parametrize("policy", available_policies())
def test_fig6_trace_parity(policy):
    """The Figure 6 channel inner loop replays identically."""
    trace = fig6_workload(num_symbols=400, d=4, seed=SEED)
    reference, fast = build_pair(policy)
    result_ref = run_trace(reference, trace)
    result_fast = run_trace(fast, trace)
    assert result_ref.hit_levels == result_fast.hit_levels
    assert result_ref.latencies == result_fast.latencies
    assert result_ref.dirty_evictions == result_fast.dirty_evictions
    assert_state_identical(reference, fast)
    assert reference.stats.snapshot() == fast.stats.snapshot()


def test_batched_loop_matches_generic_loop():
    """run_trace's specialised SoA loop equals the per-access API."""
    trace = list(
        random_workload(num_accesses=10_000, working_set_lines=2048, seed=7)
    )
    via_batch = make_xeon_hierarchy(rng=random.Random(3), engine="fast")
    via_generic = make_xeon_hierarchy(rng=random.Random(3), engine="fast")
    batched = run_trace(via_batch, trace, owner=1)
    events = event_stream(via_generic, trace, owner=1)
    assert batched.hit_levels == [event[0] for event in events]
    assert batched.latencies == [event[1] for event in events]
    assert batched.dirty_evictions == [event[2] for event in events]
    assert_state_identical(via_batch, via_generic)
    assert via_batch.stats.snapshot() == via_generic.stats.snapshot()


def test_flush_parity():
    """clflush costs and after-states agree across engines."""
    trace = list(random_workload(num_accesses=2_000, seed=11))
    reference, fast = build_pair("tree-plru")
    run_trace(reference, trace, owner=0)
    run_trace(fast, trace, owner=0)
    addresses = sorted({address for address, _ in trace})[:200]
    costs_ref = [reference.flush(address, owner=0) for address in addresses]
    costs_fast = [fast.flush(address, owner=0) for address in addresses]
    assert costs_ref == costs_fast
    assert_state_identical(reference, fast)


def test_wb_channel_transmission_parity():
    """A real WB-protocol transmission decodes identically on both engines."""
    from repro.channels.encoding import BinaryDirtyCodec
    from repro.channels.wb import WBChannelConfig, run_wb_channel

    results = {}
    for engine in ("reference", "fast"):
        outcome = run_wb_channel(
            WBChannelConfig(
                codec=BinaryDirtyCodec(d_on=4),
                period_cycles=1600,
                message_bits=48,
                seed=5,
                hierarchy_overrides={"engine": engine},
            )
        )
        results[engine] = outcome
    reference, fast = results["reference"], results["fast"]
    assert reference.sent_bits == fast.sent_bits
    assert reference.received_bits == fast.received_bits
    assert reference.bit_error_rate == fast.bit_error_rate


@pytest.mark.parametrize("policy", available_policies())
def test_telemetry_event_stream_parity(policy):
    """With telemetry on, both engines emit bit-identical event streams.

    The emission sites live in the shared hierarchy walk, so this holds
    by construction for the generic path — and enabling telemetry forces
    run_trace off the specialised SoA loop, so the batched API is covered
    too.  NamedTuple equality compares every field of every event.
    """
    from repro.telemetry import EventKind, TelemetryBus, TraceRecorder

    trace = list(
        random_workload(
            num_accesses=4_000,
            working_set_lines=1024,
            write_ratio=0.3,
            seed=SEED,
        )
    )
    reference, fast = build_pair(policy)
    recorders = {}
    for name, hierarchy in (("reference", reference), ("fast", fast)):
        recorder = TraceRecorder(capacity=None)
        hierarchy.attach_telemetry(TelemetryBus()).subscribe(recorder)
        recorders[name] = recorder
    run_trace(reference, trace, owner=0)
    run_trace(fast, trace, owner=0)
    flushed = sorted({address for address, _ in trace})[:64]
    for address in flushed:
        reference.flush(address, owner=0)
        fast.flush(address, owner=0)

    events_ref = recorders["reference"].events
    events_fast = recorders["fast"].events
    assert events_ref, "telemetry-on run produced no events"
    assert events_ref == events_fast
    assert_state_identical(reference, fast)
    assert reference.stats.snapshot() == fast.stats.snapshot()
    # The stream is internally consistent too: L1 misses reconstructed
    # from events match the hierarchy's own statistics counters.
    misses_l1 = sum(
        1
        for event in events_ref
        if event.kind == EventKind.MISS and event.level == 1
    )
    assert misses_l1 == reference.stats.snapshot()["L1"]["misses"]


def test_experiment_results_identical_across_engines():
    """A full registered experiment is engine-invariant."""
    from repro.experiments.profiles import QUICK
    from repro.experiments.registry import run_experiment

    result_ref = run_experiment("table4", profile=QUICK, seed=0)
    result_fast = run_experiment(
        "table4", profile=QUICK.with_engine("fast"), seed=0
    )
    assert result_ref.rows == result_fast.rows
    assert result_ref.series == result_fast.series


def test_faulted_transmission_parity():
    """An injected-fault run (drift, slips, drops, co-runner) is
    engine-invariant: identical fault schedules AND identical bit errors."""
    from repro.channels.encoding import BinaryDirtyCodec
    from repro.channels.wb import WBChannelConfig, run_wb_channel
    from repro.faults import DEFAULT_FAULT_SPEC

    results = {}
    for engine in ("reference", "fast"):
        outcome = run_wb_channel(
            WBChannelConfig(
                codec=BinaryDirtyCodec(d_on=1),
                period_cycles=5500,
                message_bits=64,
                seed=3,
                faults=DEFAULT_FAULT_SPEC.scaled(1.0),
                hierarchy_overrides={"engine": engine},
            )
        )
        results[engine] = outcome
    reference, fast = results["reference"], results["fast"]
    assert reference.fault_summary == fast.fault_summary
    assert reference.fault_summary is not None
    assert reference.sent_bits == fast.sent_bits
    assert reference.received_bits == fast.received_bits
    assert reference.bit_error_rate == fast.bit_error_rate


def _batch_traces(seeds, num_accesses=1_800, write_ratio=0.35):
    """One distinct seeded fuzz trace per replica."""
    return [
        list(
            random_workload(
                num_accesses=num_accesses,
                working_set_lines=900,
                write_ratio=write_ratio,
                seed=seed,
            )
        )
        for seed in seeds
    ]


def _assert_batch_matches_fast(params, seeds, traces, owner=None):
    """Every replica of one BatchReplay equals an independent fast run."""
    replay = BatchReplay(params, seeds, traces, owner=owner).run()
    for replica, (seed, trace) in enumerate(zip(seeds, traces)):
        fast = params.build(rng=random.Random(seed), engine="fast")
        expected = run_trace(fast, trace, owner=owner)
        got = replay.result(replica)
        assert expected.hit_levels == got.hit_levels
        assert expected.latencies == got.latencies
        assert expected.dirty_evictions == got.dirty_evictions
        assert expected.fingerprint() == replay.fingerprints()[replica]
        assert fast.stats.snapshot() == replay.stats(replica).snapshot()
        for level_index, level in enumerate(fast.levels):
            for set_index, cache_set in enumerate(level.sets):
                assert cache_set.way_states() == replay.way_states(
                    replica, level_index, set_index
                ), f"replica {replica} {level.name} set {set_index} diverged"
                assert cache_set.index_snapshot() == replay.index_snapshot(
                    replica, level_index, set_index
                )


class TestBatchEngineParity:
    """The batch kernel must reproduce the fast engine replica by replica."""

    @pytest.mark.parametrize("policy", lifted_policies())
    @pytest.mark.parametrize(
        "write_policy", [WritePolicy.WRITE_BACK, WritePolicy.WRITE_THROUGH]
    )
    def test_random_trace_parity(self, policy, write_policy):
        """Seeded fuzz, every lifted policy x both write policies."""
        params = HierarchyParams.xeon(
            l1_policy=policy, l1_write_policy=write_policy
        )
        assert batch_eligibility(params) is None
        seeds = [SEED + replica for replica in range(6)]
        _assert_batch_matches_fast(params, seeds, _batch_traces(seeds), owner=0)

    def test_fig6_seed_sweep_parity(self):
        """A fig6-style seed sweep — the workload batching exists for."""
        params = HierarchyParams.xeon()
        seeds = list(range(12))
        traces = [fig6_workload(num_symbols=120, seed=seed) for seed in seeds]
        _assert_batch_matches_fast(params, seeds, traces)

    def test_unequal_trace_lengths(self):
        """Replicas retire at different steps; rows mask out correctly."""
        params = HierarchyParams.tiny()
        seeds = [5, 6, 7, 8]
        traces = [
            list(
                random_workload(
                    num_accesses=200 + 311 * index,
                    working_set_lines=96,
                    write_ratio=0.4,
                    seed=seed,
                )
            )
            for index, seed in enumerate(seeds)
        ]
        _assert_batch_matches_fast(params, seeds, traces)

    def test_unlifted_policy_falls_back_to_fast(self):
        """nru has no batched state: the driver must still be exact."""
        params = HierarchyParams.xeon(l1_policy="nru")
        assert batch_eligibility(params) is not None
        seeds = [1, 2, 3]
        traces = _batch_traces(seeds, num_accesses=600)
        results = run_batch_traces(params, seeds, traces)
        for seed, trace, got in zip(seeds, traces, results):
            fast = params.build(rng=random.Random(seed), engine="fast")
            expected = run_trace(fast, trace)
            assert expected.fingerprint() == got.fingerprint()
            assert expected.hit_levels == got.hit_levels

    def test_write_through_l1_never_dirty(self):
        """Under WT the L1 holds no dirty lines, so no dirty evictions."""
        params = HierarchyParams.xeon(
            l1_write_policy=WritePolicy.WRITE_THROUGH
        )
        seeds = [SEED]
        replay = BatchReplay(params, seeds, _batch_traces(seeds)).run()
        assert not replay.result(0).dirty_evictions.count(True)
        assert not replay.levels[0].dirty.any()


def test_robust_protocol_parity():
    """The full self-healing stack delivers identical outcomes per engine."""
    from dataclasses import asdict

    from repro.channels.encoding import BinaryDirtyCodec
    from repro.channels.wb import WBChannelConfig, run_robust_wb_channel
    from repro.faults import DEFAULT_FAULT_SPEC

    results = {}
    for engine in ("reference", "fast"):
        results[engine] = run_robust_wb_channel(
            WBChannelConfig(
                codec=BinaryDirtyCodec(d_on=1),
                period_cycles=5500,
                message_bits=32,
                seed=1,
                faults=DEFAULT_FAULT_SPEC.scaled(1.0),
                hierarchy_overrides={"engine": engine},
            )
        )
    assert asdict(results["reference"]) == asdict(results["fast"])
