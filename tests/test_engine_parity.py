"""Differential parity: the fast engine must be bit-identical to the oracle.

The reference object-per-line core is the semantic oracle; the fast
struct-of-arrays core (:mod:`repro.engine`) must reproduce it exactly —
per-access hit levels, latencies, dirty-victim flags and eviction streams,
final cache state, and statistics counters.  Any divergence, however
small, is a bug in the fast engine.

The fuzz matrix covers every policy in the replacement registry, both L1
write policies, and seeded random traces of >= 10,000 accesses, plus a
real WB-channel transmission end to end.
"""

import random

import pytest

from repro.cache.cache import WritePolicy
from repro.cache.configs import make_xeon_hierarchy
from repro.engine import event_stream, fig6_workload, random_workload, run_trace
from repro.replacement.registry import available_policies

SEED = 1234


def build_pair(policy, write_policy=WritePolicy.WRITE_BACK, seed=SEED):
    """Two hierarchies with identical RNG streams, one per engine."""
    kwargs = dict(l1_policy=policy, l1_write_policy=write_policy)
    reference = make_xeon_hierarchy(
        rng=random.Random(seed), engine="reference", **kwargs
    )
    fast = make_xeon_hierarchy(rng=random.Random(seed), engine="fast", **kwargs)
    return reference, fast


def assert_state_identical(reference, fast):
    """Every set of every level holds the same normalised way states."""
    for level_ref, level_fast in zip(reference.levels, fast.levels):
        for index, (set_ref, set_fast) in enumerate(
            zip(level_ref.sets, level_fast.sets)
        ):
            assert set_ref.way_states() == set_fast.way_states(), (
                f"{level_ref.name} set {index} diverged"
            )
            assert set_ref.index_snapshot() == set_fast.index_snapshot()
            assert set_ref.dirty_count() == set_fast.dirty_count()
            assert set_ref.valid_count() == set_fast.valid_count()


@pytest.mark.parametrize("policy", available_policies())
@pytest.mark.parametrize(
    "write_policy", [WritePolicy.WRITE_BACK, WritePolicy.WRITE_THROUGH]
)
def test_random_trace_parity(policy, write_policy):
    """>= 10k random accesses: identical event streams and final state."""
    trace = list(
        random_workload(
            num_accesses=10_000,
            working_set_lines=1024,
            write_ratio=0.3,
            seed=SEED,
        )
    )
    reference, fast = build_pair(policy, write_policy)
    events_ref = event_stream(reference, trace, owner=0)
    events_fast = event_stream(fast, trace, owner=0)
    assert events_ref == events_fast
    assert_state_identical(reference, fast)
    assert reference.stats.snapshot() == fast.stats.snapshot()


@pytest.mark.parametrize("policy", available_policies())
def test_fig6_trace_parity(policy):
    """The Figure 6 channel inner loop replays identically."""
    trace = fig6_workload(num_symbols=400, d=4, seed=SEED)
    reference, fast = build_pair(policy)
    result_ref = run_trace(reference, trace)
    result_fast = run_trace(fast, trace)
    assert result_ref.hit_levels == result_fast.hit_levels
    assert result_ref.latencies == result_fast.latencies
    assert result_ref.dirty_evictions == result_fast.dirty_evictions
    assert_state_identical(reference, fast)
    assert reference.stats.snapshot() == fast.stats.snapshot()


def test_batched_loop_matches_generic_loop():
    """run_trace's specialised SoA loop equals the per-access API."""
    trace = list(
        random_workload(num_accesses=10_000, working_set_lines=2048, seed=7)
    )
    via_batch = make_xeon_hierarchy(rng=random.Random(3), engine="fast")
    via_generic = make_xeon_hierarchy(rng=random.Random(3), engine="fast")
    batched = run_trace(via_batch, trace, owner=1)
    events = event_stream(via_generic, trace, owner=1)
    assert batched.hit_levels == [event[0] for event in events]
    assert batched.latencies == [event[1] for event in events]
    assert batched.dirty_evictions == [event[2] for event in events]
    assert_state_identical(via_batch, via_generic)
    assert via_batch.stats.snapshot() == via_generic.stats.snapshot()


def test_flush_parity():
    """clflush costs and after-states agree across engines."""
    trace = list(random_workload(num_accesses=2_000, seed=11))
    reference, fast = build_pair("tree-plru")
    run_trace(reference, trace, owner=0)
    run_trace(fast, trace, owner=0)
    addresses = sorted({address for address, _ in trace})[:200]
    costs_ref = [reference.flush(address, owner=0) for address in addresses]
    costs_fast = [fast.flush(address, owner=0) for address in addresses]
    assert costs_ref == costs_fast
    assert_state_identical(reference, fast)


def test_wb_channel_transmission_parity():
    """A real WB-protocol transmission decodes identically on both engines."""
    from repro.channels.encoding import BinaryDirtyCodec
    from repro.channels.wb import WBChannelConfig, run_wb_channel

    results = {}
    for engine in ("reference", "fast"):
        outcome = run_wb_channel(
            WBChannelConfig(
                codec=BinaryDirtyCodec(d_on=4),
                period_cycles=1600,
                message_bits=48,
                seed=5,
                hierarchy_overrides={"engine": engine},
            )
        )
        results[engine] = outcome
    reference, fast = results["reference"], results["fast"]
    assert reference.sent_bits == fast.sent_bits
    assert reference.received_bits == fast.received_bits
    assert reference.bit_error_rate == fast.bit_error_rate


@pytest.mark.parametrize("policy", available_policies())
def test_telemetry_event_stream_parity(policy):
    """With telemetry on, both engines emit bit-identical event streams.

    The emission sites live in the shared hierarchy walk, so this holds
    by construction for the generic path — and enabling telemetry forces
    run_trace off the specialised SoA loop, so the batched API is covered
    too.  NamedTuple equality compares every field of every event.
    """
    from repro.telemetry import EventKind, TelemetryBus, TraceRecorder

    trace = list(
        random_workload(
            num_accesses=4_000,
            working_set_lines=1024,
            write_ratio=0.3,
            seed=SEED,
        )
    )
    reference, fast = build_pair(policy)
    recorders = {}
    for name, hierarchy in (("reference", reference), ("fast", fast)):
        recorder = TraceRecorder(capacity=None)
        hierarchy.attach_telemetry(TelemetryBus()).subscribe(recorder)
        recorders[name] = recorder
    run_trace(reference, trace, owner=0)
    run_trace(fast, trace, owner=0)
    flushed = sorted({address for address, _ in trace})[:64]
    for address in flushed:
        reference.flush(address, owner=0)
        fast.flush(address, owner=0)

    events_ref = recorders["reference"].events
    events_fast = recorders["fast"].events
    assert events_ref, "telemetry-on run produced no events"
    assert events_ref == events_fast
    assert_state_identical(reference, fast)
    assert reference.stats.snapshot() == fast.stats.snapshot()
    # The stream is internally consistent too: L1 misses reconstructed
    # from events match the hierarchy's own statistics counters.
    misses_l1 = sum(
        1
        for event in events_ref
        if event.kind == EventKind.MISS and event.level == 1
    )
    assert misses_l1 == reference.stats.snapshot()["L1"]["misses"]


def test_experiment_results_identical_across_engines():
    """A full registered experiment is engine-invariant."""
    from repro.experiments.profiles import QUICK
    from repro.experiments.registry import run_experiment

    result_ref = run_experiment("table4", profile=QUICK, seed=0)
    result_fast = run_experiment(
        "table4", profile=QUICK.with_engine("fast"), seed=0
    )
    assert result_ref.rows == result_fast.rows
    assert result_ref.series == result_fast.series


def test_faulted_transmission_parity():
    """An injected-fault run (drift, slips, drops, co-runner) is
    engine-invariant: identical fault schedules AND identical bit errors."""
    from repro.channels.encoding import BinaryDirtyCodec
    from repro.channels.wb import WBChannelConfig, run_wb_channel
    from repro.faults import DEFAULT_FAULT_SPEC

    results = {}
    for engine in ("reference", "fast"):
        outcome = run_wb_channel(
            WBChannelConfig(
                codec=BinaryDirtyCodec(d_on=1),
                period_cycles=5500,
                message_bits=64,
                seed=3,
                faults=DEFAULT_FAULT_SPEC.scaled(1.0),
                hierarchy_overrides={"engine": engine},
            )
        )
        results[engine] = outcome
    reference, fast = results["reference"], results["fast"]
    assert reference.fault_summary == fast.fault_summary
    assert reference.fault_summary is not None
    assert reference.sent_bits == fast.sent_bits
    assert reference.received_bits == fast.received_bits
    assert reference.bit_error_rate == fast.bit_error_rate


def test_robust_protocol_parity():
    """The full self-healing stack delivers identical outcomes per engine."""
    from dataclasses import asdict

    from repro.channels.encoding import BinaryDirtyCodec
    from repro.channels.wb import WBChannelConfig, run_robust_wb_channel
    from repro.faults import DEFAULT_FAULT_SPEC

    results = {}
    for engine in ("reference", "fast"):
        results[engine] = run_robust_wb_channel(
            WBChannelConfig(
                codec=BinaryDirtyCodec(d_on=1),
                period_cycles=5500,
                message_bits=32,
                seed=1,
                faults=DEFAULT_FAULT_SPEC.scaled(1.0),
                hierarchy_overrides={"engine": engine},
            )
        )
    assert asdict(results["reference"]) == asdict(results["fast"])
