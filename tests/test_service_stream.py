"""Live event streaming over the service API: SSE/NDJSON, resume, health.

Exercises the hub publisher end to end: scheduler ``job`` transition
frames, ``GET /events`` and ``GET /jobs/{id}/events`` with
``Last-Event-ID`` resume, framing negotiation, the streaming upgrade of
``GET /jobs/{id}``, the orchestration block on ``/healthz`` (and its 503
while draining), and the stream series on ``/metrics``.
"""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.client import ServiceClient
from repro.service.http import ServiceApp, make_server
from repro.service.stream import (
    JOB_FRAME,
    NDJSON_CONTENT_TYPE,
    SSE_CONTENT_TYPE,
    ServiceStream,
    negotiate_framing,
    parse_frame_line,
    write_chunk,
    write_stream,
)
from repro.telemetry.net import StreamFrame

WELL_BEHAVED = "tests.fake_experiments:well_behaved"


@pytest.fixture
def service(tmp_path):
    """A running service; yields ``(app, client)`` for white-box pokes."""
    from repro.service.store import ResultStore

    store = ResultStore(tmp_path / "store")
    app = ServiceApp(store, workers=2, queue_depth=8)
    with app:
        server = make_server(app)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield app, ServiceClient(f"http://{host}:{port}")
        finally:
            server.shutdown()
            server.server_close()


class TestNegotiateFraming:
    def test_format_param_wins_over_accept(self):
        assert negotiate_framing("text/event-stream", {"format": ["ndjson"]}) \
            == (False, NDJSON_CONTENT_TYPE)
        assert negotiate_framing("", {"format": ["sse"]}) \
            == (True, SSE_CONTENT_TYPE)

    def test_accept_header_selects_sse(self):
        assert negotiate_framing("text/event-stream", {}) \
            == (True, SSE_CONTENT_TYPE)

    def test_default_is_ndjson(self):
        assert negotiate_framing("", {}) == (False, NDJSON_CONTENT_TYPE)
        assert negotiate_framing("application/json", {}) \
            == (False, NDJSON_CONTENT_TYPE)


class TestServiceStreamUnit:
    def test_job_filter_matches_any_stamped_frame(self):
        accepts = ServiceStream.job_filter("job-1")
        assert accepts(StreamFrame(1, "score", {"job_id": "job-1"}))
        assert not accepts(StreamFrame(2, "score", {"job_id": "job-2"}))
        assert not accepts(StreamFrame(3, "score", {}))

    def test_job_state_filter_keeps_only_job_frames(self):
        accepts = ServiceStream.job_state_filter("job-1")
        assert accepts(StreamFrame(1, JOB_FRAME, {"job_id": "job-1"}))
        assert not accepts(StreamFrame(2, "score", {"job_id": "job-1"}))
        assert not accepts(StreamFrame(3, JOB_FRAME, {"job_id": "job-2"}))

    def test_slow_client_drops_without_blocking_the_publisher(self):
        stream = ServiceStream(client_capacity=2)
        stream.attach()
        for n in range(10):
            stream.publisher.publish("mark", {"n": n})
        snapshot = stream.snapshot()
        assert snapshot["clients"] == 1
        assert snapshot["dropped_total"] == 8
        assert snapshot["last_event_id"] == 10

    def test_write_stream_terminates_the_chunked_body(self):
        stream = ServiceStream()
        client = stream.attach()
        stream.publisher.publish("mark", {"n": 0})
        stream.publisher.publish("mark", {"n": 1})
        buffer = io.BytesIO()
        sent = write_stream(buffer, client, sse=False, max_events=2)
        assert sent == 2
        body = buffer.getvalue()
        assert body.endswith(b"0\r\n\r\n")
        assert body.count(b'"type": "mark"') == 2

    def test_write_chunk_and_parse_frame_line(self):
        buffer = io.BytesIO()
        write_chunk(buffer, b"abc")
        write_chunk(buffer, b"")
        assert buffer.getvalue() == b"3\r\nabc\r\n0\r\n\r\n"
        assert parse_frame_line("") is None
        assert parse_frame_line(": keep-alive") is None
        assert parse_frame_line('{"id": 1, "type": "mark"}') == {
            "id": 1, "type": "mark"
        }


class TestJobFrames:
    def test_job_lifecycle_streams_queued_running_done(self, service):
        _, client = service
        job = client.submit(
            "fake", entry_point=WELL_BEHAVED, seed=11, wait=True
        )
        job_id = str(job["job_id"])
        frames = list(client.stream_events(job_id=job_id, max_events=3))
        assert [frame["type"] for frame in frames] == [JOB_FRAME] * 3
        assert [frame["state"] for frame in frames] == [
            "queued", "running", "done"
        ]
        assert all(frame["job_id"] == job_id for frame in frames)

    def test_server_wide_stream_resumes_from_last_event_id(self, service):
        _, client = service
        client.submit("fake", entry_point=WELL_BEHAVED, seed=12, wait=True)
        head = list(client.stream_events(last_event_id=0, max_events=2))
        assert [frame["id"] for frame in head] == [1, 2]
        tail = list(
            client.stream_events(last_event_id=head[-1]["id"], max_events=1)
        )
        assert tail[0]["id"] == 3  # contiguous with the resume cursor

    def test_unknown_job_stream_is_404_before_any_frames(self, service):
        _, client = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                client.base_url + "/jobs/job-999999/events", timeout=10
            )
        assert excinfo.value.code == 404

    def test_job_get_upgrades_to_a_stream_with_stream_param(self, service):
        _, client = service
        job = client.submit(
            "fake", entry_point=WELL_BEHAVED, seed=13, wait=True
        )
        job_id = str(job["job_id"])
        with urllib.request.urlopen(
            client.base_url + f"/jobs/{job_id}?stream=1&max_events=1",
            timeout=10,
        ) as response:
            assert response.headers["Content-Type"] == NDJSON_CONTENT_TYPE
            frame = json.loads(response.readline())
        assert frame["type"] == JOB_FRAME
        assert frame["job_id"] == job_id
        assert frame["state"] == "queued"

    def test_sse_accept_header_selects_event_stream_framing(self, service):
        _, client = service
        job = client.submit(
            "fake", entry_point=WELL_BEHAVED, seed=14, wait=True
        )
        job_id = str(job["job_id"])
        request = urllib.request.Request(
            client.base_url + f"/jobs/{job_id}/events?max_events=2",
            headers={"Accept": SSE_CONTENT_TYPE},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["Content-Type"] == SSE_CONTENT_TYPE
            body = response.read().decode("utf-8")
        assert "event: job" in body
        assert "id: " in body
        assert '"state": "queued"' in body


class TestHealthAndMetrics:
    def test_healthz_carries_the_orchestration_block(self, service):
        _, client = service
        health = client.healthz()
        assert health["status"] == "ok"
        orchestration = health["orchestration"]
        stream = orchestration["stream"]
        assert set(stream) == {
            "clients", "last_event_id", "dropped_total", "ring_size"
        }
        assert set(orchestration["counters"]) == {
            "alarms_total", "defense_flips_total"
        }
        assert set(orchestration["live"]) == {"aggregators", "responders"}

    def test_draining_service_reports_503_with_the_same_shape(self, service):
        app, client = service
        app.scheduler.begin_drain()
        health = client.healthz()
        assert health["status"] == "draining"
        assert "orchestration" in health
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(client.base_url + "/healthz", timeout=10)
        assert excinfo.value.code == 503

    def test_metrics_expose_the_stream_and_orchestration_series(self, service):
        _, client = service
        client.submit("fake", entry_point=WELL_BEHAVED, seed=15, wait=True)
        text = client.metrics_text()
        for name in (
            "repro_stream_clients",
            "repro_stream_dropped_total",
            "repro_stream_last_event_id",
            "repro_alarms_total",
            "repro_defense_flips_total",
        ):
            assert f"\n{name} " in text or text.startswith(f"{name} "), name
