"""Deterministic fault injection (repro.faults) and the hardened stack."""

import dataclasses

import pytest

from repro.channels.wb import (
    WBChannelConfig,
    run_robust_wb_channel,
    run_wb_channel,
)
from repro.channels.wb.protocol import BinaryDirtyCodec
from repro.common.errors import ConfigurationError
from repro.common.rng import derive_seed
from repro.faults import (
    DEFAULT_FAULT_SPEC,
    DEFAULT_FLEET_FAULT_SPEC,
    CoRunnerProgram,
    FaultSpec,
    apply_measurement_faults,
    build_fault_schedule,
    desched_plan,
    emit_fault_events,
    fleet_fault_decision,
    schedules_equal,
)
from repro.faults.chaos import CHAOS_MARKER_ENV, CHAOS_TASK_ENV, _chaos_armed
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import EventKind
from repro.telemetry.subscribers import TraceRecorder, WindowedCounters


def schedule_for(spec, seed=7, num_symbols=200, num_slots=220):
    return build_fault_schedule(
        spec,
        seed=seed,
        num_symbols=num_symbols,
        period=5500,
        start_time=1000,
        num_slots=num_slots,
    )


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(desched_rate=-0.1)

    def test_window_and_magnitude_validated(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(desched_min_periods=2.0, desched_max_periods=1.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(drift_cycles_per_symbol=-1.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(corunner_accesses=0)

    def test_scaled_scales_rates_and_drift_only(self):
        spec = DEFAULT_FAULT_SPEC.scaled(2.0)
        assert spec.drop_rate == pytest.approx(DEFAULT_FAULT_SPEC.drop_rate * 2)
        assert spec.drift_cycles_per_symbol == pytest.approx(
            DEFAULT_FAULT_SPEC.drift_cycles_per_symbol * 2
        )
        # Magnitudes are intensity-invariant.
        assert spec.desched_max_periods == DEFAULT_FAULT_SPEC.desched_max_periods
        assert spec.corunner_accesses == DEFAULT_FAULT_SPEC.corunner_accesses
        assert spec.drift_limit_cycles == DEFAULT_FAULT_SPEC.drift_limit_cycles

    def test_scaled_clamps_rates_at_one(self):
        spec = DEFAULT_FAULT_SPEC.scaled(1000.0)
        assert spec.drop_rate == 1.0
        assert spec.corunner_rate == 1.0

    def test_scaled_zero_is_fault_free(self):
        spec = DEFAULT_FAULT_SPEC.scaled(0.0)
        assert schedule_for(spec).empty

    def test_scaled_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_FAULT_SPEC.scaled(-1.0)

    def test_to_dict_round_trips(self):
        spec = DEFAULT_FAULT_SPEC.scaled(0.5)
        assert FaultSpec(**spec.to_dict()) == spec

    def test_to_dict_omits_fleet_fields_at_defaults(self):
        """Key-stability: specs predating the fleet fields must keep
        producing byte-identical canonical dicts (scenario KEYS.json
        pins hash this form)."""
        data = DEFAULT_FAULT_SPEC.to_dict()
        for name in (
            "heartbeat_stale_rate",
            "upload_drop_rate",
            "store_slow_rate",
            "store_slow_seconds",
        ):
            assert name not in data

    def test_to_dict_keeps_fleet_fields_when_set(self):
        spec = FaultSpec(upload_drop_rate=0.25, store_slow_seconds=0.1)
        data = spec.to_dict()
        assert data["upload_drop_rate"] == 0.25
        assert data["store_slow_seconds"] == 0.1
        assert "heartbeat_stale_rate" not in data  # still at default
        assert FaultSpec(**data) == spec

    def test_fleet_rates_validated_and_scaled(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(heartbeat_stale_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(store_slow_seconds=-0.1)
        spec = FaultSpec(upload_drop_rate=0.2, store_slow_rate=0.1)
        doubled = spec.scaled(2.0)
        assert doubled.upload_drop_rate == pytest.approx(0.4)
        assert doubled.store_slow_rate == pytest.approx(0.2)
        # Magnitudes are intensity-invariant; rates clamp at 1.
        assert doubled.store_slow_seconds == spec.store_slow_seconds
        assert spec.scaled(100.0).upload_drop_rate == 1.0


class TestFleetFaultDecision:
    def test_pure_function_of_spec_seed_key_attempt(self):
        spec = DEFAULT_FLEET_FAULT_SPEC
        for key in ("a" * 64, "b" * 64):
            for attempt in (1, 2, 3):
                first = fleet_fault_decision(spec, 7, key, attempt)
                second = fleet_fault_decision(spec, 7, key, attempt)
                assert first == second

    def test_decisions_vary_across_attempts_and_keys(self):
        spec = DEFAULT_FLEET_FAULT_SPEC.scaled(3.0)
        faults = {
            fleet_fault_decision(spec, 7, f"{index:064d}", attempt).fault
            for index in range(40)
            for attempt in (1, 2)
        }
        assert len(faults) > 1  # not everything collapses to one class

    def test_at_most_one_fault_per_attempt(self):
        spec = DEFAULT_FLEET_FAULT_SPEC.scaled(5.0)
        for index in range(100):
            decision = fleet_fault_decision(spec, 3, f"{index:064x}", 1)
            flags = [
                decision.crash,
                decision.hang,
                decision.stale_heartbeat,
                decision.drop_upload,
                decision.slow_store,
            ]
            assert sum(flags) <= 1
            if decision.fault is None:
                assert not any(flags)

    def test_intensity_zero_is_fault_free(self):
        spec = DEFAULT_FLEET_FAULT_SPEC.scaled(0.0)
        for index in range(50):
            decision = fleet_fault_decision(spec, 11, f"{index:064x}", 1)
            assert decision.fault is None
            assert not decision.loses_lease

    def test_loses_lease_classification(self):
        # Crash/hang/stale-heartbeat/dropped-upload all end in lease
        # expiry and re-dispatch; a slow store completes normally.
        lossy = FaultSpec(worker_crash_rate=1.0)
        decision = fleet_fault_decision(lossy, 0, "k" * 64, 1)
        assert decision.crash and decision.loses_lease
        slow = FaultSpec(store_slow_rate=1.0, store_slow_seconds=0.25)
        decision = fleet_fault_decision(slow, 0, "k" * 64, 1)
        assert decision.slow_store and not decision.loses_lease
        assert decision.store_slow_seconds == 0.25

    def test_default_fleet_regime_bites_but_mostly_succeeds(self):
        """At intensity 1.0 a meaningful minority of attempts misbehave
        (the chaos campaign exercises every recovery path) without the
        regime degenerating into all-faults."""
        spec = DEFAULT_FLEET_FAULT_SPEC
        faulty = sum(
            1
            for index in range(500)
            if fleet_fault_decision(spec, 1, f"{index:064x}", 1).fault
        )
        assert 100 <= faulty <= 300


class TestFaultSchedule:
    def test_same_seed_same_schedule(self):
        first = schedule_for(DEFAULT_FAULT_SPEC, seed=11)
        second = schedule_for(DEFAULT_FAULT_SPEC, seed=11)
        assert schedules_equal(first, second)

    def test_different_seed_different_schedule(self):
        first = schedule_for(DEFAULT_FAULT_SPEC.scaled(3.0), seed=11)
        second = schedule_for(DEFAULT_FAULT_SPEC.scaled(3.0), seed=12)
        assert not schedules_equal(first, second)

    def test_per_class_streams_are_rate_invariant(self):
        """Raising one class's rate never moves another class's events."""
        base = schedule_for(DEFAULT_FAULT_SPEC, seed=5)
        loud = schedule_for(
            dataclasses.replace(DEFAULT_FAULT_SPEC, corunner_rate=1.0), seed=5
        )
        assert loud.dropped_slots == base.dropped_slots
        assert loud.duplicated_slots == base.duplicated_slots
        assert loud.sender_desched == base.sender_desched
        assert loud.receiver_desched == base.receiver_desched
        assert len(loud.corunner_bursts) == loud.num_symbols

    def test_drift_is_monotone_and_saturates(self):
        spec = dataclasses.replace(
            DEFAULT_FAULT_SPEC, drift_cycles_per_symbol=0.5, drift_limit_cycles=15.0
        )
        schedule = schedule_for(spec, num_symbols=100, num_slots=100)
        offsets = schedule.drift_offsets
        assert list(offsets) == sorted(offsets)
        assert offsets[0] == 0
        assert max(offsets) == 15
        assert offsets[-1] == 15  # saturated well before the end

    def test_symbol_origin_continues_the_drift_ramp(self):
        spec = dataclasses.replace(DEFAULT_FAULT_SPEC, drift_cycles_per_symbol=0.1)
        first = build_fault_schedule(
            spec, seed=1, num_symbols=50, period=5500, start_time=0
        )
        continued = build_fault_schedule(
            spec, seed=2, num_symbols=50, period=5500, start_time=0,
            symbol_origin=50,
        )
        combined = build_fault_schedule(
            spec, seed=1, num_symbols=100, period=5500, start_time=0
        )
        assert first.drift_offsets == combined.drift_offsets[:50]
        assert continued.drift_offsets == combined.drift_offsets[50:]

    def test_geometry_validated(self):
        with pytest.raises(ConfigurationError):
            build_fault_schedule(DEFAULT_FAULT_SPEC, 0, num_symbols=0,
                                 period=5500, start_time=0)
        with pytest.raises(ConfigurationError):
            build_fault_schedule(DEFAULT_FAULT_SPEC, 0, num_symbols=10,
                                 period=0, start_time=0)
        with pytest.raises(ConfigurationError):
            build_fault_schedule(DEFAULT_FAULT_SPEC, 0, num_symbols=10,
                                 period=5500, start_time=0, num_slots=5)

    def test_summary_counts_events(self):
        schedule = schedule_for(DEFAULT_FAULT_SPEC.scaled(3.0), seed=3)
        summary = schedule.summary()
        assert summary["seed"] == 3
        assert summary["dropped_slots"] == len(schedule.dropped_slots)
        assert summary["corunner_bursts"] == len(schedule.corunner_bursts)
        assert summary["max_drift_cycles"] == max(schedule.drift_offsets)


class TestInjector:
    def test_desched_plan_per_party(self):
        schedule = schedule_for(DEFAULT_FAULT_SPEC.scaled(5.0), seed=13)
        assert desched_plan(schedule, "sender") == dict(schedule.sender_desched)
        assert desched_plan(schedule, "receiver") == dict(
            schedule.receiver_desched
        )
        with pytest.raises(ConfigurationError):
            desched_plan(schedule, "bystander")

    def test_corunner_program_needs_lines(self):
        with pytest.raises(ConfigurationError):
            CoRunnerProgram(lines=[], bursts=[(0, 4)])

    def test_measurement_faults_drop_duplicate_drift(self):
        samples = [(1000 * slot, 134) for slot in range(8)]
        schedule = dataclasses.replace(
            schedule_for(DEFAULT_FAULT_SPEC, num_symbols=8, num_slots=8),
            dropped_slots=(2,),
            duplicated_slots=(5,),
            drift_offsets=tuple(range(8)),
        )
        out = apply_measurement_faults(samples, schedule)
        # One drop, one duplicate: same net length, different content.
        assert len(out) == 8
        assert (2000, 136) not in out  # slot 2 dropped
        assert out.count((5000, 139)) == 2  # slot 5 duplicated, drift +5
        assert out[0] == (0, 134)  # slot 0: zero drift

    def test_measurement_faults_without_events_is_identity_plus_drift(self):
        samples = [(10 * slot, 140) for slot in range(4)]
        schedule = dataclasses.replace(
            schedule_for(DEFAULT_FAULT_SPEC, num_symbols=4, num_slots=4),
            dropped_slots=(),
            duplicated_slots=(),
            drift_offsets=(0, 0, 0, 0),
        )
        assert apply_measurement_faults(samples, schedule) == samples


class TestFaultTelemetry:
    def test_emit_fault_events_reaches_subscribers(self):
        schedule = schedule_for(DEFAULT_FAULT_SPEC.scaled(4.0), seed=2)
        expected = (
            len(schedule.sender_desched)
            + len(schedule.receiver_desched)
            + len(schedule.dropped_slots)
            + len(schedule.duplicated_slots)
            + len(schedule.corunner_bursts)
        )
        assert expected > 0
        bus = TelemetryBus()
        counters = bus.subscribe(WindowedCounters(window=1 << 30))
        recorder = bus.subscribe(TraceRecorder(capacity=None))
        emitted = emit_fault_events(bus, schedule, target_set=17)
        counters.finish()
        assert emitted == expected
        assert recorder.total_events == expected
        kinds = {event.kind for event in recorder.events}
        assert kinds == {int(EventKind.FAULT)}
        assert all(event.set_index == 17 for event in recorder.events)
        # The faults land in the counters' dedicated tally, and in the
        # manifest-facing summary.
        assert counters.totals(0).faults == expected
        assert counters.summary()["levels"]["L0"]["faults"] == expected

    def test_emit_fault_events_honours_disabled_bus(self):
        schedule = schedule_for(DEFAULT_FAULT_SPEC.scaled(4.0), seed=2)
        bus = TelemetryBus(enabled=False)
        assert emit_fault_events(bus, schedule, target_set=0) == 0


class TestChaosArming:
    def test_arms_exactly_once(self, tmp_path, monkeypatch):
        marker = tmp_path / "chaos.marker"
        monkeypatch.setenv(CHAOS_MARKER_ENV, str(marker))
        monkeypatch.delenv(CHAOS_TASK_ENV, raising=False)
        assert _chaos_armed("table2")
        assert marker.exists()
        assert not _chaos_armed("table2")  # disarmed across "processes"

    def test_task_filter(self, tmp_path, monkeypatch):
        marker = tmp_path / "chaos.marker"
        monkeypatch.setenv(CHAOS_MARKER_ENV, str(marker))
        monkeypatch.setenv(CHAOS_TASK_ENV, "fig7")
        assert not _chaos_armed("table2")
        assert not marker.exists()
        assert _chaos_armed("fig7")

    def test_unset_means_no_chaos(self, monkeypatch):
        monkeypatch.delenv(CHAOS_MARKER_ENV, raising=False)
        assert not _chaos_armed("table2")


def faulted_config(intensity, seed=0, message_bits=64):
    return WBChannelConfig(
        codec=BinaryDirtyCodec(d_on=1),
        period_cycles=5500,
        message_bits=message_bits,
        seed=seed,
        faults=DEFAULT_FAULT_SPEC.scaled(intensity) if intensity else None,
    )


class TestFaultedChannel:
    def test_faulted_run_is_deterministic(self):
        first = run_wb_channel(faulted_config(1.0, seed=4))
        second = run_wb_channel(faulted_config(1.0, seed=4))
        assert first.fault_summary == second.fault_summary
        assert first.received_bits == second.received_bits
        assert first.bit_error_rate == second.bit_error_rate

    def test_fault_stream_is_separate_from_simulator_stream(self):
        """A faulted run perturbs measurements, not the sent message."""
        clean = run_wb_channel(faulted_config(0.0, seed=4))
        faulted = run_wb_channel(faulted_config(1.0, seed=4))
        assert clean.sent_bits == faulted.sent_bits
        assert clean.fault_summary is None
        assert faulted.fault_summary is not None

    def test_intensity_degrades_raw_channel(self):
        clean = run_wb_channel(faulted_config(0.0, seed=0))
        faulted = run_wb_channel(faulted_config(1.0, seed=0))
        assert clean.bit_error_rate == 0.0
        assert faulted.bit_error_rate > 0.10

    def test_fault_seed_label_is_per_round(self):
        assert derive_seed(0, "faults/round0") != derive_seed(0, "faults/round1")


class TestRobustRecovery:
    def test_hardened_stack_survives_where_raw_collapses(self):
        """The PR's acceptance property at quick scale: raw BER above 10%
        while the framed + CRC + resync + ARQ stack delivers the payload
        bit-exactly at reduced goodput."""
        raw = run_wb_channel(faulted_config(1.0, seed=0, message_bits=80))
        assert raw.bit_error_rate > 0.10
        hardened = run_robust_wb_channel(faulted_config(1.0, seed=0))
        assert hardened.payload_intact
        assert hardened.recovered_bits == hardened.payload_bits
        assert hardened.frames_recovered == hardened.frames_total
        assert 0.0 < hardened.goodput_kbps < hardened.rate_kbps
        assert len(hardened.fault_summaries) == hardened.rounds_used

    def test_fault_free_robust_run_uses_one_round(self):
        result = run_robust_wb_channel(faulted_config(0.0, seed=1))
        assert result.payload_intact
        assert result.rounds_used == 1
        assert result.retransmissions == 0
        assert result.fault_summaries == ()
