"""Unit tests of the fast engine's pieces.

Parity with the reference engine is covered by ``test_engine_parity.py``;
these tests pin down the fast structures in isolation: FastSet semantics,
the engine selection switch, the fast policy-state registry, and the
workload generators.
"""

import random

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.engine import (
    FastCache,
    FastSet,
    available_engines,
    cache_class,
    current_engine,
    engine_context,
    fig6_workload,
    random_workload,
    resolve_engine,
    set_engine,
)
from repro.cache.cache import Cache
from repro.replacement import TrueLRU


def make_set(ways=4, seed=0):
    return FastSet(ways, TrueLRU(ways, random.Random(seed)))


def addr(tag, set_index):
    return tag  # trivial reconstructor for unit tests


class TestFastSet:
    def test_fills_invalid_ways_first(self):
        fast_set = make_set()
        for tag in range(4):
            assert fast_set.fill(tag, False, None, 0, addr) is None
        assert fast_set.valid_count() == 4

    def test_eviction_reports_victim(self):
        fast_set = make_set()
        for tag in range(4):
            fast_set.fill(tag, tag == 0, None, 0, addr)
        evicted = fast_set.fill(99, False, None, 0, addr)
        assert evicted is not None
        assert evicted.address == 0  # LRU: tag 0 was oldest
        assert evicted.dirty

    def test_duplicate_fill_rejected(self):
        fast_set = make_set()
        fast_set.fill(7, False, None, 0, addr)
        with pytest.raises(SimulationError):
            fast_set.fill(7, False, None, 0, addr)

    def test_mark_dirty_and_counters(self):
        fast_set = make_set()
        fast_set.fill(0, False, None, 0, addr)
        fast_set.fill(1, True, None, 0, addr)
        assert (fast_set.valid_count(), fast_set.dirty_count()) == (2, 1)
        fast_set.mark_dirty(fast_set.find(0))
        fast_set.mark_dirty(fast_set.find(0))  # idempotent
        assert fast_set.dirty_count() == 2
        with pytest.raises(SimulationError):
            fast_set.mark_dirty(3)  # invalid way

    def test_invalidate_reports_final_state(self):
        fast_set = make_set()
        fast_set.fill(5, True, 2, 0, addr)
        snapshot = fast_set.invalidate(5)
        assert snapshot.dirty
        assert snapshot.owner == 2
        assert fast_set.find(5) is None
        assert fast_set.invalidate(5) is None

    def test_invalidate_all(self):
        fast_set = make_set()
        for tag in range(4):
            fast_set.fill(tag, True, None, 0, addr)
        fast_set.lock(0)
        fast_set.invalidate_all()
        assert fast_set.valid_mask == 0
        assert fast_set.dirty_mask == 0
        assert fast_set.locked_mask == 0
        assert fast_set.index_snapshot() == {}
        assert fast_set.scan_counts() == (0, 0)

    def test_locked_line_never_evicted(self):
        fast_set = make_set()
        for tag in range(4):
            fast_set.fill(tag, False, None, 0, addr)
        assert fast_set.lock(0)
        for fresh in range(100, 110):
            fast_set.fill(fresh, False, None, 0, addr)
        assert fast_set.find(0) is not None

    def test_all_locked_raises(self):
        fast_set = make_set()
        for tag in range(4):
            fast_set.fill(tag, False, None, 0, addr)
            fast_set.lock(tag)
        with pytest.raises(SimulationError):
            fast_set.choose_victim()

    def test_empty_allowed_ways_rejected(self):
        fast_set = make_set()
        for tag in range(4):
            fast_set.fill(tag, False, None, 0, addr)
        with pytest.raises(ConfigurationError):
            fast_set.choose_victim(allowed_ways=())

    def test_fill_respects_allowed_ways(self):
        fast_set = make_set()
        for tag in range(4):
            fast_set.fill(tag, False, None, 0, addr)
        for fresh in range(10, 20):
            fast_set.fill(fresh, False, None, 0, addr, allowed_ways=(0, 1))
        assert fast_set.tags[2] in range(4)
        assert fast_set.tags[3] in range(4)

    def test_way_states_normalises_invalid_ways(self):
        fast_set = make_set()
        fast_set.fill(3, True, 1, 0, addr)
        states = fast_set.way_states()
        way = fast_set.find(3)
        assert states[way] == (True, 3, True, False, 1)
        for other, state in enumerate(states):
            if other != way:
                assert state == (False, None, False, False, None)

    def test_index_never_goes_stale(self):
        rng = random.Random(7)
        fast_set = make_set(seed=2)
        for _ in range(600):
            op = rng.randrange(3)
            tag = rng.randrange(10)
            if op == 0 and fast_set.find(tag) is None:
                fast_set.fill(tag, rng.random() < 0.3, None, 0, addr)
            elif op == 1:
                fast_set.invalidate(tag)
            elif op == 2 and rng.random() < 0.05:
                fast_set.invalidate_all()
            rebuilt = {
                fast_set.tags[way]: way
                for way in range(fast_set.ways)
                if (fast_set.valid_mask >> way) & 1
            }
            assert fast_set.index_snapshot() == rebuilt
            assert fast_set.scan_counts() == (
                fast_set.valid_count(),
                fast_set.dirty_count(),
            )

    def test_policy_attribute_preserved_for_introspection(self):
        policy = TrueLRU(4, random.Random(0))
        fast_set = FastSet(4, policy)
        assert fast_set.policy is policy

    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            FastSet(4, TrueLRU(8, random.Random(0)))
        with pytest.raises(ConfigurationError):
            FastSet(0, TrueLRU(1, random.Random(0)))


class TestSelection:
    def test_available_engines(self):
        assert available_engines() == ["reference", "fast", "batch"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_engine("warp")

    def test_cache_class_mapping(self):
        assert cache_class("reference") is Cache
        assert cache_class("fast") is FastCache
        # "batch" changes sweep execution, not single-hierarchy storage.
        assert cache_class("batch") is FastCache

    def test_engine_context_restores_previous(self):
        before = current_engine()
        with engine_context("fast"):
            assert current_engine() == "fast"
            assert cache_class() is FastCache
        assert current_engine() == before

    def test_engine_context_none_is_noop(self):
        before = current_engine()
        with engine_context(None):
            assert current_engine() == before

    def test_set_engine_returns_previous(self):
        previous = set_engine("fast")
        try:
            assert current_engine() == "fast"
        finally:
            set_engine(previous)


class TestFastStateRegistry:
    def test_every_registered_policy_has_a_fast_path(self):
        from repro.replacement.fast_state import has_fast_state
        from repro.replacement.registry import _REGISTRY

        for name, policy_cls in _REGISTRY.items():
            assert has_fast_state(policy_cls), (
                f"policy {name!r} ({policy_cls.__name__}) would silently "
                "fall back to the adapter"
            )

    def test_unregistered_subclass_falls_back_to_adapter(self):
        from repro.replacement.fast_state import AdapterState, fast_state_for

        class CustomLRU(TrueLRU):
            pass

        state = fast_state_for(CustomLRU(4, random.Random(0)))
        assert isinstance(state, AdapterState)

    def test_adapter_forwards_dirty_hint_opt_in(self):
        from repro.replacement.fast_state import AdapterState

        class HintedLRU(TrueLRU):
            wants_dirty_hint = True

        state = AdapterState(HintedLRU(4, random.Random(0)))
        assert state.wants_dirty_hint


class TestWorkloads:
    def test_fig6_workload_deterministic(self):
        assert fig6_workload(num_symbols=16, seed=3) == fig6_workload(
            num_symbols=16, seed=3
        )
        assert fig6_workload(num_symbols=16, seed=3) != fig6_workload(
            num_symbols=16, seed=4
        )

    def test_fig6_workload_validation(self):
        with pytest.raises(ConfigurationError):
            fig6_workload(num_symbols=0)
        with pytest.raises(ConfigurationError):
            fig6_workload(d=9, sender_lines=8)

    def test_fig6_workload_targets_one_set(self):
        from repro.mem.address import AddressLayout

        layout = AddressLayout(line_size=64, num_sets=64)
        trace = fig6_workload(num_symbols=8, target_set=21, layout=layout)
        assert {layout.set_index(address) for address, _ in trace} == {21}

    def test_random_workload_bounds(self):
        trace = list(random_workload(num_accesses=500, working_set_lines=32))
        assert len(trace) == 500
        assert all(address < 32 * 64 for address, _ in trace)
        with pytest.raises(ConfigurationError):
            list(random_workload(num_accesses=0))
        with pytest.raises(ConfigurationError):
            list(random_workload(write_ratio=1.5))


class TestFastCacheStructure:
    def test_hierarchy_builds_fast_sets(self):
        from repro.cache.configs import make_xeon_hierarchy

        hierarchy = make_xeon_hierarchy(rng=random.Random(0), engine="fast")
        for level in hierarchy.levels:
            assert type(level) is FastCache
            assert all(type(s) is FastSet for s in level.sets)
        # Policy type introspection still works (test_cache_configs idiom).
        assert type(hierarchy.l1.sets[0].policy).__name__ == "TreePLRU"

    def test_reference_remains_default(self):
        from repro.cache.configs import make_xeon_hierarchy

        hierarchy = make_xeon_hierarchy(rng=random.Random(0))
        assert type(hierarchy.l1) is Cache

    def test_profile_engine_validation(self):
        from repro.experiments.profiles import RunProfile

        with pytest.raises(ConfigurationError):
            RunProfile("bad", engine="warp")
        profile = RunProfile("ok", engine="fast")
        assert RunProfile.from_dict(profile.to_dict()) == profile
        # Pre-engine manifests (no engine key) load as engine=None.
        legacy = {"name": "quick", "reduced": True}
        assert RunProfile.from_dict(legacy).engine is None
