"""HTTP API surface: routes, status codes, and bit-identical serving."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import run_experiment
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import ServiceApp, make_server
from repro.service.store import ResultStore
from tests.fake_experiments import COUNT_FILE_ENV, GATE_FILE_ENV

WELL_BEHAVED = "tests.fake_experiments:well_behaved"
GATED = "tests.fake_experiments:gated_count"


@pytest.fixture
def service(tmp_path):
    """A running service on an ephemeral port; yields its client."""
    store = ResultStore(tmp_path / "store")
    app = ServiceApp(store, workers=2, queue_depth=8)
    with app:
        server = make_server(app)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield ServiceClient(f"http://{host}:{port}")
        finally:
            server.shutdown()
            server.server_close()


class TestRoutes:
    def test_experiments_lists_the_registry(self, service):
        experiments = service.experiments()
        assert "fig6" in experiments
        assert "table4" in experiments

    def test_submit_wait_and_fetch_result(self, service):
        job = service.submit(
            "fake", entry_point=WELL_BEHAVED, seed=5, wait=True
        )
        assert job["state"] == "done"
        assert job["source"] == "computed"
        result = service.result(str(job["result_key"]))
        assert isinstance(result, ExperimentResult)
        assert result.rows == [[5]]
        record = service.job(str(job["job_id"]))
        assert record["state"] == "done"

    def test_results_are_bit_identical_to_a_direct_run(self, service):
        job = service.submit("table4", profile="quick", seed=3, wait=True)
        assert job["state"] == "done"
        served = service.result_bytes(str(job["result_key"]))
        direct = run_experiment("table4", profile="quick", seed=3)
        assert served == direct.to_json().encode("utf-8")

    def test_identical_resubmission_is_served_from_store(self, service):
        first = service.submit(
            "fake", entry_point=WELL_BEHAVED, seed=1, wait=True
        )
        computations = service.healthz()["scheduler"]["computations"]
        second = service.submit(
            "fake", entry_point=WELL_BEHAVED, seed=1, wait=True
        )
        assert second["state"] == "done"
        assert second["source"] == "store"
        assert second["result_key"] == first["result_key"]
        after = service.healthz()["scheduler"]["computations"]
        assert after == computations  # no new work for the warm hit

    def test_healthz_shape(self, service):
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0
        for section in ("scheduler", "store", "telemetry"):
            assert isinstance(health[section], dict)
        assert health["scheduler"]["workers"] == 2

    def test_metrics_exposition(self, service):
        service.submit("fake", entry_point=WELL_BEHAVED, seed=2, wait=True)
        text = service.metrics_text()
        for series in (
            "repro_service_jobs_submitted_total",
            "repro_service_queued",
            "repro_service_store_hits_total",
            "repro_service_store_hit_rate",
            "repro_service_bus_events_total",
            "repro_service_uptime_seconds",
        ):
            assert series in text
        assert 'repro_service_bus_events_total{kind="miss"} 1' in text


class TestErrorCodes:
    def test_unknown_experiment_is_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.submit("not-a-thing")
        assert excinfo.value.status == 400

    def test_malformed_body_is_400(self, service):
        request = urllib.request.Request(
            service.base_url + "/jobs", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_missing_experiment_id_is_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service._json("POST", "/jobs", {"seed": 1}, ok=(200, 202))
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.job("job-424242")
        assert excinfo.value.status == 404

    def test_invalid_result_key_is_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.result_bytes("../../etc/passwd")
        assert excinfo.value.status == 400

    def test_absent_result_key_is_404(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.result_bytes("0" * 64)
        assert excinfo.value.status == 404

    def test_unrouted_paths_are_404(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service._json("GET", "/nope")
        assert excinfo.value.status == 404


class TestBackpressureOverHTTP:
    @pytest.fixture
    def tight_service(self, tmp_path, monkeypatch):
        """workers=1, queue_depth=1, with the gate fake wired up."""
        monkeypatch.setenv(COUNT_FILE_ENV, str(tmp_path / "invocations"))
        monkeypatch.setenv(GATE_FILE_ENV, str(tmp_path / "gate"))
        store = ResultStore(tmp_path / "store")
        app = ServiceApp(store, workers=1, queue_depth=1)
        with app:
            server = make_server(app)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            host, port = server.server_address[:2]
            try:
                yield ServiceClient(f"http://{host}:{port}"), tmp_path
            finally:
                (tmp_path / "gate").write_text("go")  # release stragglers
                time.sleep(0.05)
                server.shutdown()
                server.server_close()

    def _wait_running(self, client):
        deadline = time.monotonic() + 10
        while client.healthz()["scheduler"]["running"] != 1:
            assert time.monotonic() < deadline, "job never started running"
            time.sleep(0.01)

    def test_queue_full_is_429_with_retry_after(self, tight_service):
        client, tmp_path = tight_service
        running = client.submit("fake", entry_point=GATED, seed=0)
        assert running["state"] in ("queued", "running")
        self._wait_running(client)
        queued = client.submit("fake", entry_point=GATED, seed=1)
        assert queued["state"] == "queued"
        body = json.dumps(
            {"experiment_id": "fake", "entry_point": GATED, "seed": 2}
        ).encode()
        request = urllib.request.Request(
            client.base_url + "/jobs", data=body,
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 429
        # The hint is derived from queue depth / worker count, not a
        # constant: 1 running + 1 queued + the rejected one over a
        # single worker must wait at least the nominal seconds-per-job.
        retry_after = excinfo.value.headers.get("Retry-After")
        assert retry_after is not None
        hinted = int(retry_after)
        assert 1 <= hinted <= 60
        expected = client.healthz()["scheduler"]["retry_after_seconds"]
        assert hinted == expected
        (tmp_path / "gate").write_text("go")
        assert client.wait(str(queued["job_id"]))["state"] == "done"

    def test_cancel_endpoint(self, tight_service):
        client, tmp_path = tight_service
        client.submit("fake", entry_point=GATED, seed=0)
        self._wait_running(client)
        queued = client.submit("fake", entry_point=GATED, seed=3)
        cancelled = client.cancel(str(queued["job_id"]))
        assert cancelled["cancelled"] is True
        assert cancelled["state"] == "cancelled"
        # A second cancel cannot take effect: 409 with the final state.
        again = client.cancel(str(queued["job_id"]))
        assert again["cancelled"] is False
        (tmp_path / "gate").write_text("go")
