"""Bit-sequence helpers, including Hypothesis round-trip properties."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bits import (
    bits_to_int,
    bits_to_string,
    chunk_bits,
    flatten,
    hamming_distance,
    int_to_bits,
    random_bits,
    string_to_bits,
    validate_bits,
)
from repro.common.errors import ProtocolError

bit_lists = st.lists(st.integers(min_value=0, max_value=1), max_size=64)


class TestRandomBits:
    def test_length(self):
        assert len(random_bits(100, random.Random(0))) == 100

    def test_deterministic_for_seed(self):
        assert random_bits(64, random.Random(5)) == random_bits(64, random.Random(5))

    def test_contains_both_values_eventually(self):
        bits = random_bits(256, random.Random(1))
        assert set(bits) == {0, 1}

    def test_rejects_negative_length(self):
        with pytest.raises(ProtocolError):
            random_bits(-1, random.Random(0))


class TestValidation:
    def test_accepts_binary(self):
        validate_bits([0, 1, 1, 0])

    def test_rejects_other_ints(self):
        with pytest.raises(ProtocolError):
            validate_bits([0, 2])

    def test_rejects_strings(self):
        with pytest.raises(ProtocolError):
            validate_bits(["1"])


class TestStringRoundTrip:
    @given(bit_lists)
    def test_roundtrip(self, bits):
        assert string_to_bits(bits_to_string(bits)) == bits

    def test_rejects_bad_char(self):
        with pytest.raises(ProtocolError):
            string_to_bits("01a")


class TestIntRoundTrip:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 32)) == value

    def test_known_value(self):
        assert bits_to_int([1, 0, 1]) == 5
        assert int_to_bits(5, 4) == [0, 1, 0, 1]

    def test_rejects_overflow(self):
        with pytest.raises(ProtocolError):
            int_to_bits(16, 4)

    def test_rejects_negative(self):
        with pytest.raises(ProtocolError):
            int_to_bits(-1, 4)


class TestChunking:
    def test_chunks(self):
        assert list(chunk_bits([1, 0, 1, 1], 2)) == [[1, 0], [1, 1]]

    def test_rejects_ragged(self):
        with pytest.raises(ProtocolError):
            list(chunk_bits([1, 0, 1], 2))

    def test_rejects_zero_chunk(self):
        with pytest.raises(ProtocolError):
            list(chunk_bits([1, 0], 0))

    @given(bit_lists.filter(lambda b: len(b) % 4 == 0))
    def test_flatten_inverts_chunk(self, bits):
        assert flatten(chunk_bits(bits, 4)) == bits


class TestHamming:
    def test_known(self):
        assert hamming_distance([1, 0, 1], [1, 1, 1]) == 1

    def test_rejects_unequal_lengths(self):
        with pytest.raises(ProtocolError):
            hamming_distance([1], [1, 0])

    @given(bit_lists)
    def test_self_distance_zero(self, bits):
        assert hamming_distance(bits, bits) == 0
