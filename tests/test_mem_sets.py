"""Replacement-set and conflict-line construction."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.mem.address import AddressLayout
from repro.mem.sets import build_replacement_set, build_set_conflicting_lines


@pytest.fixture
def layout():
    return AddressLayout(line_size=64, num_sets=64)


class TestConflictingLines:
    def test_all_map_to_target_set(self, space, layout):
        lines = build_set_conflicting_lines(space, layout, target_set=13, count=10)
        assert all(layout.set_index(line) == 13 for line in lines)

    def test_distinct_tags(self, space, layout):
        lines = build_set_conflicting_lines(space, layout, target_set=13, count=10)
        tags = {layout.tag(line) for line in lines}
        assert len(tags) == 10

    def test_distinct_physical_lines(self, space, layout):
        lines = build_set_conflicting_lines(space, layout, target_set=5, count=8)
        physical = {space.translate(line) for line in lines}
        assert len(physical) == 8

    def test_pages_are_premapped(self, space, layout):
        lines = build_set_conflicting_lines(space, layout, target_set=5, count=4)
        assert all(space.is_mapped(line) for line in lines)

    def test_rejects_bad_target_set(self, space, layout):
        with pytest.raises(ConfigurationError):
            build_set_conflicting_lines(space, layout, target_set=64, count=4)

    def test_rejects_zero_count(self, space, layout):
        with pytest.raises(ConfigurationError):
            build_set_conflicting_lines(space, layout, target_set=0, count=0)

    def test_successive_builds_disjoint(self, space, layout):
        first = set(build_set_conflicting_lines(space, layout, 3, 10))
        second = set(build_set_conflicting_lines(space, layout, 3, 10))
        assert not first & second


class TestReplacementSet:
    def test_size_and_set(self, space, layout):
        lines = build_replacement_set(space, layout, target_set=21, size=10)
        assert len(lines) == 10
        assert all(layout.set_index(line) == 21 for line in lines)

    def test_order_is_permuted(self, space, layout):
        # With a seeded RNG the shuffled order differs from the natural
        # stride order (vanishingly unlikely to match for 12 elements).
        lines = build_replacement_set(
            space, layout, target_set=21, size=12, rng=random.Random(3)
        )
        assert lines != sorted(lines)

    def test_deterministic_for_seed(self, allocator, layout):
        from repro.mem.address_space import AddressSpace

        one = build_replacement_set(
            AddressSpace(pid=1, allocator=allocator), layout, 9, 10,
            rng=random.Random(5),
        )
        two_space = AddressSpace(pid=2, allocator=allocator)
        two = build_replacement_set(two_space, layout, 9, 10, rng=random.Random(5))
        # Same virtual addresses in the same relative order (different
        # spaces, so physical addresses differ).
        assert one == two
