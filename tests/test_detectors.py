"""Online detectors: synthetic periodic bursts flagged, benign traffic not."""

import random

import pytest

from repro.telemetry import (
    Baseline,
    CacheEvent,
    EventKind,
    MissRateMonitor,
    WritebackBurstDetector,
    autocorrelation,
    detection_rate,
    suggest_threshold,
    threshold_sweep,
)

SUSPECT = 0
CLOCK = 1


def event(time, kind, level=1, owner=SUSPECT):
    return CacheEvent(time, kind, level, 0, owner, 0x1000 + 64 * time, False, False)


def feed_counts(detector, counts, kind=EventKind.WRITEBACK):
    """One logical tick per entry; ``counts[t]`` events of ``kind`` at t."""
    for t, count in enumerate(counts):
        # An access event anchors every tick so empty ticks still form
        # windows via gap-filling from the next event's timestamp.
        detector.on_event(event(t, EventKind.HIT))
        for _ in range(count):
            detector.on_event(event(t, kind))
    detector.finish()


def periodic_counts(length, period=4, burst=3):
    """A burst of ``burst`` write-backs at the start of every period."""
    return [burst if t % period == 0 else 0 for t in range(length)]


def benign_counts(length, rate=0.25, seed=42):
    rng = random.Random(seed)
    return [1 if rng.random() < rate else 0 for t in range(length)]


class TestAutocorrelation:
    def test_periodic_series_peaks_at_period(self):
        series = periodic_counts(64, period=4)
        spectrum = autocorrelation(series, max_lag=8)
        assert spectrum[3] == max(spectrum)  # r_4 is spectrum[3]
        assert spectrum[3] > 0.5

    def test_constant_series_is_all_zeros(self):
        assert autocorrelation([5.0] * 32, max_lag=4) == (0.0,) * 4

    def test_empty_series_is_all_zeros(self):
        assert autocorrelation([], max_lag=3) == (0.0,) * 3

    def test_lags_beyond_length_are_zero(self):
        spectrum = autocorrelation([1.0, 2.0], max_lag=4)
        assert spectrum[2] == 0.0 and spectrum[3] == 0.0


class TestBaseline:
    def test_fit_mean_and_floored_std(self):
        baseline = Baseline.fit([(0.0, 10.0), (2.0, 10.0)])
        assert baseline.mean == (1.0, 10.0)
        assert baseline.std == (1.0, 1.0)  # dim 2 floored up to 1.0

    def test_deviation_is_max_abs_z(self):
        baseline = Baseline.fit([(0.0, 0.0), (2.0, 0.0)])
        assert baseline.deviation((5.0, 0.5)) == pytest.approx(4.0)

    def test_fit_rejects_empty_and_ragged(self):
        with pytest.raises(ValueError):
            Baseline.fit([])
        with pytest.raises(ValueError):
            Baseline.fit([(1.0,), (1.0, 2.0)])

    def test_deviation_rejects_wrong_dimension(self):
        baseline = Baseline.fit([(1.0, 2.0)])
        with pytest.raises(ValueError):
            baseline.deviation((1.0,))


class TestWritebackBurstDetector:
    def make(self, baseline=None):
        return WritebackBurstDetector(
            window=1, segment=32, max_lag=8, owner=SUSPECT, baseline=baseline
        )

    def calibrate(self, length=1280, seed=7):
        detector = self.make()
        feed_counts(detector, benign_counts(length, seed=seed))
        return Baseline.fit(detector.features)

    def test_periodic_bursts_flagged_benign_not(self):
        baseline = self.calibrate()
        # Threshold from a *disjoint* benign run's own scores.
        holdout = self.make(baseline)
        feed_counts(holdout, benign_counts(1280, seed=11))
        threshold = suggest_threshold(holdout.scores, sigmas=3.0)

        flagged = self.make(baseline)
        feed_counts(flagged, periodic_counts(1280))
        benign = self.make(baseline)
        feed_counts(benign, benign_counts(1280, seed=23))

        assert detection_rate(flagged.scores, threshold) == 1.0
        assert detection_rate(benign.scores, threshold) <= 0.1

    def test_shuffled_bursts_lose_the_signature(self):
        baseline = self.calibrate()
        counts = periodic_counts(1280)
        shuffled = list(counts)
        random.Random(5).shuffle(shuffled)

        periodic = self.make(baseline)
        feed_counts(periodic, counts)
        aperiodic = self.make(baseline)
        feed_counts(aperiodic, shuffled)

        # Same event totals, same marginal rate — only the periodicity
        # differs, and that is exactly what the autocorrelation sees.
        assert sum(counts) == sum(shuffled)
        assert max(aperiodic.scores) < min(periodic.scores)

    def test_segment_must_exceed_max_lag(self):
        with pytest.raises(ValueError):
            WritebackBurstDetector(window=1, segment=8, max_lag=8)

    def test_mark_resets_measurement(self):
        detector = self.make()
        feed_counts(detector, periodic_counts(64))
        assert detector.features
        detector.on_mark("reset-stats")
        assert detector.features == []
        assert detector.windows_seen == 0


class TestMissRateMonitor:
    def make(self, baseline=None):
        return MissRateMonitor(
            window=8, owner=SUSPECT, levels=(1,), baseline=baseline
        )

    def run_trace(self, detector, miss_pattern, seed=3):
        """Per tick: one access; ``miss_pattern(t)`` decides hit/miss."""
        rng = random.Random(seed)
        for t in range(512):
            kind = EventKind.MISS if miss_pattern(t, rng) else EventKind.HIT
            detector.on_event(event(t, kind))
        detector.finish()

    def test_burst_misses_flagged(self):
        benign_pattern = lambda t, rng: rng.random() < 0.05
        detector = self.make()
        self.run_trace(detector, benign_pattern, seed=3)
        baseline = Baseline.fit(detector.features)

        holdout = self.make(baseline)
        self.run_trace(holdout, benign_pattern, seed=4)
        threshold = suggest_threshold(holdout.scores, sigmas=3.0)

        # An LRU-style sender misses its whole window during 1-bits.
        bursty = self.make(baseline)
        self.run_trace(bursty, lambda t, rng: (t // 64) % 2 == 0, seed=5)
        quiet = self.make(baseline)
        self.run_trace(quiet, benign_pattern, seed=6)

        assert detection_rate(bursty.scores, threshold) >= 0.4
        assert detection_rate(quiet.scores, threshold) <= 0.1

    def test_ignores_other_owners(self):
        detector = self.make()
        for t in range(16):
            detector.on_event(event(t, EventKind.MISS, owner=9))
        detector.finish()
        assert detector.features == []


class TestClockOwnerWindows:
    def test_clock_thread_paces_windows(self):
        monitor = MissRateMonitor(
            window=2, owner=SUSPECT, levels=(1,), clock_owner=CLOCK
        )
        # Three suspect misses land before the first clock boundary...
        for t in range(3):
            monitor.on_event(event(t, EventKind.MISS))
        monitor.on_event(event(3, EventKind.HIT, owner=CLOCK))
        monitor.on_event(event(4, EventKind.HIT, owner=CLOCK))
        # ...one more suspect miss after it.
        monitor.on_event(event(5, EventKind.MISS))
        monitor.on_event(event(6, EventKind.HIT, owner=CLOCK))
        monitor.on_event(event(7, EventKind.HIT, owner=CLOCK))
        monitor.finish()
        assert [f[1] for f in monitor.features] == [3.0, 1.0]

    def test_clock_events_are_not_counted(self):
        monitor = MissRateMonitor(
            window=1, owner=None, levels=(1,), clock_owner=CLOCK
        )
        monitor.on_event(event(0, EventKind.MISS, owner=CLOCK))
        monitor.on_event(event(1, EventKind.HIT, owner=CLOCK))
        monitor.on_event(event(2, EventKind.HIT, owner=CLOCK))
        monitor.finish()
        # Each clock access closes a window=1 window; all empty of counts.
        assert monitor.features == [(0.0, 0.0, 0.0)] * 3

    def test_clock_writebacks_do_not_tick(self):
        monitor = MissRateMonitor(
            window=1, owner=SUSPECT, levels=(1,), clock_owner=CLOCK
        )
        monitor.on_event(event(0, EventKind.WRITEBACK, owner=CLOCK))
        monitor.on_event(event(1, EventKind.EVICT, owner=CLOCK))
        monitor.finish()
        assert monitor.windows_seen == 0

    def test_clock_owner_must_differ(self):
        with pytest.raises(ValueError):
            MissRateMonitor(window=4, owner=SUSPECT, clock_owner=SUSPECT)


class TestThresholdHelpers:
    def test_detection_rate(self):
        assert detection_rate([0.1, 0.9, 1.5], 0.5) == pytest.approx(2 / 3)
        assert detection_rate([], 0.5) == 0.0
        assert detection_rate([0.5], 0.5) == 0.0  # strictly above

    def test_suggest_threshold(self):
        assert suggest_threshold([1.0, 1.0], sigmas=3.0) == pytest.approx(1.0)
        assert suggest_threshold([0.0, 2.0], sigmas=1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            suggest_threshold([])

    def test_threshold_sweep_shape(self):
        rows = threshold_sweep(
            [0.0, 1.0],
            benign_scores=[0.5, 1.5],
            channel_scores={"wb": [0.2], "lru": [2.0]},
        )
        assert rows[0]["benign_fpr"] == 1.0
        assert rows[1]["benign_fpr"] == 0.5
        assert rows[1]["lru"] == 1.0
        assert rows[1]["wb"] == 0.0
