"""Cache-key canonicalisation: stability, sensitivity, live-object refusal."""

import pytest

from repro.channels.wb import WBChannelConfig
from repro.channels.encoding import BinaryDirtyCodec
from repro.common import canonical_json
from repro.common.errors import ConfigurationError
from repro.experiments.base import SCHEMA_VERSION
from repro.experiments.profiles import RunProfile
from repro.service.keys import (
    KEY_SCHEMA_VERSION,
    cache_key,
    key_material,
    wb_config_fingerprint,
)


class TestCacheKey:
    def test_key_is_sha256_hex(self):
        key = cache_key("fig6", profile="quick", seed=3)
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_key_is_stable_across_calls(self):
        first = cache_key("fig6", profile="quick", seed=3)
        second = cache_key("fig6", profile=RunProfile("quick", reduced=True),
                           seed=3)
        assert first == second

    def test_every_input_perturbs_the_key(self):
        base = cache_key("fig6", profile="quick", seed=0)
        assert cache_key("fig7", profile="quick", seed=0) != base
        assert cache_key("fig6", profile="full", seed=0) != base
        assert cache_key("fig6", profile="quick", seed=1) != base
        assert cache_key(
            "fig6", profile="quick", seed=0,
            entry_point="tests.fake_experiments:well_behaved",
        ) != base

    def test_engine_knob_perturbs_the_key(self):
        # Engines produce bit-identical results, but the profile is part
        # of the declared key material — keys stay conservative.
        reference = RunProfile("quick", reduced=True, engine="reference")
        fast = RunProfile("quick", reduced=True, engine="fast")
        assert (cache_key("fig6", profile=reference)
                != cache_key("fig6", profile=fast))

    def test_material_carries_both_schema_versions(self):
        material = key_material("fig6", profile="quick", seed=0)
        assert material["key_schema_version"] == KEY_SCHEMA_VERSION
        assert material["result_schema_version"] == SCHEMA_VERSION
        # The material must canonicalise under the strict version check.
        canonical_json(material, require_version=True)


class TestWBConfigFingerprint:
    def test_declarative_config_fingerprints(self):
        config = WBChannelConfig(
            codec=BinaryDirtyCodec(d_on=4), period_cycles=1600,
            message_bits=32, seed=9,
        )
        fingerprint = wb_config_fingerprint(config)
        assert fingerprint["period_cycles"] == 1600
        assert fingerprint["seed"] == 9
        assert "BinaryDirtyCodec" in fingerprint["codec"]
        # Same declarative config -> same key; different -> different.
        same = WBChannelConfig(
            codec=BinaryDirtyCodec(d_on=4), period_cycles=1600,
            message_bits=32, seed=9,
        )
        other = WBChannelConfig(
            codec=BinaryDirtyCodec(d_on=4), period_cycles=2200,
            message_bits=32, seed=9,
        )
        key = cache_key("direct", wb_config=config)
        assert cache_key("direct", wb_config=same) == key
        assert cache_key("direct", wb_config=other) != key

    def test_codec_distinguishes_configs(self):
        narrow = WBChannelConfig(codec=BinaryDirtyCodec(d_on=1))
        wide = WBChannelConfig(codec=BinaryDirtyCodec(d_on=8))
        assert (wb_config_fingerprint(narrow)["codec"]
                != wb_config_fingerprint(wide)["codec"])

    def test_live_injected_object_is_refused(self):
        config = WBChannelConfig(decoder=object())
        with pytest.raises(ConfigurationError, match="live object"):
            wb_config_fingerprint(config)

    def test_fingerprint_names_the_live_field(self):
        config = WBChannelConfig(hierarchy_factory=dict)
        with pytest.raises(ConfigurationError, match="hierarchy_factory"):
            wb_config_fingerprint(config)
