"""Defense mechanics: each cache variant's structural behaviour."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.defenses import (
    PLCache,
    RandomFillCache,
    RandomizedMappingCache,
    WayPartitionedCache,
    make_partitioned_hierarchy,
    make_plcache_hierarchy,
    make_random_fill_hierarchy,
    make_randomized_mapping_hierarchy,
    make_write_through_hierarchy,
)
from repro.defenses.partitioned import split_ways_evenly
from repro.defenses.randomized_mapping import find_eviction_set
from repro.mem.address_space import AddressSpace, FrameAllocator
from repro.mem.sets import build_set_conflicting_lines
from repro.replacement.registry import make_policy_factory


class TestPLCache:
    def test_protected_fills_are_locked(self):
        hierarchy = make_plcache_hierarchy(protected_owners=(0,), rng=random.Random(0))
        hierarchy.load(0x1000, owner=0)
        l1 = hierarchy.l1
        cache_set = l1.set_for(0x1000)
        way = cache_set.find(l1.layout.tag(0x1000))
        assert cache_set.lines[way].locked

    def test_unprotected_fills_not_locked(self):
        hierarchy = make_plcache_hierarchy(protected_owners=(0,), rng=random.Random(0))
        hierarchy.load(0x1000, owner=1)
        l1 = hierarchy.l1
        cache_set = l1.set_for(0x1000)
        way = cache_set.find(l1.layout.tag(0x1000))
        assert not cache_set.lines[way].locked

    def test_receiver_cannot_evict_locked_dirty_line(self):
        hierarchy = make_plcache_hierarchy(protected_owners=(0,), rng=random.Random(0))
        allocator = FrameAllocator()
        victim_space = AddressSpace(pid=0, allocator=allocator)
        attacker_space = AddressSpace(pid=1, allocator=allocator)
        layout = hierarchy.l1.layout
        victim_line = victim_space.translate(
            build_set_conflicting_lines(victim_space, layout, 5, 1)[0]
        )
        hierarchy.store(victim_line, owner=0)
        for va in build_set_conflicting_lines(attacker_space, layout, 5, 20):
            hierarchy.load(attacker_space.translate(va), owner=1)
        assert hierarchy.l1.probe(victim_line)
        assert hierarchy.l1.is_dirty(victim_line)

    def test_fill_bypass_when_all_locked(self):
        hierarchy = make_plcache_hierarchy(protected_owners=(0,), rng=random.Random(0))
        allocator = FrameAllocator()
        space = AddressSpace(pid=0, allocator=allocator)
        layout = hierarchy.l1.layout
        lines = build_set_conflicting_lines(space, layout, 3, 9)
        for va in lines:
            hierarchy.load(space.translate(va), owner=0)
        # Nine protected fills into an 8-way set: at least one bypassed.
        assert hierarchy.l1.bypassed_fills >= 1

    def test_store_to_bypassed_line_settles_deeper(self):
        hierarchy = make_plcache_hierarchy(protected_owners=(0,), rng=random.Random(0))
        allocator = FrameAllocator()
        space = AddressSpace(pid=0, allocator=allocator)
        layout = hierarchy.l1.layout
        lines = [space.translate(va)
                 for va in build_set_conflicting_lines(space, layout, 3, 9)]
        for line in lines[:8]:
            hierarchy.load(line, owner=0)
        hierarchy.store(lines[8], owner=0)  # bypassed fill + forwarded store
        assert not hierarchy.l1.probe(lines[8])


class TestWayPartitioning:
    def test_split_ways_evenly(self):
        assert split_ways_evenly(8, 2) == {0: (0, 1, 2, 3), 1: (4, 5, 6, 7)}

    def test_uneven_split_rejected(self):
        with pytest.raises(ConfigurationError):
            split_ways_evenly(8, 3)

    def test_allowed_ways_per_owner(self):
        hierarchy = make_partitioned_hierarchy(rng=random.Random(0))
        l1 = hierarchy.l1
        assert l1.allowed_ways(0) == (0, 1, 2, 3)
        assert l1.allowed_ways(1) == (4, 5, 6, 7)
        assert l1.allowed_ways(None) is None

    def test_cross_thread_eviction_impossible(self):
        hierarchy = make_partitioned_hierarchy(rng=random.Random(0))
        allocator = FrameAllocator()
        victim_space = AddressSpace(pid=0, allocator=allocator)
        attacker_space = AddressSpace(pid=1, allocator=allocator)
        layout = hierarchy.l1.layout
        victim_line = victim_space.translate(
            build_set_conflicting_lines(victim_space, layout, 9, 1)[0]
        )
        hierarchy.store(victim_line, owner=0)
        for va in build_set_conflicting_lines(attacker_space, layout, 9, 30):
            hierarchy.load(attacker_space.translate(va), owner=1)
        assert hierarchy.l1.probe(victim_line)

    def test_partition_validation(self):
        with pytest.raises(ConfigurationError):
            WayPartitionedCache(
                "x", 4096, 4, 64, make_policy_factory("lru"),
                rng=random.Random(0), partitions={0: ()},
            )
        with pytest.raises(ConfigurationError):
            WayPartitionedCache(
                "x", 4096, 4, 64, make_policy_factory("lru"),
                rng=random.Random(0), partitions={0: (9,)},
            )


class TestRandomFill:
    def test_demand_miss_not_installed(self):
        hierarchy = make_random_fill_hierarchy(window=4, rng=random.Random(0))
        address = 0x10000
        hierarchy.load(address, owner=1)
        # The demanded line itself is (almost always) not resident; a
        # neighbour is.  With window=4 P(self-fill)=1/9 per miss; assert
        # the decorrelation counter instead of the probabilistic outcome.
        assert hierarchy.l1.decorrelated_fills == 1

    def test_window_zero_behaves_normally(self):
        hierarchy = make_random_fill_hierarchy(window=0, rng=random.Random(0))
        hierarchy.load(0x10000, owner=1)
        assert hierarchy.l1.probe(0x10000)

    def test_store_hit_still_sets_dirty(self):
        # The paper's core argument for why random fill fails.
        hierarchy = make_random_fill_hierarchy(window=4, rng=random.Random(0))
        address = 0x10000
        for _ in range(60):
            hierarchy.load(address, owner=0)
            if hierarchy.l1.probe(address):
                break
        assert hierarchy.l1.probe(address), "random fill never self-filled"
        hierarchy.store(address, owner=0)
        assert hierarchy.l1.is_dirty(address)

    def test_negative_window_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomFillCache(
                "x", 4096, 4, 64, make_policy_factory("lru"),
                rng=random.Random(0), window=-1,
            )


class TestRandomizedMapping:
    def test_strides_no_longer_collide(self):
        hierarchy = make_randomized_mapping_hierarchy(rng=random.Random(0))
        l1 = hierarchy.l1
        stride = l1.layout.stride_between_conflicts()
        base = 0x40000
        indices = {l1.set_index(base + i * stride) for i in range(16)}
        assert len(indices) > 4  # classic mapping would give exactly 1

    def test_mapping_is_a_function(self):
        hierarchy = make_randomized_mapping_hierarchy(rng=random.Random(0))
        l1 = hierarchy.l1
        assert l1.set_index(0x1234) == l1.set_index(0x1234)

    def test_different_keys_different_mappings(self):
        a = make_randomized_mapping_hierarchy(key=0x1111, rng=random.Random(0)).l1
        b = make_randomized_mapping_hierarchy(key=0x2222, rng=random.Random(0)).l1
        addresses = [0x1000 * i for i in range(64)]
        assert [a.set_index(x) for x in addresses] != [b.set_index(x) for x in addresses]

    def test_cache_still_functions(self):
        hierarchy = make_randomized_mapping_hierarchy(rng=random.Random(0))
        hierarchy.load(0x5000, owner=0)
        assert hierarchy.l1.probe(0x5000)

    def test_rekey_flushes_and_advances_epoch(self):
        hierarchy = make_randomized_mapping_hierarchy(
            rekey_period_accesses=10, rng=random.Random(0)
        )
        hierarchy.load(0x5000, owner=0)
        for i in range(30):
            hierarchy.load(0x9000 + i * 64, owner=0)
        assert hierarchy.l1.rekey_count >= 1

    def test_eviction_set_profiling_defeats_fixed_key(self):
        hierarchy = make_randomized_mapping_hierarchy(rng=random.Random(0))
        space = AddressSpace(pid=1, allocator=FrameAllocator())
        probe = 0x100000
        space.translate(probe)
        candidates = [0x200000 + i * 64 for i in range(640)]
        for candidate in candidates:
            space.translate(candidate)
        eviction_set = find_eviction_set(hierarchy, space, probe, candidates)
        assert eviction_set, "profiling found no eviction set"
        # The reduction is conservative (residual cache state makes
        # marginal groups flaky), but it must cut the pool substantially.
        assert len(eviction_set) <= len(candidates) // 4
        # Verify: the found set actually evicts the probe line.  Two
        # passes make the check state-independent (the first pass forces
        # every set member resident regardless of leftover cache state).
        hierarchy.load(space.translate(probe))
        for _ in range(2):
            for line in eviction_set:
                hierarchy.load(space.translate(line))
        assert not hierarchy.l1.probe(space.translate(probe))


class TestWriteThrough:
    def test_l1_never_dirty(self):
        hierarchy = make_write_through_hierarchy(rng=random.Random(0))
        hierarchy.load(0x3000, owner=0)
        hierarchy.store(0x3000, owner=0)
        assert not hierarchy.l1.is_dirty(0x3000)

    def test_store_miss_does_not_allocate(self):
        hierarchy = make_write_through_hierarchy(rng=random.Random(0))
        hierarchy.store(0x3000, owner=0)
        assert not hierarchy.l1.probe(0x3000)
