"""Paging and the no-shared-memory property of the threat model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, SimulationError
from repro.mem.address_space import PAGE_SIZE, AddressSpace, FrameAllocator


class TestFrameAllocator:
    def test_sequential_frames_distinct(self):
        allocator = FrameAllocator()
        frames = [allocator.allocate() for _ in range(100)]
        assert len(set(frames)) == 100

    def test_release_recycles(self):
        allocator = FrameAllocator()
        frame = allocator.allocate()
        allocator.release(frame)
        assert allocator.allocate() == frame

    def test_exhaustion_raises(self):
        allocator = FrameAllocator(total_frames=2)
        allocator.allocate()
        allocator.allocate()
        with pytest.raises(SimulationError):
            allocator.allocate()

    def test_shuffled_allocation_distinct(self):
        allocator = FrameAllocator(shuffle=True)
        frames = [allocator.allocate() for _ in range(500)]
        assert len(set(frames)) == 500

    def test_rejects_bad_release(self):
        allocator = FrameAllocator(total_frames=4)
        with pytest.raises(ConfigurationError):
            allocator.release(99)


class TestAddressSpace:
    def test_page_offset_preserved(self, space):
        physical = space.translate(0x1234)
        assert physical & (PAGE_SIZE - 1) == 0x234

    def test_same_page_same_frame(self, space):
        assert space.translate(0x1000) >> 12 == space.translate(0x1FFF) >> 12

    def test_different_pages_different_frames(self, space):
        assert space.translate(0x1000) >> 12 != space.translate(0x2000) >> 12

    def test_translation_is_stable(self, space):
        assert space.translate(0x5000) == space.translate(0x5000)

    def test_rejects_negative_address(self, space):
        with pytest.raises(ConfigurationError):
            space.translate(-1)

    def test_no_shared_memory_between_processes(self, space_pair):
        # The threat-model property: same VA in two processes maps to
        # different physical lines.
        first, second = space_pair
        assert first.translate(0x4000) != second.translate(0x4000)

    def test_is_mapped(self, space):
        assert not space.is_mapped(0x9000)
        space.translate(0x9000)
        assert space.is_mapped(0x9000)


class TestBufferAllocation:
    def test_buffers_do_not_overlap(self, space):
        first = space.allocate_buffer(8192)
        second = space.allocate_buffer(8192)
        assert second >= first + 8192

    def test_alignment(self, space):
        base = space.allocate_buffer(100, align=PAGE_SIZE)
        assert base % PAGE_SIZE == 0

    def test_rejects_bad_align(self, space):
        with pytest.raises(ConfigurationError):
            space.allocate_buffer(100, align=3)

    def test_rejects_zero_size(self, space):
        with pytest.raises(ConfigurationError):
            space.allocate_buffer(0)

    def test_touch_range_maps_all_pages(self, space):
        base = space.allocate_buffer(3 * PAGE_SIZE)
        space.touch_range(base, 3 * PAGE_SIZE)
        for page in range(3):
            assert space.is_mapped(base + page * PAGE_SIZE)

    @given(size=st.integers(min_value=1, max_value=10 * PAGE_SIZE))
    def test_touch_range_any_size(self, size):
        space = AddressSpace(pid=1, allocator=FrameAllocator())
        base = space.allocate_buffer(size)
        space.touch_range(base, size)
        assert space.is_mapped(base)
        assert space.is_mapped(base + size - 1)
