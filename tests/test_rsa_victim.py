"""Square-and-multiply key recovery (the concrete Section 9 instance)."""

import random

import pytest

from repro.cache.configs import make_xeon_hierarchy
from repro.common.errors import ConfigurationError
from repro.mem.address_space import AddressSpace, FrameAllocator
from repro.sidechannel.rsa_victim import (
    SquareAndMultiplyVictim,
    recover_exponent,
)


def make_victim(exponent_bits, modulus=(1 << 61) - 1):
    hierarchy = make_xeon_hierarchy(rng=random.Random(0))
    space = AddressSpace(pid=2, allocator=FrameAllocator())
    return SquareAndMultiplyVictim(
        hierarchy=hierarchy,
        space=space,
        base=0x10001,
        modulus=modulus,
        exponent_bits=tuple(exponent_bits),
    )


class TestVictimArithmetic:
    @pytest.mark.parametrize("exponent", [0, 1, 2, 0b1011, 123456789])
    def test_modexp_is_correct(self, exponent):
        bits = tuple(int(b) for b in format(exponent, "b")) if exponent else (0,)
        victim = make_victim(bits)
        while not victim.finished:
            victim.step()
        assert victim.result() == pow(0x10001, exponent, (1 << 61) - 1)

    def test_step_past_end_rejected(self):
        victim = make_victim((1,))
        victim.step()
        with pytest.raises(ConfigurationError):
            victim.step()

    def test_result_before_end_rejected(self):
        victim = make_victim((1, 0))
        victim.step()
        with pytest.raises(ConfigurationError):
            victim.result()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_victim((2,))
        with pytest.raises(ConfigurationError):
            make_victim((1,), modulus=1)


class TestCacheSideEffects:
    def test_one_bit_dirties_multiply_buffer(self):
        victim = make_victim((1,))
        victim.step()
        line = victim.space.translate(victim.multiply_buffer)
        assert victim.hierarchy.l1.is_dirty(line)

    def test_zero_bit_leaves_multiply_buffer_untouched(self):
        victim = make_victim((0,))
        victim.step()
        line = victim.space.translate(victim.multiply_buffer)
        assert not victim.hierarchy.l1.probe(line)

    def test_buffers_in_different_sets(self):
        victim = make_victim((1, 0))
        l1 = victim.hierarchy.l1
        square_set = l1.set_index(victim.space.translate(victim.square_buffer))
        assert square_set != victim.multiply_set


class TestKeyRecovery:
    def test_recovers_64_bit_exponent(self):
        result = recover_exponent(0xDEADBEEFCAFEBABE, bit_width=64, seed=0)
        assert result.fully_recovered
        assert result.modexp_result == pow(
            0x10001, 0xDEADBEEFCAFEBABE, (1 << 61) - 1
        )

    def test_recovers_across_seeds(self):
        for seed in range(3):
            result = recover_exponent(0x5555AAAA, bit_width=32, seed=seed)
            assert result.accuracy >= 0.95

    def test_all_zero_and_all_one_exponents(self):
        assert recover_exponent(0, bit_width=16, seed=1).fully_recovered
        assert recover_exponent(0xFFFF, bit_width=16, seed=1).fully_recovered

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            recover_exponent(-1)

    def test_rejects_overflow(self):
        from repro.common.errors import ProtocolError

        with pytest.raises(ProtocolError):
            recover_exponent(1 << 70, bit_width=64)
