"""Fleet chaos suite: the bit-identical-under-faults invariant.

The tentpole guarantee of the worker fleet is that *service-level*
faults — workers crashing, hanging, losing their heartbeats, dropping
uploads, stalling on the store — change job latency but never job
results.  This suite runs a real HTTP service with real
:class:`~repro.service.worker.FleetWorker` threads whose misbehaviour is
materialised deterministically from ``(FaultSpec, seed, key, attempt)``
at **intensity 1.0**, then checks every submitted job completed with a
blob byte-identical to a fault-free run, nothing was lost or run twice,
and at least one job traversed the full expiry → re-dispatch → success
path.  Poison jobs (a worker that crashes on every attempt) must land in
``dead_letter`` with their lease history recorded, not retry forever.
"""

import threading
import time

import pytest

from repro.faults.fleet import DEFAULT_FLEET_FAULT_SPEC
from repro.faults.spec import FaultSpec
from repro.service.client import ServiceClient
from repro.service.fleet import FleetConfig
from repro.service.http import ServiceApp, make_server
from repro.service.store import ResultStore
from repro.service.worker import FleetWorker
from tests.fake_experiments import seed_echo

SEED_ECHO = "tests.fake_experiments:seed_echo"
CAMPAIGN_JOBS = 50
FAULT_SEED = 2026
WAIT = 120.0


def serve(tmp_path, fleet):
    store = ResultStore(tmp_path / "store")
    app = ServiceApp(store, workers=1, queue_depth=128, fleet=fleet)
    app.__enter__()
    server = make_server(app)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")

    def teardown():
        server.shutdown()
        server.server_close()
        app.__exit__(None, None, None)

    return client, teardown


def run_workers(client, count, faults, lease_seen):
    """Start ``count`` chaos workers; returns (threads, workers)."""
    workers = [
        FleetWorker(
            client.base_url,
            f"chaos-w{index}",
            poll_seconds=0.02,
            faults=faults,
            fault_seed=FAULT_SEED,
        )
        for index in range(count)
    ]
    threads = [
        threading.Thread(target=worker.run, daemon=True)
        for worker in workers
    ]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + WAIT
    while client.fleet()["workers_live"] < lease_seen:
        assert time.monotonic() < deadline, "chaos workers never registered"
        time.sleep(0.01)
    return threads, workers


class TestChaosCampaign:
    def test_intensity_one_campaign_is_bit_identical(self, tmp_path):
        """50 jobs, 3 misbehaving workers, every blob byte-exact."""
        fleet = FleetConfig(
            lease_ttl=0.4,
            dead_letter_after=10,  # poison quarantine stays out of the way
            backoff_cap=0.5,
            worker_ttl=30.0,  # chaos workers stay "live" while hung
        )
        client, teardown = serve(tmp_path, fleet)
        faults = DEFAULT_FLEET_FAULT_SPEC.scaled(1.0)
        threads, workers = run_workers(client, 3, faults, lease_seen=3)
        try:
            jobs = [
                client.submit("echo", entry_point=SEED_ECHO, seed=seed)
                for seed in range(CAMPAIGN_JOBS)
            ]
            records = [
                client.wait(str(job["job_id"]), timeout=WAIT)
                for job in jobs
            ]
        finally:
            for worker in workers:
                worker.stop()
            for thread in threads:
                thread.join(timeout=WAIT)
            health = client.healthz()
            fleet_view = client.fleet()
            teardown()

        # 1. Nothing lost: every job terminal and DONE (the chaos regime
        # contains no deterministic failures, so nothing may fail or
        # dead-letter either).
        states = [record["state"] for record in records]
        assert states == ["done"] * CAMPAIGN_JOBS

        # 2. Bit-identical to a fault-free run: each stored blob equals
        # the direct in-process computation's canonical JSON bytes.
        store = ResultStore(tmp_path / "store")
        for seed, record in zip(range(CAMPAIGN_JOBS), records):
            expected = seed_echo(seed=seed).to_json().encode("utf-8")
            assert store.get_bytes(str(record["result_key"])) == expected

        # 3. Nothing duplicated: 50 distinct keys, one completion per
        # job, one computation per key even across re-dispatches.
        keys = {str(record["result_key"]) for record in records}
        assert len(keys) == CAMPAIGN_JOBS
        scheduler = health["scheduler"]
        assert scheduler["completed"] == CAMPAIGN_JOBS
        assert scheduler["computations"] == CAMPAIGN_JOBS
        assert scheduler["queued"] == 0
        assert scheduler["running"] == 0

        # 4. The chaos actually bit: leases expired and were
        # re-dispatched, and at least one job traversed the full
        # expiry → re-dispatch → success path.
        counters = fleet_view["counters"]
        assert counters["leases_expired"] >= 1
        assert counters["redispatches"] >= 1
        assert counters["dead_letter"] == 0
        recovered = [
            record
            for record in records
            if any(
                entry["outcome"] == "expired"
                for entry in record.get("lease_history", [])
            )
        ]
        assert recovered, "no job traversed expiry -> re-dispatch -> success"
        for record in recovered:
            assert record["lease_history"][-1]["outcome"] == "completed"

        # 5. The decision function (not luck) drove the misbehaviour.
        chaos_events = sum(
            worker.counters["chaos_crash"]
            + worker.counters["chaos_hang"]
            + worker.counters["chaos_stale_heartbeat"]
            + worker.counters["chaos_drop_upload"]
            + worker.counters["chaos_slow_store"]
            for worker in workers
        )
        assert chaos_events >= 1


class TestPoisonJobs:
    def test_poison_job_dead_letters_with_lease_history(self, tmp_path):
        """A job whose worker crashes on every attempt is quarantined."""
        fleet = FleetConfig(
            lease_ttl=0.2,
            dead_letter_after=2,
            backoff_cap=0.3,
            worker_ttl=30.0,
        )
        client, teardown = serve(tmp_path, fleet)
        poison = FaultSpec(worker_crash_rate=1.0)
        threads, workers = run_workers(client, 1, poison, lease_seen=1)
        try:
            job = client.submit("echo", entry_point=SEED_ECHO, seed=404)
            record = client.wait(str(job["job_id"]), timeout=WAIT)
            fleet_view = client.fleet()
        finally:
            for worker in workers:
                worker.stop()
            for thread in threads:
                thread.join(timeout=WAIT)
            teardown()

        assert record["state"] == "dead_letter"
        assert "dead-lettered after 2" in str(record["error"])
        assert record["result_key"] is None
        history = record["lease_history"]
        assert len(history) == 2
        assert [entry["outcome"] for entry in history] == [
            "expired",
            "expired",
        ]
        assert [entry["attempt"] for entry in history] == [1, 2]

        assert fleet_view["counters"]["dead_letter"] == 1
        assert len(fleet_view["dead_letters"]) == 1
        quarantined = fleet_view["dead_letters"][0]
        assert quarantined["lease_attempts"] == 2
        assert len(quarantined["lease_history"]) == 2

        # No partial blob for a quarantined job: the store never saw a
        # write (its directory holds no content-addressed blobs at all).
        blobs = [
            path
            for path in (tmp_path / "store").rglob("*")
            if path.is_file() and len(path.stem) == 64
        ]
        assert blobs == []
        assert workers[0].counters["chaos_crash"] == 2
        assert workers[0].counters["completed"] == 0

    def test_poison_quarantine_does_not_block_healthy_jobs(self, tmp_path):
        """Healthy jobs behind a poison job still complete."""
        fleet = FleetConfig(
            lease_ttl=0.2,
            dead_letter_after=2,
            backoff_cap=0.3,
            worker_ttl=30.0,
        )
        client, teardown = serve(tmp_path, fleet)
        # Crash rate below 1 but keyed deterministically: use a spec
        # that crashes nothing, and poison via a deterministic failure
        # instead (raises on its only attempt -> FAILED, not retried).
        threads, workers = run_workers(client, 1, None, lease_seen=1)
        try:
            bad = client.submit(
                "bad", entry_point="tests.fake_experiments:raises_error"
            )
            good = client.submit("echo", entry_point=SEED_ECHO, seed=7)
            bad_record = client.wait(str(bad["job_id"]), timeout=WAIT)
            good_record = client.wait(str(good["job_id"]), timeout=WAIT)
        finally:
            for worker in workers:
                worker.stop()
            for thread in threads:
                thread.join(timeout=WAIT)
            teardown()

        assert bad_record["state"] == "failed"
        assert "ValueError" in str(bad_record["error"])
        assert bad_record["lease_history"][-1]["outcome"] == "failed"
        assert good_record["state"] == "done"
        store = ResultStore(tmp_path / "store")
        assert store.get_bytes(str(good_record["result_key"])) == (
            seed_echo(seed=7).to_json().encode("utf-8")
        )
