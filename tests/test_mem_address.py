"""Address layout: the VIPT bit-slicing the attack depends on."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.mem.address import AddressLayout


@pytest.fixture
def l1_layout():
    """The paper's L1: 64 sets x 64-byte lines."""
    return AddressLayout(line_size=64, num_sets=64)


class TestFieldWidths:
    def test_paper_l1_bit_positions(self, l1_layout):
        # Section 4: "the 0-5 bits ... are the line offset, and the 6-11
        # bits decide the cache set".
        assert l1_layout.offset_bits == 6
        assert l1_layout.index_bits == 6

    def test_stride_between_conflicts_is_4k(self, l1_layout):
        assert l1_layout.stride_between_conflicts() == 4096

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            AddressLayout(line_size=48, num_sets=64)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            AddressLayout(line_size=64, num_sets=63)


class TestExtraction:
    def test_known_address(self, l1_layout):
        address = (3 << 12) | (17 << 6) | 5
        assert l1_layout.tag(address) == 3
        assert l1_layout.set_index(address) == 17
        assert l1_layout.line_offset(address) == 5

    def test_line_address_masks_offset(self, l1_layout):
        assert l1_layout.line_address(0x12345) == 0x12340

    def test_same_stride_same_set(self, l1_layout):
        base = 0x40000
        stride = l1_layout.stride_between_conflicts()
        assert l1_layout.set_index(base) == l1_layout.set_index(base + stride)
        assert l1_layout.tag(base) != l1_layout.tag(base + stride)


class TestCompose:
    @given(
        tag=st.integers(min_value=0, max_value=2**20),
        set_index=st.integers(min_value=0, max_value=63),
        offset=st.integers(min_value=0, max_value=63),
    )
    def test_roundtrip(self, tag, set_index, offset):
        layout = AddressLayout(line_size=64, num_sets=64)
        address = layout.compose(tag, set_index, offset)
        assert layout.tag(address) == tag
        assert layout.set_index(address) == set_index
        assert layout.line_offset(address) == offset

    def test_rejects_out_of_range_set(self, l1_layout):
        with pytest.raises(ConfigurationError):
            l1_layout.compose(0, 64)

    def test_rejects_out_of_range_offset(self, l1_layout):
        with pytest.raises(ConfigurationError):
            l1_layout.compose(0, 0, 64)

    def test_rejects_negative_tag(self, l1_layout):
        with pytest.raises(ConfigurationError):
            l1_layout.compose(-1, 0)
