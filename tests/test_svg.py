"""SVG chart rendering."""

import pytest

from repro.analysis.svg import Chart, Series, ber_chart, cdf_chart, trace_chart
from repro.common.errors import ConfigurationError


def minimal_chart():
    chart = Chart(title="T", x_label="x", y_label="y")
    chart.add_series("s", [(0.0, 1.0), (1.0, 2.0)])
    return chart


class TestChart:
    def test_svg_structure(self):
        svg = minimal_chart().to_svg()
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "polyline" in svg
        assert ">T<" in svg  # title text

    def test_empty_chart_rejected(self):
        with pytest.raises(ConfigurationError):
            Chart(title="T", x_label="x", y_label="y").to_svg()

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError):
            Series(label="s", points=[])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            Series(label="s", points=[(0, 0)], mode="sparkles")

    def test_dots_mode_renders_circles(self):
        chart = Chart(title="T", x_label="x", y_label="y")
        chart.add_series("s", [(0.0, 1.0), (1.0, 2.0)], mode="dots")
        assert "circle" in chart.to_svg()

    def test_guides_render_dashed(self):
        chart = minimal_chart()
        chart.guides.append(("thr", 1.5))
        svg = chart.to_svg()
        assert "stroke-dasharray" in svg
        assert "thr" in svg

    def test_log_x_requires_positive(self):
        chart = Chart(title="T", x_label="x", y_label="y", log_x=True)
        chart.add_series("s", [(0.0, 1.0), (1.0, 2.0)])
        with pytest.raises(ConfigurationError):
            chart.to_svg()

    def test_escaping(self):
        chart = Chart(title="a<b & c", x_label="x", y_label="y")
        chart.add_series("s", [(0.0, 1.0), (1.0, 2.0)])
        svg = chart.to_svg()
        assert "a&lt;b &amp; c" in svg

    def test_deterministic(self):
        assert minimal_chart().to_svg() == minimal_chart().to_svg()

    def test_save(self, tmp_path):
        path = tmp_path / "chart.svg"
        minimal_chart().save(str(path))
        assert path.read_text().startswith("<svg")


class TestChartBuilders:
    def test_cdf_chart(self):
        chart = cdf_chart("c", {"d=0": [1.0, 2.0, 2.0, 3.0]})
        svg = chart.to_svg()
        assert "d=0" in svg

    def test_trace_chart_with_thresholds(self):
        chart = trace_chart("t", [10, 20, 15], thresholds=[12.5])
        svg = chart.to_svg()
        assert "threshold 1" in svg

    def test_ber_chart_log_axis(self):
        chart = ber_chart("b", {"d=1": [(200.0, 0.01), (2750.0, 0.05)]})
        assert chart.log_x
        assert "d=1" in chart.to_svg()
