"""The wb-experiments command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert not args.quick
        assert args.seed == 0

    def test_experiment_list_positional(self):
        args = build_parser().parse_args(["table2", "fig6"])
        assert args.experiments == ["table2", "fig6"]


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig8" in out

    def test_taxonomy(self, capsys):
        assert main(["--taxonomy"]) == 0
        assert "Miss+Miss" in capsys.readouterr().out

    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["tablezzz"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_an_experiment(self, capsys):
        assert main(["table4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "finished in" in out
