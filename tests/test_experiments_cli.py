"""The wb-experiments command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.profile is None
        assert args.seed == 0
        assert args.jobs == 1
        assert args.out is None
        assert args.seeds == 1

    def test_experiment_list_positional(self):
        args = build_parser().parse_args(["table2", "fig6"])
        assert args.experiments == ["table2", "fig6"]

    def test_parallel_flags(self):
        args = build_parser().parse_args(
            ["--all", "--profile", "quick", "--jobs", "4", "--out", "res"]
        )
        assert args.profile == "quick"
        assert args.jobs == 4
        assert args.out == "res"

    def test_telemetry_flags(self):
        args = build_parser().parse_args(
            ["table4", "--telemetry", "--trace-out", "traces"]
        )
        assert args.telemetry
        assert args.trace_out == "traces"
        defaults = build_parser().parse_args(["table4"])
        assert not defaults.telemetry
        assert defaults.trace_out is None


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig8" in out

    def test_taxonomy(self, capsys):
        assert main(["--taxonomy"]) == 0
        assert "Miss+Miss" in capsys.readouterr().out

    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["tablezzz"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_an_experiment(self, capsys):
        assert main(["table4", "--profile", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "finished in" in out

    def test_quick_flag_removed(self, capsys):
        # The deprecated --quick alias is gone; argparse rejects it.
        with pytest.raises(SystemExit):
            main(["table4", "--quick"])
        assert "--quick" in capsys.readouterr().err

    def test_bad_jobs_and_seeds_rejected(self, capsys):
        assert main(["table4", "--jobs", "0"]) == 2
        assert main(["table4", "--seeds", "0"]) == 2

    def test_parallel_run_writes_manifest(self, capsys, tmp_path):
        out_dir = tmp_path / "results"
        code = main(
            ["table4", "fig7", "--profile", "quick", "--jobs", "2",
             "--out", str(out_dir)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Run summary" in captured.out
        assert "manifest written" in captured.out
        from repro.runner import RunManifest

        manifest = RunManifest.load(out_dir)
        assert manifest.ok
        assert [e.task_id for e in manifest.entries] == ["table4", "fig7"]

    def test_telemetry_summary_lands_in_manifest(self, capsys, tmp_path):
        out_dir = tmp_path / "results"
        assert main(["table4", "--profile", "quick", "--telemetry",
                     "--out", str(out_dir)]) == 0
        from repro.runner import RunManifest

        manifest = RunManifest.load(out_dir)
        summary = manifest.entry("table4").result.params["telemetry"]
        assert summary["events"] > 0
        assert summary["counters"]["levels"]["L1"]["accesses"] > 0

    def test_trace_out_requires_serial(self, capsys):
        assert main(["table4", "--profile", "quick",
                     "--trace-out", "traces", "--jobs", "2"]) == 2
        assert "--jobs 1" in capsys.readouterr().err

    def test_trace_out_exports_jsonl(self, capsys, tmp_path):
        import json

        from repro.telemetry import TelemetryConfig, configure, default_config

        previous = default_config()
        trace_dir = tmp_path / "traces"
        try:
            assert main(["table4", "--profile", "quick",
                         "--trace-out", str(trace_dir)]) == 0
        finally:
            configure(previous)
        trace_path = trace_dir / "table4-seed0.jsonl"
        assert trace_path.exists()
        first = json.loads(trace_path.read_text().splitlines()[0])
        assert {"time", "kind", "level", "owner"} <= set(first)

    def test_parallel_matches_serial_output_rows(self, tmp_path):
        from repro.runner import RunManifest

        serial_dir, parallel_dir = tmp_path / "s", tmp_path / "p"
        assert main(["table4", "fig7", "--profile", "quick",
                     "--out", str(serial_dir)]) == 0
        assert main(["table4", "fig7", "--profile", "quick", "--jobs", "2",
                     "--out", str(parallel_dir)]) == 0
        serial = RunManifest.load(serial_dir)
        parallel = RunManifest.load(parallel_dir)
        for task_id in ("table4", "fig7"):
            assert serial.entry(task_id).result.to_json() == \
                parallel.entry(task_id).result.to_json()


class TestResume:
    def test_resume_flag_parses(self):
        args = build_parser().parse_args(["table4", "--resume", "res"])
        assert args.resume == "res"
        assert build_parser().parse_args(["table4"]).resume is None

    def test_resume_from_partial_manifest(self, capsys, tmp_path):
        from repro.experiments.profiles import QUICK
        from repro.runner import (
            RunManifest,
            STATUS_INTERRUPTED,
            run_experiments,
        )

        out_dir = tmp_path / "results"
        # Fabricate the aftermath of an interrupted run: table4 finished,
        # fig7 did not.
        partial = run_experiments(["table4"], profile=QUICK, seed=0, jobs=1)
        partial.entries[0].task_id = "table4"
        from repro.runner import ManifestEntry

        partial.entries.append(
            ManifestEntry(
                task_id="fig7",
                experiment_id="fig7",
                seed=0,
                profile=QUICK,
                status=STATUS_INTERRUPTED,
                wall_seconds=0.0,
            )
        )
        partial.save(out_dir)

        resumed_dir = tmp_path / "resumed"
        assert main(["table4", "fig7", "--profile", "quick",
                     "--resume", str(out_dir), "--out", str(resumed_dir)]) == 0
        resumed = RunManifest.load(resumed_dir)
        assert resumed.ok and not resumed.interrupted

        fresh_dir = tmp_path / "fresh"
        assert main(["table4", "fig7", "--profile", "quick",
                     "--out", str(fresh_dir)]) == 0
        assert resumed.canonical_json() == \
            RunManifest.load(fresh_dir).canonical_json()
