"""The L2 deployment of the WB channel (extension beyond the paper)."""

import pytest

from repro.channels.wb.l2 import (
    L2WBChannelConfig,
    build_l2_conflict_lines,
    make_l2_channel_hierarchy,
    run_l2_wb_channel,
)
from repro.channels.testbench import ChannelTestbench
from repro.channels.testbench import TestbenchConfig as BenchConfig
from repro.common.errors import ConfigurationError
from repro.cpu.noise import SchedulerNoise


class TestConflictLineConstruction:
    def test_lines_land_in_target_l2_set(self):
        bench = ChannelTestbench(
            BenchConfig(hierarchy_factory=make_l2_channel_hierarchy)
        )
        space = bench.new_space(pid=1)
        hierarchy = bench.hierarchy
        lines = build_l2_conflict_lines(space, hierarchy, 137, 12)
        l2 = hierarchy.levels[1]
        assert len(lines) == 12
        assert all(
            l2.set_index(space.translate(line)) == 137 for line in lines
        )

    def test_lines_share_one_l1_set(self):
        # L1 index bits are a subset of L2 index bits.
        bench = ChannelTestbench(
            BenchConfig(hierarchy_factory=make_l2_channel_hierarchy)
        )
        space = bench.new_space(pid=1)
        hierarchy = bench.hierarchy
        lines = build_l2_conflict_lines(space, hierarchy, 137, 8)
        l1_sets = {hierarchy.l1.layout.set_index(line) for line in lines}
        assert len(l1_sets) == 1

    def test_rejects_bad_set(self):
        bench = ChannelTestbench(
            BenchConfig(hierarchy_factory=make_l2_channel_hierarchy)
        )
        space = bench.new_space(pid=1)
        with pytest.raises(ConfigurationError):
            build_l2_conflict_lines(space, bench.hierarchy, 10**6, 2)


class TestL2Channel:
    def test_clean_transmission(self):
        result = run_l2_wb_channel(
            L2WBChannelConfig(
                seed=1,
                scheduler_noise=SchedulerNoise.disabled(),
                receiver_phase=0.5,
            )
        )
        assert result.bit_error_rate < 0.05

    def test_decoder_sees_l2_writeback_steps(self):
        result = run_l2_wb_channel(
            L2WBChannelConfig(
                seed=2,
                scheduler_noise=SchedulerNoise.disabled(),
                receiver_phase=0.5,
            )
        )
        # d=4 dirty L2 lines add ~4 * l2_writeback_penalty (18) cycles.
        assert 40 <= result.decoder.separation() <= 110

    def test_rate_is_slower_than_l1(self):
        config = L2WBChannelConfig()
        assert config.rate_kbps == pytest.approx(100.0)

    def test_with_noise_still_decodes(self):
        result = run_l2_wb_channel(L2WBChannelConfig(seed=3))
        assert result.bit_error_rate < 0.25

    def test_str(self):
        result = run_l2_wb_channel(
            L2WBChannelConfig(
                seed=4,
                message_bits=32,
                scheduler_noise=SchedulerNoise.disabled(),
                receiver_phase=0.5,
            )
        )
        assert "L2 WB channel" in str(result)
