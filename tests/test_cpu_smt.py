"""SMT core: interleaving, operation semantics, preemption noise."""

import random

import pytest

from repro.cache.configs import make_tiny_hierarchy, make_xeon_hierarchy
from repro.common.errors import ConfigurationError, SimulationError
from repro.cpu.noise import SchedulerNoise
from repro.cpu.ops import Delay, Flush, Load, RdTSC, ResetStats, SpinUntil, Store
from repro.cpu.smt import SPIN_QUANTUM, SMTCore
from repro.cpu.thread import HardwareThread, Program, as_program
from repro.cpu.tsc import TimestampCounter
from repro.mem.address_space import AddressSpace, FrameAllocator


def run_program(generator_fn, hierarchy=None, tsc=None, seed=0):
    """Run a single generator program; returns (thread, core)."""
    hierarchy = hierarchy or make_tiny_hierarchy(rng=random.Random(seed))
    space = AddressSpace(pid=0, allocator=FrameAllocator())
    thread = HardwareThread(
        tid=0, space=space, program=as_program(generator_fn), name="solo"
    )
    core = SMTCore(
        hierarchy=hierarchy,
        threads=[thread],
        tsc=tsc or TimestampCounter(read_jitter=0),
        scheduler_noise=SchedulerNoise.disabled(),
        rng=random.Random(seed),
    )
    core.run()
    return thread, core


class TestOperations:
    def test_load_returns_latency(self):
        results = []

        def program():
            results.append((yield Load(0x1000)))
            results.append((yield Load(0x1000)))

        run_program(program)
        cold, warm = results
        assert cold > warm  # DRAM then L1 hit

    def test_store_is_posted(self):
        results = []

        def program():
            results.append((yield Store(0x1000)))

        _, core = run_program(program)
        # The thread pays only the posted-store cost, not the miss.
        assert results[0] == core.hierarchy.latency.posted_store_cost
        # ...but the dirty state is already there.
        assert core.hierarchy.l1.is_dirty(
            core.threads[0].space.translate(0x1000)
        )

    def test_flush_returns_cost(self):
        results = []

        def program():
            yield Load(0x1000)
            results.append((yield Flush(0x1000)))

        _, core = run_program(program)
        assert results[0] >= core.hierarchy.latency.flush_base

    def test_rdtsc_advances_clock(self):
        def program():
            yield RdTSC()

        thread, core = run_program(program)
        assert thread.local_time >= core.tsc.read_overhead

    def test_spin_until_reaches_target(self):
        observed = []

        def program():
            observed.append((yield SpinUntil(5000)))

        thread, _ = run_program(program)
        assert 5000 <= observed[0] < 5000 + SPIN_QUANTUM + 1
        assert thread.local_time >= 5000

    def test_spin_in_the_past_is_noop(self):
        observed = []

        def program():
            yield Delay(9000)
            observed.append((yield SpinUntil(100)))

        run_program(program)
        assert observed[0] >= 9000

    def test_delay(self):
        def program():
            yield Delay(1234)

        thread, _ = run_program(program)
        assert thread.local_time >= 1234

    def test_reset_stats(self):
        def program():
            yield Load(0x1000)
            yield ResetStats()
            yield Load(0x2000)

        _, core = run_program(program)
        assert core.hierarchy.stats.level(1).accesses == 1


class TestInterleaving:
    def test_global_time_ordering(self):
        """B's stores at t~2000 must be visible to A's load at t~8000.

        Memory operations execute when their thread holds the minimum
        local clock, so cross-thread cache effects respect global time:
        A's reload after the spin must observe the eviction caused by B.
        """
        hierarchy = make_tiny_hierarchy(rng=random.Random(0))  # 2-way L1
        allocator = FrameAllocator()
        space_a = AddressSpace(pid=0, allocator=allocator)
        space_b = AddressSpace(pid=1, allocator=allocator)
        stride = hierarchy.l1.layout.stride_between_conflicts()
        latencies = []

        def program_a():
            yield Load(0x0)  # cold fill into the target set
            yield SpinUntil(8000)
            latencies.append((yield Load(0x0)))

        def program_b():
            yield SpinUntil(2000)
            # Two stores to the same (2-way) set evict A's line.
            yield Store(0x0)
            yield Store(stride)

        threads = [
            HardwareThread(0, space_a, as_program(program_a), "a"),
            HardwareThread(1, space_b, as_program(program_b), "b"),
        ]
        core = SMTCore(
            hierarchy=hierarchy,
            threads=threads,
            scheduler_noise=SchedulerNoise.disabled(),
            rng=random.Random(0),
        )
        core.run()
        # A's reload misses L1 (B evicted it): well above the L1 hit cost.
        assert latencies[0] > hierarchy.latency.l1_hit + 2

    def test_result_routing_between_threads(self):
        """Each thread receives its own operation results."""
        hierarchy = make_xeon_hierarchy(rng=random.Random(0))
        allocator = FrameAllocator()
        results = {0: [], 1: []}

        def make_prog(tid, addr):
            def program():
                results[tid].append((yield Load(addr)))
                results[tid].append((yield Load(addr)))

            return as_program(program)

        threads = [
            HardwareThread(
                tid, AddressSpace(pid=tid, allocator=allocator), make_prog(tid, 0x1000 * (tid + 1)), str(tid)
            )
            for tid in (0, 1)
        ]
        core = SMTCore(
            hierarchy=hierarchy,
            threads=threads,
            scheduler_noise=SchedulerNoise.disabled(),
            rng=random.Random(0),
        )
        core.run()
        for tid in (0, 1):
            assert results[tid][0] > results[tid][1]

    def test_duplicate_tids_rejected(self):
        hierarchy = make_tiny_hierarchy(rng=random.Random(0))
        allocator = FrameAllocator()
        threads = [
            HardwareThread(0, AddressSpace(pid=0, allocator=allocator), as_program(lambda: iter(())), "x"),
            HardwareThread(0, AddressSpace(pid=1, allocator=allocator), as_program(lambda: iter(())), "y"),
        ]
        with pytest.raises(ConfigurationError):
            SMTCore(hierarchy=hierarchy, threads=threads)

    def test_no_threads_rejected(self):
        with pytest.raises(ConfigurationError):
            SMTCore(hierarchy=make_tiny_hierarchy(), threads=[])


class TestCycleBudget:
    def test_runaway_program_raises(self):
        def forever():
            time = 0
            while True:
                time += 10**6
                yield SpinUntil(time)

        hierarchy = make_tiny_hierarchy(rng=random.Random(0))
        space = AddressSpace(pid=0, allocator=FrameAllocator())
        thread = HardwareThread(0, space, as_program(forever), "spin")
        core = SMTCore(
            hierarchy=hierarchy,
            threads=[thread],
            scheduler_noise=SchedulerNoise.disabled(),
            rng=random.Random(0),
            max_cycles=10**7,
        )
        with pytest.raises(SimulationError):
            core.run()


class TestPreemption:
    def test_preemptions_inflate_local_time(self):
        noisy = SchedulerNoise(
            mean_interval_cycles=1000.0, min_duration=500, max_duration=500
        )

        def program():
            for _ in range(50):
                yield Delay(100)

        hierarchy = make_tiny_hierarchy(rng=random.Random(0))
        space = AddressSpace(pid=0, allocator=FrameAllocator())
        thread = HardwareThread(0, space, as_program(program), "w")
        core = SMTCore(
            hierarchy=hierarchy,
            threads=[thread],
            scheduler_noise=noisy,
            rng=random.Random(0),
        )
        core.run()
        # 50 * 100 = 5000 cycles of work; preemptions must add visibly.
        assert thread.local_time > 6000

    def test_disabled_noise_never_fires(self):
        def program():
            for _ in range(50):
                yield Delay(100)

        thread, _ = run_program(program)
        assert thread.local_time < 5200


class TestHardwareThread:
    def test_double_start_rejected(self):
        space = AddressSpace(pid=0, allocator=FrameAllocator())
        thread = HardwareThread(0, space, as_program(lambda: iter(())), "t")
        thread.start()
        with pytest.raises(ConfigurationError):
            thread.start()

    def test_negative_tid_rejected(self):
        space = AddressSpace(pid=0, allocator=FrameAllocator())
        with pytest.raises(ConfigurationError):
            HardwareThread(-1, space, as_program(lambda: iter(())), "t")

    def test_repr(self):
        space = AddressSpace(pid=0, allocator=FrameAllocator())
        thread = HardwareThread(3, space, as_program(lambda: iter(())), "worker")
        assert "worker" in repr(thread)

    def test_base_program_requires_run(self):
        with pytest.raises(NotImplementedError):
            Program().run()
