"""TSC model, scheduler noise, perf counters, op validation."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.cache.stats import CacheStats
from repro.cpu.noise import SchedulerNoise
from repro.cpu.ops import Delay, Flush, Load, SpinUntil, Store
from repro.cpu.perf_counters import PerfReport, loads_per_millisecond
from repro.cpu.tsc import TimestampCounter


class TestTimestampCounter:
    def test_read_floor(self):
        tsc = TimestampCounter(granularity=10)
        assert tsc.read(1234.7) == 1230

    def test_default_granularity_is_cycle(self):
        tsc = TimestampCounter()
        assert tsc.read(1234.9) == 1234

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            TimestampCounter(read_overhead=-1)
        with pytest.raises(ConfigurationError):
            TimestampCounter(granularity=0)
        with pytest.raises(ConfigurationError):
            TimestampCounter(read_jitter=-2)


class TestSchedulerNoise:
    def test_arrivals_are_after_now(self):
        noise = SchedulerNoise(mean_interval_cycles=1000.0)
        rng = random.Random(0)
        for _ in range(100):
            assert noise.next_arrival_after(500.0, rng) > 500.0

    def test_mean_interval_roughly_respected(self):
        noise = SchedulerNoise(mean_interval_cycles=1000.0)
        rng = random.Random(1)
        gaps = [noise.next_arrival_after(0.0, rng) for _ in range(3000)]
        mean = sum(gaps) / len(gaps)
        assert 900 < mean < 1100

    def test_duration_bounds(self):
        noise = SchedulerNoise(min_duration=100, max_duration=200)
        rng = random.Random(2)
        for _ in range(100):
            assert 100 <= noise.sample_duration(rng) <= 200

    def test_fixed_duration(self):
        noise = SchedulerNoise(min_duration=50, max_duration=50)
        assert noise.sample_duration(random.Random(0)) == 50

    def test_disabled_never_fires_in_practice(self):
        noise = SchedulerNoise.disabled()
        assert noise.next_arrival_after(0.0, random.Random(0)) > 1e15

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            SchedulerNoise(mean_interval_cycles=0)
        with pytest.raises(ConfigurationError):
            SchedulerNoise(min_duration=10, max_duration=5)


class TestOps:
    def test_negative_addresses_rejected(self):
        for op in (Load, Store, Flush):
            with pytest.raises(ConfigurationError):
                op(-1)

    def test_negative_targets_rejected(self):
        with pytest.raises(ConfigurationError):
            SpinUntil(-5)
        with pytest.raises(ConfigurationError):
            Delay(-5)

    def test_ops_are_hashable_values(self):
        assert Load(0x40) == Load(0x40)
        assert hash(Store(0x40)) == hash(Store(0x40))


class TestPerfReport:
    def make_stats(self):
        stats = CacheStats()
        for _ in range(90):
            stats.record_access(1, owner=0, hit=True)
        for _ in range(10):
            stats.record_access(1, owner=0, hit=False, write=True)
            stats.record_access(2, owner=0, hit=True)
        return stats

    def test_miss_rates(self):
        report = PerfReport.from_stats(self.make_stats(), owner=0, cycles=2.2e6)
        assert report.l1_miss_rate == pytest.approx(0.1)
        assert report.l2_miss_rate == 0.0

    def test_loads_exclude_stores(self):
        report = PerfReport.from_stats(self.make_stats(), owner=0, cycles=2.2e6)
        assert report.l1_accesses == 100
        assert report.l1_loads == 90

    def test_loads_per_ms(self):
        # 2.2e6 cycles at 2.2 GHz is exactly 1 ms.
        report = PerfReport.from_stats(self.make_stats(), owner=0, cycles=2.2e6)
        assert report.l1_loads_per_ms == pytest.approx(90.0)
        assert report.total_loads_per_ms == pytest.approx(100.0)

    def test_miss_rates_mapping(self):
        report = PerfReport.from_stats(self.make_stats(), owner=0, cycles=2.2e6)
        assert set(report.miss_rates()) == {"L1D", "L2", "LLC"}

    def test_loads_per_ms_validates_cycles(self):
        with pytest.raises(ConfigurationError):
            loads_per_millisecond(10, 0)
