"""Behavioural tests for every replacement policy."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.replacement import (
    FIFO,
    NRU,
    SRRIP,
    BitPLRU,
    DirtyProtectingLRU,
    LFSRPseudoRandom,
    NoisyTreePLRU,
    TreePLRU,
    TrueLRU,
    UniformRandom,
    available_policies,
    make_policy_factory,
)

ALL_POLICY_NAMES = available_policies()


def make(name, ways=8, seed=0, **kwargs):
    return make_policy_factory(name, **kwargs)(ways, random.Random(seed))


class TestRegistry:
    def test_known_names_present(self):
        for name in ("lru", "tree-plru", "random", "lfsr-random", "e5-2650"):
            assert name in ALL_POLICY_NAMES

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_policy_factory("clairvoyant")

    def test_factory_kwargs_forwarded(self):
        policy = make("noisy-plru", update_prob=0.25)
        assert policy.update_prob == 0.25

    @pytest.mark.parametrize("name", ALL_POLICY_NAMES)
    def test_every_policy_constructs(self, name):
        policy = make(name)
        assert policy.ways == 8


class TestTrueLRU:
    def test_evicts_oldest(self):
        policy = make("lru", ways=4)
        for way in range(4):
            policy.on_fill(way)
        assert policy.victim() == 0

    def test_hit_refreshes(self):
        policy = make("lru", ways=4)
        for way in range(4):
            policy.on_fill(way)
        policy.on_hit(0)
        assert policy.victim() == 1

    def test_invalidate_promotes_to_victim(self):
        policy = make("lru", ways=4)
        for way in range(4):
            policy.on_fill(way)
        policy.on_invalidate(2)
        assert policy.victim() == 2

    def test_recency_order_exposed(self):
        policy = make("lru", ways=3)
        for way in (2, 0, 1):
            policy.on_fill(way)
        assert policy.recency_order() == [2, 0, 1]


class TestFIFO:
    def test_ignores_hits(self):
        policy = make("fifo", ways=4)
        for way in range(4):
            policy.on_fill(way)
        policy.on_hit(0)
        assert policy.victim() == 0

    def test_refill_moves_to_back(self):
        policy = make("fifo", ways=4)
        for way in range(4):
            policy.on_fill(way)
        policy.on_fill(0)
        assert policy.victim() == 1


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            TreePLRU(6, random.Random(0))

    def test_victim_avoids_just_touched(self):
        policy = make("tree-plru", ways=8)
        policy.randomize_state()
        policy.on_hit(3)
        assert policy.victim() != 3

    def test_eight_fills_cover_all_ways(self):
        # The property behind Table 2's 100% at N=8 for our Tree-PLRU:
        # consecutive miss-fills visit every way exactly once.
        for seed in range(20):
            policy = make("tree-plru", ways=8, seed=seed)
            policy.randomize_state()
            victims = []
            for _ in range(8):
                way = policy.victim()
                victims.append(way)
                policy.on_fill(way)
            assert sorted(victims) == list(range(8)), victims

    def test_tree_bits_exposed(self):
        policy = make("tree-plru", ways=8)
        assert len(policy.tree_bits()) == 7


class TestNoisyTreePLRU:
    def test_prob_one_is_exact_plru(self):
        noisy = NoisyTreePLRU(8, random.Random(1), update_prob=1.0)
        exact = TreePLRU(8, random.Random(2))
        for way in (3, 1, 7, 0, 5):
            noisy.on_fill(way)
            exact.on_fill(way)
        assert noisy.tree_bits() == exact.tree_bits()

    def test_rejects_bad_prob(self):
        with pytest.raises(ConfigurationError):
            NoisyTreePLRU(8, random.Random(0), update_prob=1.5)

    def test_fills_sometimes_skip_updates(self):
        noisy = NoisyTreePLRU(8, random.Random(3), update_prob=0.0)
        before = noisy.tree_bits()
        noisy.on_fill(5)
        assert noisy.tree_bits() == before


class TestDirtyProtectingLRU:
    def _run_trial(self, replacement_size, seed):
        policy = DirtyProtectingLRU(8, random.Random(seed))
        resident = {}
        for way in range(8):
            policy.on_fill(way)
            resident[way] = ("prior", False)
        # Install the dirty probe line by evicting the policy's victim.
        policy.notify_dirty_ways(tuple(False for _ in range(8)))
        victim = policy.victim()
        resident[victim] = ("line0", True)
        policy.on_fill(victim)
        for _ in range(replacement_size):
            policy.notify_dirty_ways(
                tuple(resident[way][1] for way in range(8))
            )
            way = policy.victim()
            resident[way] = ("fresh", False)
            policy.on_fill(way)
        return all(kind != "line0" for kind, _ in resident.values())

    def test_matches_paper_table2_column(self):
        trials = 3000
        for size, expected in ((8, 0.688), (9, 0.817), (10, 1.0)):
            evicted = sum(self._run_trial(size, seed) for seed in range(trials))
            assert evicted / trials == pytest.approx(expected, abs=0.04)

    def test_budget_guarantees_eviction(self):
        # Protection budget is 2; a replacement set of 10 always evicts.
        assert all(self._run_trial(10, seed) for seed in range(500))

    def test_rejects_bad_probs(self):
        with pytest.raises(ConfigurationError):
            DirtyProtectingLRU(8, random.Random(0), protect_probs=(2.0,))

    def test_rejects_bad_mask_width(self):
        policy = DirtyProtectingLRU(8, random.Random(0))
        with pytest.raises(ConfigurationError):
            policy.notify_dirty_ways((True,))


class TestBitPLRU:
    def test_victim_is_not_mru(self):
        policy = BitPLRU(4, random.Random(0))
        policy.on_fill(2)
        assert policy.victim() != 2

    def test_saturation_resets_epoch(self):
        policy = BitPLRU(2, random.Random(0))
        policy.on_fill(0)
        policy.on_fill(1)  # would saturate -> epoch reset, then way1 MRU
        assert policy.mru_bits() == [False, True]


class TestNRU:
    def test_victim_not_recently_used(self):
        policy = NRU(4, random.Random(0))
        policy.on_fill(1)
        assert policy.victim() != 1

    def test_scan_pointer_rotates(self):
        policy = NRU(4, random.Random(0))
        first = policy.victim()
        second = policy.victim()
        assert first != second


class TestSRRIP:
    def test_fill_inserts_long_rereference(self):
        policy = SRRIP(4, random.Random(0))
        policy.on_fill(0)
        assert policy.rrpv_values()[0] == policy.max_rrpv - 1

    def test_hit_promotes(self):
        policy = SRRIP(4, random.Random(0))
        policy.on_fill(0)
        policy.on_hit(0)
        assert policy.rrpv_values()[0] == 0

    def test_victim_prefers_distant(self):
        policy = SRRIP(4, random.Random(0))
        for way in range(4):
            policy.on_fill(way)
        policy.on_hit(0)
        assert policy.victim() != 0

    def test_rejects_zero_bits(self):
        with pytest.raises(ConfigurationError):
            SRRIP(4, random.Random(0), rrpv_bits=0)


class TestRandomPolicies:
    def test_uniform_covers_all_ways(self):
        policy = UniformRandom(8, random.Random(0))
        victims = {policy.victim() for _ in range(400)}
        assert victims == set(range(8))

    def test_uniform_is_roughly_uniform(self):
        policy = UniformRandom(8, random.Random(1))
        counts = [0] * 8
        for _ in range(8000):
            counts[policy.victim()] += 1
        assert min(counts) > 800  # expected 1000 each

    def test_lfsr_never_repeats_immediately(self):
        policy = LFSRPseudoRandom(8, random.Random(2))
        previous_state = None
        for _ in range(200):
            policy.victim()
            assert policy._state != previous_state
            previous_state = policy._state

    def test_lfsr_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            LFSRPseudoRandom(6, random.Random(0))

    def test_lfsr_covers_all_ways(self):
        policy = LFSRPseudoRandom(8, random.Random(3))
        victims = {policy.victim() for _ in range(300)}
        assert victims == set(range(8))
