"""Baseline channels: LRU, Prime+Probe, Flush+Reload, Flush+Flush."""

import pytest

from repro.channels import (
    FlushFlushConfig,
    FlushReloadConfig,
    LRUChannelConfig,
    PrimeProbeConfig,
    run_flush_flush_channel,
    run_flush_reload_channel,
    run_lru_channel,
    run_prime_probe_channel,
)
from repro.cpu.noise import SchedulerNoise

QUIET = dict(message_bits=48, scheduler_noise=SchedulerNoise.disabled(), seed=3)


class TestLRUChannel:
    def test_transmits_on_true_lru(self):
        result = run_lru_channel(
            LRUChannelConfig(hierarchy_overrides={"l1_policy": "lru"}, **QUIET)
        )
        assert result.bit_error_rate == 0.0

    def test_plru_degrades_but_works(self):
        # The paper: "commercial processors often adopt the PLRU policy
        # ... which also has an impact on the LRU channel".
        result = run_lru_channel(LRUChannelConfig(**QUIET))
        assert result.bit_error_rate < 0.25

    def test_channel_label(self):
        result = run_lru_channel(
            LRUChannelConfig(hierarchy_overrides={"l1_policy": "lru"}, **QUIET)
        )
        assert result.channel == "LRU"
        assert "LRU" in str(result)


class TestPrimeProbe:
    def test_transmits(self):
        result = run_prime_probe_channel(PrimeProbeConfig(**QUIET))
        assert result.bit_error_rate < 0.1

    def test_fails_under_random_replacement(self):
        # Section 6.1: "in the Prime+Probe attack, when the processor uses
        # the random replacement policy, it is difficult for the receiver
        # to completely fill the target set".
        result = run_prime_probe_channel(
            PrimeProbeConfig(hierarchy_overrides={"l1_policy": "random"}, **QUIET)
        )
        assert result.bit_error_rate > 0.15

    def test_perf_reports(self):
        result = run_prime_probe_channel(PrimeProbeConfig(**QUIET))
        assert result.receiver_perf.l1_accesses > 0


class TestFlushReload:
    def test_transmits(self):
        result = run_flush_reload_channel(FlushReloadConfig(**QUIET))
        assert result.bit_error_rate == 0.0

    def test_uses_shared_memory(self):
        # The defining requirement the WB channel does not have.
        result = run_flush_reload_channel(FlushReloadConfig(**QUIET))
        assert result.channel == "Flush+Reload"


class TestFlushFlush:
    def test_transmits(self):
        result = run_flush_flush_channel(FlushFlushConfig(**QUIET))
        assert result.bit_error_rate == 0.0

    def test_rate_reported(self):
        result = run_flush_flush_channel(FlushFlushConfig(**QUIET))
        assert result.rate_kbps == pytest.approx(400.0)


class TestCommonBehaviour:
    @pytest.mark.parametrize(
        "runner,config_cls",
        [
            (run_lru_channel, LRUChannelConfig),
            (run_prime_probe_channel, PrimeProbeConfig),
            (run_flush_reload_channel, FlushReloadConfig),
            (run_flush_flush_channel, FlushFlushConfig),
        ],
    )
    def test_deterministic_given_seed(self, runner, config_cls):
        first = runner(config_cls(**QUIET))
        second = runner(config_cls(**QUIET))
        assert first.received_bits == second.received_bits

    @pytest.mark.parametrize(
        "config_cls",
        [LRUChannelConfig, PrimeProbeConfig, FlushReloadConfig, FlushFlushConfig],
    )
    def test_rate_property(self, config_cls):
        assert config_cls(period_cycles=5500).rate_kbps == pytest.approx(400.0)
