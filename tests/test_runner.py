"""The parallel runner: determinism, manifests, fault handling."""

import json
import os

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_seed
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import FULL, QUICK
from repro.runner import (
    CRASH_RETRIES,
    ManifestEntry,
    RunInterrupted,
    RunManifest,
    TaskSpec,
    crash_backoff_seconds,
    dispatch_order,
    plan_tasks,
    run_experiments,
    run_tasks,
)

#: Cheap quick-mode experiments (fractions of a second each).
CHEAP = ["table4", "fig7", "fig4"]


class TestPlanning:
    def test_one_task_per_experiment_by_default(self):
        tasks = plan_tasks(CHEAP, profile=QUICK, base_seed=3)
        assert [task.task_id for task in tasks] == CHEAP
        assert all(task.seed == 3 for task in tasks)

    def test_shard_seeds_are_derived_and_order_independent(self):
        tasks = plan_tasks(["fig7"], profile=QUICK, base_seed=5,
                           seeds_per_experiment=3)
        assert tasks[0].seed == 5  # shard 0 matches the serial run
        assert tasks[1].seed == derive_seed(5, "fig7/shard1")
        assert tasks[2].seed == derive_seed(5, "fig7/shard2")
        assert len({task.seed for task in tasks}) == 3

    def test_dispatch_order_is_heaviest_first(self):
        tasks = plan_tasks(["table4", "defenses", "fig6"], profile=QUICK)
        ordered = [task.experiment_id for task in dispatch_order(tasks)]
        assert ordered == ["defenses", "fig6", "table4"]

    def test_unknown_experiment_rejected_before_running(self):
        with pytest.raises(ConfigurationError, match="tablezzz"):
            run_experiments(["tablezzz"], profile=QUICK)

    def test_bad_shard_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskSpec("x", "x", 0, QUICK, shard_index=2, num_shards=2)
        with pytest.raises(ConfigurationError):
            TaskSpec("x", "x", 0, QUICK, timeout=0)
        with pytest.raises(ConfigurationError):
            plan_tasks(["table4"], seeds_per_experiment=0)


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_experiments(CHEAP, profile=QUICK, seed=0, jobs=1)

    @pytest.fixture(scope="class")
    def parallel(self):
        return run_experiments(CHEAP, profile=QUICK, seed=0, jobs=3)

    def test_parallel_equals_serial(self, serial, parallel):
        for experiment_id in CHEAP:
            assert (
                parallel.entry(experiment_id).result.to_json()
                == serial.entry(experiment_id).result.to_json()
            ), experiment_id

    def test_entries_keep_plan_order(self, parallel):
        assert [entry.task_id for entry in parallel.entries] == CHEAP

    def test_parallel_entries_ran_on_workers(self, parallel):
        assert all(entry.worker_id is not None for entry in parallel.entries)

    def test_serial_entries_ran_in_process(self, serial):
        assert all(entry.worker_id is None for entry in serial.entries)


class TestManifest:
    @pytest.fixture(scope="class")
    def manifest(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("results")
        return run_experiments(
            ["table4"], profile=QUICK, jobs=1, out_dir=out
        ), out

    def test_round_trips_losslessly(self, manifest):
        run, _ = manifest
        rebuilt = RunManifest.from_json(run.to_json())
        assert rebuilt.to_json() == run.to_json()
        assert rebuilt.entry("table4").result.to_json() == \
            run.entry("table4").result.to_json()

    def test_persisted_and_loadable(self, manifest):
        run, out = manifest
        loaded = RunManifest.load(out)
        assert loaded.to_json() == run.to_json()
        # The file itself is valid, schema-stamped JSON.
        data = json.loads((out / "manifest.json").read_text())
        assert data["schema_version"] == 1
        assert data["entries"][0]["result"]["schema_version"] == 1

    def test_load_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RunManifest.load(tmp_path / "nowhere")

    def test_unknown_schema_version_raises(self, manifest):
        run, _ = manifest
        data = run.to_dict()
        data["schema_version"] = 999
        with pytest.raises(ConfigurationError):
            RunManifest.from_dict(data)

    def test_entry_lookup_unknown_task(self, manifest):
        run, _ = manifest
        with pytest.raises(ConfigurationError):
            run.entry("nope")
        with pytest.raises(ConfigurationError):
            run.result_for("nope")


class TestResultSerialization:
    def test_round_trip_preserves_json(self):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            paper_reference="r",
            columns=["k", "v"],
            rows=[["a", 1.5], ["b", (1, 2)]],
            notes="n",
            params={"trials": 10, "nested": (3, 4)},
            series={"samples": [(0, 1), (2, 3)]},
        )
        text = result.to_json()
        rebuilt = ExperimentResult.from_json(text)
        assert rebuilt.to_json() == text
        # Tuples normalise to lists, values survive.
        assert rebuilt.series["samples"] == [[0, 1], [2, 3]]
        assert rebuilt.params["trials"] == 10

    def test_unknown_schema_version_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentResult.from_json('{"schema_version": 42}')


class TestFaultHandling:
    def test_crash_is_retried_with_backoff_then_failed(self):
        tasks = [TaskSpec("boom", "fake", 0, QUICK,
                          entry_point="tests.fake_experiments:always_crash")]
        manifest = run_tasks(tasks, jobs=2)
        entry = manifest.entry("boom")
        assert entry.status == "failed"
        assert entry.attempts == 1 + CRASH_RETRIES
        assert "crashed" in entry.error
        # One recorded backoff per retry, growing exponentially.
        assert len(entry.backoff_history) == CRASH_RETRIES
        for earlier, later in zip(entry.backoff_history, entry.backoff_history[1:]):
            assert later > earlier
        # Backoffs are deterministic: same task id => same waits.
        assert entry.backoff_history == [
            crash_backoff_seconds("boom", attempt)
            for attempt in range(2, 2 + CRASH_RETRIES)
        ]

    def test_crash_once_recovers_on_retry(self, tmp_path):
        marker = tmp_path / "crashed-once"
        os.environ["REPRO_TEST_CRASH_MARKER"] = str(marker)
        try:
            tasks = [TaskSpec("flaky", "fake", 7, QUICK,
                              entry_point="tests.fake_experiments:crash_once")]
            manifest = run_tasks(tasks, jobs=2)
        finally:
            del os.environ["REPRO_TEST_CRASH_MARKER"]
        entry = manifest.entry("flaky")
        assert entry.ok
        assert entry.attempts == 2
        assert entry.result.rows == [[7]]

    def test_timeout_kills_the_task(self):
        tasks = [
            TaskSpec("slow", "fake", 0, QUICK, timeout=1.0,
                     entry_point="tests.fake_experiments:sleeps_forever"),
            TaskSpec("fine", "fake", 1, QUICK,
                     entry_point="tests.fake_experiments:well_behaved"),
        ]
        manifest = run_tasks(tasks, jobs=2)
        assert manifest.entry("slow").status == "timeout"
        assert manifest.entry("slow").attempts == 1
        assert manifest.entry("fine").ok
        assert not manifest.ok
        assert [entry.task_id for entry in manifest.failures] == ["slow"]

    def test_deterministic_exception_not_retried(self):
        tasks = [TaskSpec("err", "fake", 0, QUICK,
                          entry_point="tests.fake_experiments:raises_error")]
        manifest = run_tasks(tasks, jobs=2)
        entry = manifest.entry("err")
        assert entry.status == "failed"
        assert entry.attempts == 1
        assert "deliberate failure" in entry.error

    def test_serial_path_records_failures_too(self):
        tasks = [TaskSpec("err", "fake", 0, QUICK,
                          entry_point="tests.fake_experiments:raises_error")]
        manifest = run_tasks(tasks, jobs=1)
        assert manifest.entry("err").status == "failed"
        assert "deliberate failure" in manifest.entry("err").error

    def test_bad_entry_point_strings(self):
        bad = TaskSpec("x", "fake", 0, QUICK, entry_point="no-colon")
        manifest = run_tasks([bad], jobs=1)
        assert manifest.entry("x").status == "failed"
        missing = TaskSpec("x", "fake", 0, QUICK,
                           entry_point="tests.fake_experiments:nope")
        manifest = run_tasks([missing], jobs=1)
        assert manifest.entry("x").status == "failed"


class TestMultiSeedSweep:
    def test_sweep_produces_distinct_shard_results(self):
        manifest = run_experiments(
            ["table2"], profile=QUICK, seed=0, jobs=2, seeds_per_experiment=2
        )
        assert [entry.task_id for entry in manifest.entries] == \
            ["table2", "table2#s1"]
        base = manifest.entry("table2")
        shard = manifest.entry("table2#s1")
        assert base.seed == 0
        assert shard.seed == derive_seed(0, "table2/shard1")
        # Shard 0 is exactly the serial single-seed result.
        from repro.experiments import run_experiment
        assert base.result.to_json() == \
            run_experiment("table2", profile=QUICK, seed=0).to_json()


class TestManifestRobustness:
    def _manifest(self):
        tasks = [TaskSpec("t", "fake", 0, QUICK,
                          entry_point="tests.fake_experiments:seed_echo")]
        return run_tasks(tasks, jobs=1)

    def test_save_is_atomic(self, tmp_path):
        manifest = self._manifest()
        path = manifest.save(tmp_path)
        assert path.name == "manifest.json"
        # The temporary file is always renamed away, never left behind.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["manifest.json"]
        assert RunManifest.load(tmp_path).to_json() == manifest.to_json()

    def test_truncated_json_raises_manifest_error(self, tmp_path):
        from repro.common.errors import ManifestError

        manifest = self._manifest()
        path = manifest.save(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # a torn write
        with pytest.raises(ManifestError, match="truncated or corrupt"):
            RunManifest.load(tmp_path)

    def test_non_object_and_mangled_json_raise(self):
        from repro.common.errors import ManifestError

        with pytest.raises(ManifestError, match="JSON object"):
            RunManifest.from_json("[1, 2, 3]")
        with pytest.raises(ManifestError, match="required fields"):
            RunManifest.from_json(
                json.dumps({"schema_version": 1, "entries": [{}]})
            )

    def test_manifest_error_is_a_configuration_error(self):
        from repro.common.errors import ManifestError

        assert issubclass(ManifestError, ConfigurationError)

    def test_canonical_form_strips_volatile_fields(self):
        manifest = self._manifest()
        entry = manifest.entries[0]
        entry.wall_seconds = 123.0
        entry.worker_id = 5
        entry.attempts = 3
        entry.backoff_history = [0.25, 0.5]
        manifest.jobs = 8
        manifest.total_wall_seconds = 999.0
        other = self._manifest()
        assert manifest.to_json() != other.to_json()
        assert manifest.canonical_json() == other.canonical_json()


class _InterruptAfter:
    """Progress listener that simulates Ctrl-C after N finished tasks."""

    def __init__(self, after):
        self.after = after
        self.seen = 0

    def run_started(self, total, jobs):
        pass

    def task_started(self, task, worker_id):
        pass

    def task_retried(self, task, attempt, error):
        pass

    def task_finished(self, entry, done, total):
        self.seen += 1
        if self.seen >= self.after:
            raise KeyboardInterrupt

    def run_finished(self, done, total, wall):
        pass


class TestInterruptAndResume:
    def _plan(self, entry_point="tests.fake_experiments:seed_echo"):
        return [
            TaskSpec(f"t{i}", "fake", 10 + i, QUICK, entry_point=entry_point)
            for i in range(3)
        ]

    def test_serial_interrupt_flushes_resumable_manifest(self, tmp_path):
        marker = tmp_path / "ran-once"
        os.environ["REPRO_TEST_INTERRUPT_MARKER"] = str(marker)
        out = tmp_path / "results"
        try:
            with pytest.raises(RunInterrupted) as excinfo:
                run_tasks(
                    self._plan("tests.fake_experiments:interrupt_after"),
                    jobs=1,
                    out_dir=out,
                )
        finally:
            del os.environ["REPRO_TEST_INTERRUPT_MARKER"]
        partial = excinfo.value.manifest
        assert partial is not None
        assert partial.interrupted
        assert [e.status for e in partial.entries] == \
            ["ok", "interrupted", "interrupted"]
        # The flush hit the disk atomically and loads back.
        assert RunManifest.load(out).canonical_json() == partial.canonical_json()

        # Resume: completed tasks are reused, the rest run; the merged
        # manifest is canonically identical to an uninterrupted run.
        resumed = run_tasks(self._plan(), jobs=1, out_dir=out, resume_from=out)
        uninterrupted = run_tasks(self._plan(), jobs=1)
        assert resumed.ok and not resumed.interrupted
        assert resumed.canonical_json() == uninterrupted.canonical_json()

    def test_pool_interrupt_terminates_and_flushes(self, tmp_path):
        out = tmp_path / "results"
        with pytest.raises(RunInterrupted) as excinfo:
            run_tasks(
                self._plan(), jobs=2, out_dir=out, progress=_InterruptAfter(1)
            )
        partial = excinfo.value.manifest
        assert partial is not None
        assert partial.interrupted
        assert len(partial.entries) == 3
        assert any(e.ok for e in partial.entries)
        resumed = run_tasks(self._plan(), jobs=1, resume_from=partial)
        uninterrupted = run_tasks(self._plan(), jobs=1)
        assert resumed.canonical_json() == uninterrupted.canonical_json()

    def test_resume_skips_completed_tasks(self):
        complete = run_tasks(self._plan(), jobs=1)
        # Resume with an always-crashing entry point: if any task were
        # re-executed it would fail, so success proves they were skipped.
        resumed = run_tasks(
            self._plan("tests.fake_experiments:always_crash"),
            jobs=1,
            resume_from=complete,
        )
        assert resumed.ok
        assert resumed.canonical_json() == complete.canonical_json()

    def test_resume_reruns_non_ok_entries(self):
        plan = self._plan()
        broken = run_tasks(
            self._plan("tests.fake_experiments:raises_error"), jobs=1
        )
        assert not broken.ok
        resumed = run_tasks(plan, jobs=1, resume_from=broken)
        assert resumed.ok
        assert resumed.canonical_json() == run_tasks(plan, jobs=1).canonical_json()


class TestEntryPointBinding:
    def test_experiment_id_bound_when_declared(self):
        tasks = [
            TaskSpec("a", "exp_alpha", 0, QUICK,
                     entry_point="tests.fake_experiments:echo_experiment_id"),
            TaskSpec("b", "exp_beta", 0, QUICK,
                     entry_point="tests.fake_experiments:echo_experiment_id"),
        ]
        manifest = run_tasks(tasks, jobs=1)
        assert manifest.entry("a").result.rows == [["exp_alpha"]]
        assert manifest.entry("b").result.rows == [["exp_beta"]]

    def test_plain_entry_points_unaffected(self):
        tasks = [TaskSpec("t", "fake", 4, QUICK,
                          entry_point="tests.fake_experiments:seed_echo")]
        assert run_tasks(tasks, jobs=1).entry("t").result.rows == [[4]]
