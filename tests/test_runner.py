"""The parallel runner: determinism, manifests, fault handling."""

import json
import os

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_seed
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import FULL, QUICK
from repro.runner import (
    ManifestEntry,
    RunManifest,
    TaskSpec,
    dispatch_order,
    plan_tasks,
    run_experiments,
    run_tasks,
)

#: Cheap quick-mode experiments (fractions of a second each).
CHEAP = ["table4", "fig7", "fig4"]


class TestPlanning:
    def test_one_task_per_experiment_by_default(self):
        tasks = plan_tasks(CHEAP, profile=QUICK, base_seed=3)
        assert [task.task_id for task in tasks] == CHEAP
        assert all(task.seed == 3 for task in tasks)

    def test_shard_seeds_are_derived_and_order_independent(self):
        tasks = plan_tasks(["fig7"], profile=QUICK, base_seed=5,
                           seeds_per_experiment=3)
        assert tasks[0].seed == 5  # shard 0 matches the serial run
        assert tasks[1].seed == derive_seed(5, "fig7/shard1")
        assert tasks[2].seed == derive_seed(5, "fig7/shard2")
        assert len({task.seed for task in tasks}) == 3

    def test_dispatch_order_is_heaviest_first(self):
        tasks = plan_tasks(["table4", "defenses", "fig6"], profile=QUICK)
        ordered = [task.experiment_id for task in dispatch_order(tasks)]
        assert ordered == ["defenses", "fig6", "table4"]

    def test_unknown_experiment_rejected_before_running(self):
        with pytest.raises(ConfigurationError, match="tablezzz"):
            run_experiments(["tablezzz"], profile=QUICK)

    def test_bad_shard_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskSpec("x", "x", 0, QUICK, shard_index=2, num_shards=2)
        with pytest.raises(ConfigurationError):
            TaskSpec("x", "x", 0, QUICK, timeout=0)
        with pytest.raises(ConfigurationError):
            plan_tasks(["table4"], seeds_per_experiment=0)


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_experiments(CHEAP, profile=QUICK, seed=0, jobs=1)

    @pytest.fixture(scope="class")
    def parallel(self):
        return run_experiments(CHEAP, profile=QUICK, seed=0, jobs=3)

    def test_parallel_equals_serial(self, serial, parallel):
        for experiment_id in CHEAP:
            assert (
                parallel.entry(experiment_id).result.to_json()
                == serial.entry(experiment_id).result.to_json()
            ), experiment_id

    def test_entries_keep_plan_order(self, parallel):
        assert [entry.task_id for entry in parallel.entries] == CHEAP

    def test_parallel_entries_ran_on_workers(self, parallel):
        assert all(entry.worker_id is not None for entry in parallel.entries)

    def test_serial_entries_ran_in_process(self, serial):
        assert all(entry.worker_id is None for entry in serial.entries)


class TestManifest:
    @pytest.fixture(scope="class")
    def manifest(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("results")
        return run_experiments(
            ["table4"], profile=QUICK, jobs=1, out_dir=out
        ), out

    def test_round_trips_losslessly(self, manifest):
        run, _ = manifest
        rebuilt = RunManifest.from_json(run.to_json())
        assert rebuilt.to_json() == run.to_json()
        assert rebuilt.entry("table4").result.to_json() == \
            run.entry("table4").result.to_json()

    def test_persisted_and_loadable(self, manifest):
        run, out = manifest
        loaded = RunManifest.load(out)
        assert loaded.to_json() == run.to_json()
        # The file itself is valid, schema-stamped JSON.
        data = json.loads((out / "manifest.json").read_text())
        assert data["schema_version"] == 1
        assert data["entries"][0]["result"]["schema_version"] == 1

    def test_load_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RunManifest.load(tmp_path / "nowhere")

    def test_unknown_schema_version_raises(self, manifest):
        run, _ = manifest
        data = run.to_dict()
        data["schema_version"] = 999
        with pytest.raises(ConfigurationError):
            RunManifest.from_dict(data)

    def test_entry_lookup_unknown_task(self, manifest):
        run, _ = manifest
        with pytest.raises(ConfigurationError):
            run.entry("nope")
        with pytest.raises(ConfigurationError):
            run.result_for("nope")


class TestResultSerialization:
    def test_round_trip_preserves_json(self):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            paper_reference="r",
            columns=["k", "v"],
            rows=[["a", 1.5], ["b", (1, 2)]],
            notes="n",
            params={"trials": 10, "nested": (3, 4)},
            series={"samples": [(0, 1), (2, 3)]},
        )
        text = result.to_json()
        rebuilt = ExperimentResult.from_json(text)
        assert rebuilt.to_json() == text
        # Tuples normalise to lists, values survive.
        assert rebuilt.series["samples"] == [[0, 1], [2, 3]]
        assert rebuilt.params["trials"] == 10

    def test_unknown_schema_version_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentResult.from_json('{"schema_version": 42}')


class TestFaultHandling:
    def test_crash_is_retried_once_then_failed(self):
        tasks = [TaskSpec("boom", "fake", 0, QUICK,
                          entry_point="tests.fake_experiments:always_crash")]
        manifest = run_tasks(tasks, jobs=2)
        entry = manifest.entry("boom")
        assert entry.status == "failed"
        assert entry.attempts == 2
        assert "crashed" in entry.error

    def test_crash_once_recovers_on_retry(self, tmp_path):
        marker = tmp_path / "crashed-once"
        os.environ["REPRO_TEST_CRASH_MARKER"] = str(marker)
        try:
            tasks = [TaskSpec("flaky", "fake", 7, QUICK,
                              entry_point="tests.fake_experiments:crash_once")]
            manifest = run_tasks(tasks, jobs=2)
        finally:
            del os.environ["REPRO_TEST_CRASH_MARKER"]
        entry = manifest.entry("flaky")
        assert entry.ok
        assert entry.attempts == 2
        assert entry.result.rows == [[7]]

    def test_timeout_kills_the_task(self):
        tasks = [
            TaskSpec("slow", "fake", 0, QUICK, timeout=1.0,
                     entry_point="tests.fake_experiments:sleeps_forever"),
            TaskSpec("fine", "fake", 1, QUICK,
                     entry_point="tests.fake_experiments:well_behaved"),
        ]
        manifest = run_tasks(tasks, jobs=2)
        assert manifest.entry("slow").status == "timeout"
        assert manifest.entry("slow").attempts == 1
        assert manifest.entry("fine").ok
        assert not manifest.ok
        assert [entry.task_id for entry in manifest.failures] == ["slow"]

    def test_deterministic_exception_not_retried(self):
        tasks = [TaskSpec("err", "fake", 0, QUICK,
                          entry_point="tests.fake_experiments:raises_error")]
        manifest = run_tasks(tasks, jobs=2)
        entry = manifest.entry("err")
        assert entry.status == "failed"
        assert entry.attempts == 1
        assert "deliberate failure" in entry.error

    def test_serial_path_records_failures_too(self):
        tasks = [TaskSpec("err", "fake", 0, QUICK,
                          entry_point="tests.fake_experiments:raises_error")]
        manifest = run_tasks(tasks, jobs=1)
        assert manifest.entry("err").status == "failed"
        assert "deliberate failure" in manifest.entry("err").error

    def test_bad_entry_point_strings(self):
        bad = TaskSpec("x", "fake", 0, QUICK, entry_point="no-colon")
        manifest = run_tasks([bad], jobs=1)
        assert manifest.entry("x").status == "failed"
        missing = TaskSpec("x", "fake", 0, QUICK,
                           entry_point="tests.fake_experiments:nope")
        manifest = run_tasks([missing], jobs=1)
        assert manifest.entry("x").status == "failed"


class TestMultiSeedSweep:
    def test_sweep_produces_distinct_shard_results(self):
        manifest = run_experiments(
            ["table2"], profile=QUICK, seed=0, jobs=2, seeds_per_experiment=2
        )
        assert [entry.task_id for entry in manifest.entries] == \
            ["table2", "table2#s1"]
        base = manifest.entry("table2")
        shard = manifest.entry("table2#s1")
        assert base.seed == 0
        assert shard.seed == derive_seed(0, "table2/shard1")
        # Shard 0 is exactly the serial single-seed result.
        from repro.experiments import run_experiment
        assert base.result.to_json() == \
            run_experiment("table2", profile=QUICK, seed=0).to_json()
