"""The RunProfile API and the deprecated quick= compatibility path."""

import warnings

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments import run_experiment
from repro.experiments.profiles import (
    FULL,
    QUICK,
    RunProfile,
    available_profiles,
    resolve_profile,
)


class TestRunProfile:
    def test_canonical_profiles(self):
        assert QUICK.is_reduced and not FULL.is_reduced
        assert available_profiles() == ["full", "quick"]

    def test_count_selects_budget(self):
        assert QUICK.count(quick=400, full=10000) == 400
        assert FULL.count(quick=400, full=10000) == 10000

    def test_scale_shrinks_budgets_with_floor(self):
        smoke = RunProfile("smoke", reduced=True, scale=0.5)
        assert smoke.count(quick=400, full=10000) == 200
        assert smoke.count(quick=1, full=10) == 1  # never below one

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RunProfile("", reduced=True)
        with pytest.raises(ConfigurationError):
            RunProfile("x", scale=0)

    def test_dict_round_trip(self):
        profile = RunProfile("smoke", reduced=True, scale=0.25)
        assert RunProfile.from_dict(profile.to_dict()) == profile

    def test_telemetry_round_trip(self):
        profile = RunProfile("smoke", reduced=True).with_telemetry()
        assert profile.telemetry
        assert RunProfile.from_dict(profile.to_dict()) == profile

    def test_with_telemetry_is_identity_when_unchanged(self):
        assert QUICK.with_telemetry(False) is QUICK
        enabled = QUICK.with_telemetry()
        assert enabled is not QUICK
        assert enabled.with_telemetry(True) is enabled

    def test_from_dict_defaults_telemetry_off(self):
        # Manifests written before the telemetry field must still load.
        data = QUICK.to_dict()
        del data["telemetry"]
        assert RunProfile.from_dict(data).telemetry is False


class TestResolveProfile:
    def test_none_means_full(self):
        assert resolve_profile(None) is FULL

    def test_names_resolve(self):
        assert resolve_profile("quick") is QUICK
        assert resolve_profile("full") is FULL

    def test_instances_pass_through(self):
        custom = RunProfile("custom", reduced=True, scale=2.0)
        assert resolve_profile(custom) is custom

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_profile("warp-speed")

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_profile(3.14)

    def test_quick_flag_warns_and_maps(self):
        with pytest.warns(DeprecationWarning):
            assert resolve_profile(quick=True) is QUICK
        with pytest.warns(DeprecationWarning):
            assert resolve_profile(quick=False) is FULL

    def test_legacy_positional_bool_warns(self):
        with pytest.warns(DeprecationWarning):
            assert resolve_profile(True) is QUICK

    def test_profile_and_quick_conflict(self):
        with pytest.raises(ConfigurationError):
            resolve_profile("quick", quick=True)


class TestDeprecatedQuickEndToEnd:
    def test_run_experiment_quick_alias_still_works(self):
        with pytest.warns(DeprecationWarning):
            legacy = run_experiment("table4", quick=True)
        modern = run_experiment("table4", profile="quick")
        assert legacy.to_json() == modern.to_json()

    def test_module_run_quick_alias_still_works(self):
        from repro.experiments import table4

        with pytest.warns(DeprecationWarning):
            legacy = table4.run(quick=True)
        modern = table4.run(profile=QUICK)
        assert legacy.to_json() == modern.to_json()

    def test_profile_threads_through_params(self):
        result = run_experiment("table2", profile="quick")
        assert result.params["trials"] == 400
        # full profile picks the paper-scale budget (not executed here:
        # the profile maths alone proves the wiring).
        assert QUICK.count(quick=400, full=10000) == 400
