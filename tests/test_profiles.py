"""The RunProfile API and the deprecated quick= compatibility path."""

import warnings

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments import run_experiment
from repro.experiments.profiles import (
    FULL,
    QUICK,
    RunProfile,
    available_profiles,
    resolve_profile,
)


class TestRunProfile:
    def test_canonical_profiles(self):
        assert QUICK.is_reduced and not FULL.is_reduced
        assert available_profiles() == ["full", "quick"]

    def test_count_selects_budget(self):
        assert QUICK.count(quick=400, full=10000) == 400
        assert FULL.count(quick=400, full=10000) == 10000

    def test_scale_shrinks_budgets_with_floor(self):
        smoke = RunProfile("smoke", reduced=True, scale=0.5)
        assert smoke.count(quick=400, full=10000) == 200
        assert smoke.count(quick=1, full=10) == 1  # never below one

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RunProfile("", reduced=True)
        with pytest.raises(ConfigurationError):
            RunProfile("x", scale=0)

    def test_dict_round_trip(self):
        profile = RunProfile("smoke", reduced=True, scale=0.25)
        assert RunProfile.from_dict(profile.to_dict()) == profile

    def test_telemetry_round_trip(self):
        profile = RunProfile("smoke", reduced=True).with_telemetry()
        assert profile.telemetry
        assert RunProfile.from_dict(profile.to_dict()) == profile

    def test_with_telemetry_is_identity_when_unchanged(self):
        assert QUICK.with_telemetry(False) is QUICK
        enabled = QUICK.with_telemetry()
        assert enabled is not QUICK
        assert enabled.with_telemetry(True) is enabled

    def test_from_dict_defaults_telemetry_off(self):
        # Manifests written before the telemetry field must still load.
        data = QUICK.to_dict()
        del data["telemetry"]
        assert RunProfile.from_dict(data).telemetry is False


class TestResolveProfile:
    def test_none_means_full(self):
        assert resolve_profile(None) is FULL

    def test_names_resolve(self):
        assert resolve_profile("quick") is QUICK
        assert resolve_profile("full") is FULL

    def test_instances_pass_through(self):
        custom = RunProfile("custom", reduced=True, scale=2.0)
        assert resolve_profile(custom) is custom

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_profile("warp-speed")

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_profile(3.14)

    def test_quick_flag_removed_with_pointer_at_runprofile(self):
        # The alias was deprecated when profiles landed and is now a
        # tombstone: a TypeError whose message names the replacement.
        with pytest.raises(TypeError, match="RunProfile"):
            resolve_profile(quick=True)
        with pytest.raises(TypeError, match="RunProfile"):
            resolve_profile(quick=False)

    def test_legacy_positional_bool_removed(self):
        with pytest.raises(TypeError, match="quick= flag has been removed"):
            resolve_profile(True)


class TestRemovedQuickEndToEnd:
    def test_run_experiment_quick_alias_raises(self):
        with pytest.raises(TypeError, match="RunProfile"):
            run_experiment("table4", quick=True)

    def test_module_run_rejects_quick_kwarg(self):
        from repro.experiments import table4

        with pytest.raises(TypeError):
            table4.run(quick=True)

    def test_profile_threads_through_params(self):
        result = run_experiment("table2", profile="quick")
        assert result.params["trials"] == 400
        # full profile picks the paper-scale budget (not executed here:
        # the profile maths alone proves the wiring).
        assert QUICK.count(quick=400, full=10000) == 400
