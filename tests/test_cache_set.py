"""CacheSet: fills, evictions, locking, dirty accounting."""

import random

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.cache.cache_set import CacheSet, iter_valid_lines
from repro.replacement import TrueLRU


def make_set(ways=4, seed=0):
    return CacheSet(ways, TrueLRU(ways, random.Random(seed)))


def addr(tag, set_index):
    return tag  # trivial reconstructor for unit tests


class TestFill:
    def test_fills_invalid_ways_first(self):
        cache_set = make_set()
        for tag in range(4):
            evicted = cache_set.fill(tag, False, None, 0, addr)
            assert evicted is None
        assert cache_set.valid_count() == 4

    def test_eviction_reports_victim(self):
        cache_set = make_set()
        for tag in range(4):
            cache_set.fill(tag, False, None, 0, addr)
        evicted = cache_set.fill(99, False, None, 0, addr)
        assert evicted is not None
        assert evicted.address == 0  # LRU: tag 0 was oldest
        assert not evicted.dirty

    def test_dirty_state_travels_with_eviction(self):
        cache_set = make_set()
        for tag in range(4):
            cache_set.fill(tag, tag == 0, None, 0, addr)
        evicted = cache_set.fill(99, False, None, 0, addr)
        assert evicted.dirty

    def test_refusing_duplicate_fill(self):
        cache_set = make_set()
        cache_set.fill(7, False, None, 0, addr)
        with pytest.raises(SimulationError):
            cache_set.fill(7, False, None, 0, addr)

    def test_owner_recorded(self):
        cache_set = make_set()
        cache_set.fill(1, False, 5, 0, addr)
        way = cache_set.find(1)
        assert cache_set.lines[way].owner == 5


class TestFindAndTouch:
    def test_find_present(self):
        cache_set = make_set()
        cache_set.fill(3, False, None, 0, addr)
        assert cache_set.find(3) is not None

    def test_find_absent(self):
        cache_set = make_set()
        assert cache_set.find(3) is None

    def test_touch_protects_from_eviction(self):
        cache_set = make_set()
        for tag in range(4):
            cache_set.fill(tag, False, None, 0, addr)
        cache_set.touch(cache_set.find(0))
        evicted = cache_set.fill(99, False, None, 0, addr)
        assert evicted.address != 0


class TestLocking:
    def test_locked_line_never_evicted(self):
        cache_set = make_set()
        for tag in range(4):
            cache_set.fill(tag, False, None, 0, addr)
        assert cache_set.lock(0)
        for fresh in range(100, 110):
            cache_set.fill(fresh, False, None, 0, addr)
        assert cache_set.find(0) is not None

    def test_all_locked_raises(self):
        cache_set = make_set()
        for tag in range(4):
            cache_set.fill(tag, False, None, 0, addr)
            cache_set.lock(tag)
        with pytest.raises(SimulationError):
            cache_set.choose_victim()

    def test_unlock_restores_evictability(self):
        cache_set = make_set(ways=2)
        cache_set.fill(0, False, None, 0, addr)
        cache_set.fill(1, False, None, 0, addr)
        cache_set.lock(0)
        cache_set.lock(1)
        cache_set.unlock(0)
        assert cache_set.choose_victim() == cache_set.find(0)

    def test_lock_absent_returns_false(self):
        cache_set = make_set()
        assert not cache_set.lock(123)
        assert not cache_set.unlock(123)


class TestAllowedWays:
    def test_fill_respects_allowed_ways(self):
        cache_set = make_set(ways=4)
        for tag in range(4):
            cache_set.fill(tag, False, None, 0, addr)
        for fresh in range(10, 20):
            cache_set.fill(fresh, False, None, 0, addr, allowed_ways=(0, 1))
        # Ways 2 and 3 still hold the original lines.
        assert cache_set.lines[2].tag in range(4)
        assert cache_set.lines[3].tag in range(4)

    def test_empty_allowed_ways_rejected(self):
        cache_set = make_set()
        for tag in range(4):
            cache_set.fill(tag, False, None, 0, addr)
        with pytest.raises(ConfigurationError):
            cache_set.choose_victim(allowed_ways=())


class TestInvalidate:
    def test_invalidate_reports_final_state(self):
        cache_set = make_set()
        cache_set.fill(5, True, 2, 0, addr)
        snapshot = cache_set.invalidate(5)
        assert snapshot.dirty
        assert snapshot.owner == 2
        assert cache_set.find(5) is None

    def test_invalidate_absent(self):
        cache_set = make_set()
        assert cache_set.invalidate(5) is None


class TestAccounting:
    def test_dirty_count(self):
        cache_set = make_set()
        cache_set.fill(0, True, None, 0, addr)
        cache_set.fill(1, False, None, 0, addr)
        cache_set.fill(2, True, None, 0, addr)
        assert cache_set.dirty_count() == 2

    def test_resident_tags(self):
        cache_set = make_set()
        cache_set.fill(4, False, None, 0, addr)
        cache_set.fill(9, False, None, 0, addr)
        assert sorted(cache_set.resident_tags()) == [4, 9]

    def test_iter_valid_lines(self):
        cache_set = make_set()
        cache_set.fill(1, False, None, 0, addr)
        assert len(list(iter_valid_lines(cache_set))) == 1


class TestConstruction:
    def test_policy_way_mismatch(self):
        with pytest.raises(ConfigurationError):
            CacheSet(4, TrueLRU(8, random.Random(0)))

    def test_zero_ways(self):
        with pytest.raises(ConfigurationError):
            CacheSet(0, TrueLRU(1, random.Random(0)))


class TestDirtyHintGating:
    """The dirty-ways hint is built only for policies that opted in."""

    def test_default_policy_never_receives_hint(self):
        calls = []

        class SpyLRU(TrueLRU):
            def notify_dirty_ways(self, dirty_mask):
                calls.append(dirty_mask)

        cache_set = CacheSet(4, SpyLRU(4, random.Random(0)))
        for tag in range(4):
            cache_set.fill(tag, True, None, 0, addr)
        cache_set.fill(99, False, None, 0, addr)  # forces a victim choice
        assert calls == []  # wants_dirty_hint defaults to False

    def test_opted_in_policy_receives_current_dirty_mask(self):
        calls = []

        class HintedLRU(TrueLRU):
            wants_dirty_hint = True

            def notify_dirty_ways(self, dirty_mask):
                calls.append(dirty_mask)

        cache_set = CacheSet(4, HintedLRU(4, random.Random(0)))
        for tag in range(4):
            cache_set.fill(tag, tag % 2 == 0, None, 0, addr)
        cache_set.fill(99, False, None, 0, addr)
        assert len(calls) == 1
        # The mask describes the set at victim-selection time: the dirty
        # fills (tags 0, 2) were dirty, the clean ones were not.
        assert len(calls[0]) == 4
        assert sum(calls[0]) == 2

    def test_dirty_protecting_policy_opts_in(self):
        from repro.replacement.dirty_protect import DirtyProtectingLRU

        assert DirtyProtectingLRU.wants_dirty_hint
        assert not TrueLRU.wants_dirty_hint


class TestIncrementalCounters:
    def test_counters_follow_fill_markdirty_invalidate(self):
        cache_set = make_set()
        cache_set.fill(0, False, None, 0, addr)
        cache_set.fill(1, True, None, 0, addr)
        assert (cache_set.valid_count(), cache_set.dirty_count()) == (2, 1)
        cache_set.mark_dirty(cache_set.find(0))
        assert cache_set.dirty_count() == 2
        cache_set.mark_dirty(cache_set.find(0))  # idempotent
        assert cache_set.dirty_count() == 2
        cache_set.invalidate(1)
        assert (cache_set.valid_count(), cache_set.dirty_count()) == (1, 1)
        cache_set.invalidate_all()
        assert (cache_set.valid_count(), cache_set.dirty_count()) == (0, 0)

    def test_mark_dirty_on_invalid_way_raises(self):
        cache_set = make_set()
        with pytest.raises(SimulationError):
            cache_set.mark_dirty(0)

    def test_counters_never_drift_from_scan(self):
        rng = random.Random(42)
        cache_set = make_set(ways=4, seed=1)
        for step in range(600):
            op = rng.randrange(4)
            if op == 0:
                tag = rng.randrange(12)
                if cache_set.find(tag) is None:
                    cache_set.fill(tag, rng.random() < 0.5, None, 0, addr)
            elif op == 1:
                cache_set.invalidate(rng.randrange(12))
            elif op == 2:
                way = rng.randrange(4)
                if cache_set.lines[way].valid:
                    cache_set.mark_dirty(way)
            else:
                if rng.random() < 0.05:
                    cache_set.invalidate_all()
            assert cache_set.scan_counts() == (
                cache_set.valid_count(),
                cache_set.dirty_count(),
            )


class TestTagIndex:
    def test_index_never_goes_stale(self):
        """The tag -> way index always equals a fresh scan of the lines."""
        rng = random.Random(7)
        cache_set = make_set(ways=4, seed=2)
        for step in range(600):
            op = rng.randrange(3)
            tag = rng.randrange(10)
            if op == 0 and cache_set.find(tag) is None:
                cache_set.fill(tag, rng.random() < 0.3, None, 0, addr)
            elif op == 1:
                cache_set.invalidate(tag)
            elif op == 2 and rng.random() < 0.05:
                cache_set.invalidate_all()
            rebuilt = {
                line.tag: way
                for way, line in enumerate(cache_set.lines)
                if line.valid
            }
            assert cache_set.index_snapshot() == rebuilt
            # find() answers exactly like a scan would, for every tag.
            for probe in range(10):
                assert cache_set.find(probe) == rebuilt.get(probe)

    def test_eviction_removes_victim_tag_from_index(self):
        cache_set = make_set()
        for tag in range(4):
            cache_set.fill(tag, False, None, 0, addr)
        evicted = cache_set.fill(99, False, None, 0, addr)
        assert evicted is not None
        assert cache_set.find(evicted.address) is None  # addr() returns tag
        assert 99 in cache_set.index_snapshot()
