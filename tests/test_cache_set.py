"""CacheSet: fills, evictions, locking, dirty accounting."""

import random

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.cache.cache_set import CacheSet, iter_valid_lines
from repro.replacement import TrueLRU


def make_set(ways=4, seed=0):
    return CacheSet(ways, TrueLRU(ways, random.Random(seed)))


def addr(tag, set_index):
    return tag  # trivial reconstructor for unit tests


class TestFill:
    def test_fills_invalid_ways_first(self):
        cache_set = make_set()
        for tag in range(4):
            evicted = cache_set.fill(tag, False, None, 0, addr)
            assert evicted is None
        assert cache_set.valid_count() == 4

    def test_eviction_reports_victim(self):
        cache_set = make_set()
        for tag in range(4):
            cache_set.fill(tag, False, None, 0, addr)
        evicted = cache_set.fill(99, False, None, 0, addr)
        assert evicted is not None
        assert evicted.address == 0  # LRU: tag 0 was oldest
        assert not evicted.dirty

    def test_dirty_state_travels_with_eviction(self):
        cache_set = make_set()
        for tag in range(4):
            cache_set.fill(tag, tag == 0, None, 0, addr)
        evicted = cache_set.fill(99, False, None, 0, addr)
        assert evicted.dirty

    def test_refusing_duplicate_fill(self):
        cache_set = make_set()
        cache_set.fill(7, False, None, 0, addr)
        with pytest.raises(SimulationError):
            cache_set.fill(7, False, None, 0, addr)

    def test_owner_recorded(self):
        cache_set = make_set()
        cache_set.fill(1, False, 5, 0, addr)
        way = cache_set.find(1)
        assert cache_set.lines[way].owner == 5


class TestFindAndTouch:
    def test_find_present(self):
        cache_set = make_set()
        cache_set.fill(3, False, None, 0, addr)
        assert cache_set.find(3) is not None

    def test_find_absent(self):
        cache_set = make_set()
        assert cache_set.find(3) is None

    def test_touch_protects_from_eviction(self):
        cache_set = make_set()
        for tag in range(4):
            cache_set.fill(tag, False, None, 0, addr)
        cache_set.touch(cache_set.find(0))
        evicted = cache_set.fill(99, False, None, 0, addr)
        assert evicted.address != 0


class TestLocking:
    def test_locked_line_never_evicted(self):
        cache_set = make_set()
        for tag in range(4):
            cache_set.fill(tag, False, None, 0, addr)
        assert cache_set.lock(0)
        for fresh in range(100, 110):
            cache_set.fill(fresh, False, None, 0, addr)
        assert cache_set.find(0) is not None

    def test_all_locked_raises(self):
        cache_set = make_set()
        for tag in range(4):
            cache_set.fill(tag, False, None, 0, addr)
            cache_set.lock(tag)
        with pytest.raises(SimulationError):
            cache_set.choose_victim()

    def test_unlock_restores_evictability(self):
        cache_set = make_set(ways=2)
        cache_set.fill(0, False, None, 0, addr)
        cache_set.fill(1, False, None, 0, addr)
        cache_set.lock(0)
        cache_set.lock(1)
        cache_set.unlock(0)
        assert cache_set.choose_victim() == cache_set.find(0)

    def test_lock_absent_returns_false(self):
        cache_set = make_set()
        assert not cache_set.lock(123)
        assert not cache_set.unlock(123)


class TestAllowedWays:
    def test_fill_respects_allowed_ways(self):
        cache_set = make_set(ways=4)
        for tag in range(4):
            cache_set.fill(tag, False, None, 0, addr)
        for fresh in range(10, 20):
            cache_set.fill(fresh, False, None, 0, addr, allowed_ways=(0, 1))
        # Ways 2 and 3 still hold the original lines.
        assert cache_set.lines[2].tag in range(4)
        assert cache_set.lines[3].tag in range(4)

    def test_empty_allowed_ways_rejected(self):
        cache_set = make_set()
        for tag in range(4):
            cache_set.fill(tag, False, None, 0, addr)
        with pytest.raises(ConfigurationError):
            cache_set.choose_victim(allowed_ways=())


class TestInvalidate:
    def test_invalidate_reports_final_state(self):
        cache_set = make_set()
        cache_set.fill(5, True, 2, 0, addr)
        snapshot = cache_set.invalidate(5)
        assert snapshot.dirty
        assert snapshot.owner == 2
        assert cache_set.find(5) is None

    def test_invalidate_absent(self):
        cache_set = make_set()
        assert cache_set.invalidate(5) is None


class TestAccounting:
    def test_dirty_count(self):
        cache_set = make_set()
        cache_set.fill(0, True, None, 0, addr)
        cache_set.fill(1, False, None, 0, addr)
        cache_set.fill(2, True, None, 0, addr)
        assert cache_set.dirty_count() == 2

    def test_resident_tags(self):
        cache_set = make_set()
        cache_set.fill(4, False, None, 0, addr)
        cache_set.fill(9, False, None, 0, addr)
        assert sorted(cache_set.resident_tags()) == [4, 9]

    def test_iter_valid_lines(self):
        cache_set = make_set()
        cache_set.fill(1, False, None, 0, addr)
        assert len(list(iter_valid_lines(cache_set))) == 1


class TestConstruction:
    def test_policy_way_mismatch(self):
        with pytest.raises(ConfigurationError):
            CacheSet(4, TrueLRU(8, random.Random(0)))

    def test_zero_ways(self):
        with pytest.raises(ConfigurationError):
            CacheSet(0, TrueLRU(1, random.Random(0)))
