"""Property-based invariants that every replacement policy must satisfy."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replacement import available_policies, make_policy_factory

WAYS = 8

#: A random exercise script: True = fill victim, int = hit that way.
operations = st.lists(
    st.one_of(st.just("fill"), st.integers(min_value=0, max_value=WAYS - 1)),
    max_size=60,
)


def exercise(policy, ops):
    """Apply an operation script, returning every victim chosen."""
    victims = []
    for op in ops:
        if op == "fill":
            way = policy.victim()
            victims.append(way)
            policy.on_fill(way)
        else:
            policy.on_hit(op)
    return victims


@pytest.mark.parametrize("name", available_policies())
class TestUniversalInvariants:
    @given(ops=operations, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_victims_always_in_range(self, name, ops, seed):
        policy = make_policy_factory(name)(WAYS, random.Random(seed))
        for way in exercise(policy, ops):
            assert 0 <= way < WAYS

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_randomize_state_keeps_victims_valid(self, name, seed):
        policy = make_policy_factory(name)(WAYS, random.Random(seed))
        policy.randomize_state()
        for _ in range(WAYS * 2):
            way = policy.victim()
            assert 0 <= way < WAYS
            policy.on_fill(way)

    @given(ops=operations)
    @settings(max_examples=20, deadline=None)
    def test_deterministic_given_seed(self, name, ops):
        first = make_policy_factory(name)(WAYS, random.Random(99))
        second = make_policy_factory(name)(WAYS, random.Random(99))
        assert exercise(first, ops) == exercise(second, ops)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_sustained_fills_eventually_cover_every_way(self, name, seed):
        # Liveness: no way is starved forever under pure miss traffic.
        policy = make_policy_factory(name)(WAYS, random.Random(seed))
        victims = set()
        for _ in range(WAYS * 64):
            way = policy.victim()
            victims.add(way)
            policy.on_fill(way)
            if len(victims) == WAYS:
                break
        assert victims == set(range(WAYS))


@pytest.mark.parametrize("name", ["lru", "tree-plru", "bit-plru", "nru"])
class TestRecencyRespectingPolicies:
    @given(
        protected=st.integers(min_value=0, max_value=WAYS - 1),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_never_evicts_the_just_touched_way(self, name, protected, seed):
        policy = make_policy_factory(name)(WAYS, random.Random(seed))
        policy.randomize_state()
        policy.on_hit(protected)
        assert policy.victim() != protected
