"""Deterministic RNG plumbing."""

import random

from repro.common.rng import derive_rng, ensure_rng, maybe_seeded


class TestEnsureRng:
    def test_passes_through_random_instances(self):
        generator = random.Random(3)
        assert ensure_rng(generator) is generator

    def test_none_is_deterministic_default(self):
        assert ensure_rng(None).random() == ensure_rng(None).random()

    def test_int_seeds(self):
        assert ensure_rng(42).random() == random.Random(42).random()

    def test_distinct_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()


class TestDeriveRng:
    def test_deterministic_per_label(self):
        a = derive_rng(random.Random(9), "sender")
        b = derive_rng(random.Random(9), "sender")
        assert a.random() == b.random()

    def test_labels_give_independent_streams(self):
        parent = random.Random(9)
        a = derive_rng(parent, "sender")
        parent = random.Random(9)
        b = derive_rng(parent, "receiver")
        assert a.random() != b.random()

    def test_derivation_consumes_parent_state(self):
        parent = random.Random(9)
        derive_rng(parent, "x")
        after_one = parent.random()
        parent = random.Random(9)
        derive_rng(parent, "x")
        derive_rng(parent, "y")
        after_two = parent.random()
        assert after_one != after_two


class TestMaybeSeeded:
    def test_seeded_reproducible(self):
        assert maybe_seeded(5).random() == maybe_seeded(5).random()

    def test_unseeded_returns_generator(self):
        assert isinstance(maybe_seeded(None), random.Random)
