"""WB sender/receiver program internals (below the protocol level)."""

import random

import pytest

from repro.channels.testbench import ChannelTestbench
from repro.channels.testbench import TestbenchConfig as BenchConfig
from repro.channels.wb.receiver import WBReceiverProgram
from repro.channels.wb.sender import WBSenderProgram
from repro.common.errors import ConfigurationError
from repro.cpu.noise import SchedulerNoise
from repro.mem.pointer_chase import PointerChaseList
from repro.mem.sets import build_replacement_set, build_set_conflicting_lines


def make_bench():
    return ChannelTestbench(
        BenchConfig(seed=0, scheduler_noise=SchedulerNoise.disabled())
    )


class TestSenderValidation:
    def test_needs_enough_lines(self):
        with pytest.raises(ConfigurationError):
            WBSenderProgram(lines=[0x0], schedule=[2], period=1000, start_time=0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigurationError):
            WBSenderProgram(lines=[0x0], schedule=[-1], period=1000, start_time=0)

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            WBSenderProgram(lines=[0x0], schedule=[1], period=0, start_time=0)


class TestSenderBehaviour:
    def test_dirty_lines_match_schedule(self):
        bench = make_bench()
        space = bench.new_space(pid=0)
        layout = bench.l1_layout
        lines = build_set_conflicting_lines(space, layout, 9, 8)
        sender = WBSenderProgram(
            lines=lines, schedule=[5], period=4000, start_time=1000
        )
        bench.add_thread(0, space, sender, name="s")
        bench.run()
        assert bench.hierarchy.dirty_in_l1_set(9) == 5

    def test_zero_schedule_touches_nothing_dirty(self):
        bench = make_bench()
        space = bench.new_space(pid=0)
        lines = build_set_conflicting_lines(space, bench.l1_layout, 9, 1)
        sender = WBSenderProgram(
            lines=lines, schedule=[0, 0], period=2000, start_time=1000
        )
        bench.add_thread(0, space, sender, name="s")
        bench.run()
        assert bench.hierarchy.dirty_in_l1_set(9) == 0

    def test_paces_one_symbol_per_period(self):
        bench = make_bench()
        space = bench.new_space(pid=0)
        lines = build_set_conflicting_lines(space, bench.l1_layout, 9, 1)
        sender = WBSenderProgram(
            lines=lines, schedule=[1] * 10, period=3000, start_time=1000
        )
        thread = bench.add_thread(0, space, sender, name="s")
        bench.run()
        assert thread.local_time >= 1000 + 10 * 3000


def make_chases(bench):
    space = bench.new_space(pid=1)
    rng = random.Random(0)
    a = PointerChaseList.from_lines(
        build_replacement_set(space, bench.l1_layout, 9, 10, rng), rng=rng
    )
    b = PointerChaseList.from_lines(
        build_replacement_set(space, bench.l1_layout, 9, 10, rng), rng=rng
    )
    return space, a, b


class TestReceiverValidation:
    def test_rejects_overlapping_sets(self):
        bench = make_bench()
        _, a, _ = make_chases(bench)
        with pytest.raises(ConfigurationError):
            WBReceiverProgram(
                chase_a=a, chase_b=a, period=1000, start_time=0, num_samples=1
            )

    def test_rejects_bad_phase(self):
        bench = make_bench()
        _, a, b = make_chases(bench)
        with pytest.raises(ConfigurationError):
            WBReceiverProgram(
                chase_a=a, chase_b=b, period=1000, start_time=0,
                num_samples=1, phase=1.5,
            )

    def test_rejects_zero_samples(self):
        bench = make_bench()
        _, a, b = make_chases(bench)
        with pytest.raises(ConfigurationError):
            WBReceiverProgram(
                chase_a=a, chase_b=b, period=1000, start_time=0, num_samples=0
            )


class TestReceiverBehaviour:
    def test_collects_requested_samples(self):
        bench = make_bench()
        space, a, b = make_chases(bench)
        receiver = WBReceiverProgram(
            chase_a=a, chase_b=b, period=2000, start_time=1000,
            num_samples=6, phase=0.5,
        )
        bench.add_thread(1, space, receiver, name="r")
        bench.run()
        assert len(receiver.samples) == 6
        assert len(receiver.latencies()) == 6

    def test_decode_reinitialises_target_set(self):
        # After any measurement the target set holds only clean lines —
        # the "decoding doubles as initialisation" property of Algorithm 2.
        bench = make_bench()
        space, a, b = make_chases(bench)
        receiver = WBReceiverProgram(
            chase_a=a, chase_b=b, period=2000, start_time=1000,
            num_samples=3, phase=0.5,
        )
        bench.add_thread(1, space, receiver, name="r")
        bench.run()
        assert bench.hierarchy.dirty_in_l1_set(9) == 0

    def test_sample_timestamps_monotone(self):
        bench = make_bench()
        space, a, b = make_chases(bench)
        receiver = WBReceiverProgram(
            chase_a=a, chase_b=b, period=2000, start_time=1000,
            num_samples=5, phase=0.5,
        )
        bench.add_thread(1, space, receiver, name="r")
        bench.run()
        times = [t for t, _ in receiver.samples]
        assert times == sorted(times)
        # Samples are one period apart (up to spin/TSC granularity).
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(1800 <= gap <= 2300 for gap in gaps)
