"""Cross-cutting integration scenarios beyond single-module behaviour."""

import pytest

from repro.channels.encoding import BinaryDirtyCodec, MultiBitDirtyCodec
from repro.channels.results import TransmissionResult
from repro.channels.wb import WBChannelConfig, run_wb_channel
from repro.common.units import cycles_to_kbps
from repro.cpu.noise import SchedulerNoise

QUIET = dict(
    message_bits=64,
    scheduler_noise=SchedulerNoise.disabled(),
    receiver_phase=0.5,
)


class TestChannelAcrossTargetSets:
    @pytest.mark.parametrize("target_set", [0, 21, 63])
    def test_any_set_works(self, target_set):
        result = run_wb_channel(
            WBChannelConfig(seed=4, target_set=target_set, **QUIET)
        )
        assert result.bit_error_rate < 0.1

    def test_random_set_selection(self):
        result = run_wb_channel(WBChannelConfig(seed=4, target_set=None, **QUIET))
        assert result.bit_error_rate < 0.1


class TestChannelAcrossPolicies:
    @pytest.mark.parametrize(
        "policy", ["lru", "tree-plru", "e5-2650", "bit-plru", "nru", "srrip"]
    )
    def test_wb_channel_survives_policy_change(self, policy):
        # The channel keys on line *state*, not replacement metadata, so
        # it should work on every deterministic policy with L=10.
        result = run_wb_channel(
            WBChannelConfig(
                codec=BinaryDirtyCodec(d_on=3),
                seed=5,
                hierarchy_overrides={"l1_policy": policy},
                **QUIET,
            )
        )
        assert result.bit_error_rate < 0.1, policy

    def test_wb_channel_on_random_policy_with_big_d(self):
        result = run_wb_channel(
            WBChannelConfig(
                codec=BinaryDirtyCodec(d_on=8),
                replacement_set_size=12,
                seed=5,
                hierarchy_overrides={"l1_policy": "random"},
                **QUIET,
            )
        )
        assert result.bit_error_rate < 0.15


class TestVIPTProperty:
    def test_sender_receiver_collide_without_shared_memory(self):
        """The threat model's core enabler, end to end.

        Distinct processes (disjoint physical frames) still contend in
        the same L1 set because the VIPT index bits lie inside the page
        offset — without that, no contention, no channel.
        """
        result = run_wb_channel(WBChannelConfig(seed=6, **QUIET))
        # Transmission succeeded => cross-process set contention worked.
        assert result.bit_error_rate < 0.1
        # And the processes really share no physical lines:
        sender_pages = set()
        receiver_pages = set()
        # (page tables are private state; assert via distinct perf counts)
        assert result.sender_perf.l1_accesses != result.receiver_perf.l1_accesses
        del sender_pages, receiver_pages


class TestRateAccounting:
    @pytest.mark.parametrize("period", [800, 1600, 5500])
    def test_elapsed_time_matches_symbol_pacing(self, period):
        result = run_wb_channel(WBChannelConfig(seed=7, period_cycles=period, **QUIET))
        symbols = len(result.sent_bits)
        # The run must take at least symbols * period cycles.
        assert result.elapsed_cycles >= symbols * period

    def test_multibit_doubles_rate(self):
        binary = WBChannelConfig(period_cycles=2000)
        multibit = WBChannelConfig(codec=MultiBitDirtyCodec(), period_cycles=2000)
        assert multibit.rate_kbps == pytest.approx(2 * binary.rate_kbps)
        assert multibit.rate_kbps == pytest.approx(cycles_to_kbps(2000, 2))


class TestTransmissionResult:
    def test_str(self):
        result = TransmissionResult(
            channel="X",
            sent_bits=(1, 0),
            received_bits=(1, 0),
            bit_error_rate=0.0,
            errors=0,
            rate_kbps=100.0,
            period_cycles=1000,
            sender_perf=None,
            receiver_perf=None,
            elapsed_cycles=1.0,
        )
        assert "X @ 100 Kbps" in str(result)
