"""Analysis: edit distance, BER evaluation, CDFs, detection."""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    BitErrorReport,
    align_by_preamble,
    bit_error_rate,
    compare_miss_profiles,
    edit_distance,
    edit_distance_alignment,
    empirical_cdf,
    evaluate_transmission,
    histogram,
    summarize_latencies,
)
from repro.analysis.cdf import cdf_at
from repro.common.errors import ConfigurationError, ProtocolError
from repro.telemetry import CacheEvent, EventKind, WindowedCounters

bit_lists = st.lists(st.integers(min_value=0, max_value=1), max_size=32)


class TestEditDistance:
    def test_known_cases(self):
        assert edit_distance([1, 0, 1], [1, 1, 1]) == 1  # flip
        assert edit_distance([1, 0, 1], [1, 0]) == 1  # loss
        assert edit_distance([1, 0], [1, 0, 1]) == 1  # insertion
        assert edit_distance([], [1, 1]) == 2

    @given(bit_lists)
    def test_identity(self, bits):
        assert edit_distance(bits, bits) == 0

    @given(bit_lists, bit_lists)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(bit_lists, bit_lists, bit_lists)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(bit_lists, bit_lists)
    def test_bounded_by_longer_length(self, a, b):
        assert edit_distance(a, b) <= max(len(a), len(b))


class TestEditDistanceAlignment:
    def test_script_length_consistency(self):
        distance, script = edit_distance_alignment([1, 0, 1, 1], [1, 1, 1])
        non_match = [entry for entry in script if entry[0] != "match"]
        assert len(non_match) == distance

    def test_pure_match(self):
        distance, script = edit_distance_alignment([1, 0], [1, 0])
        assert distance == 0
        assert all(op == "match" for op, _, _ in script)

    @given(bit_lists, bit_lists)
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_plain_distance(self, a, b):
        distance, _ = edit_distance_alignment(a, b)
        assert distance == edit_distance(a, b)


class TestBitErrorRate:
    def test_perfect(self):
        assert bit_error_rate([1, 0, 1], [1, 0, 1]) == 0.0

    def test_one_flip(self):
        assert bit_error_rate([1, 0, 1, 0], [1, 1, 1, 0]) == 0.25

    def test_rejects_empty_sent(self):
        with pytest.raises(ProtocolError):
            bit_error_rate([], [1])


class TestPreambleAlignment:
    def test_finds_shifted_preamble(self):
        preamble = [1, 0, 1, 0]
        received = [0, 0] + preamble + [1, 1, 1]
        assert align_by_preamble(received, preamble, max_offset=4) == 2

    def test_prefers_smallest_offset_on_tie(self):
        assert align_by_preamble([1, 1, 1, 1], [1, 1], max_offset=2) == 0

    def test_rejects_empty_preamble(self):
        with pytest.raises(ProtocolError):
            align_by_preamble([1], [], 1)

    def test_rejects_negative_offset(self):
        with pytest.raises(ProtocolError):
            align_by_preamble([1], [1], -1)


class TestEvaluateTransmission:
    def test_error_free(self):
        sent = [1, 0] * 8 + [1, 1, 0, 0]
        report = evaluate_transmission(sent, sent + [0, 1], 16, alignment_slack=2)
        assert report.ber == 0.0
        assert isinstance(report, BitErrorReport)

    def test_absorbs_leading_garbage(self):
        sent = [1, 0] * 8 + [1, 1, 0, 1]
        received = [0, 0, 0] + sent
        report = evaluate_transmission(sent, received, 16, alignment_slack=4)
        assert report.offset == 3
        assert report.ber == 0.0

    def test_rejects_preamble_longer_than_message(self):
        with pytest.raises(ProtocolError):
            evaluate_transmission([1, 0], [1, 0], 5)

    def test_str_mentions_ber(self):
        report = evaluate_transmission([1, 0], [1, 0], 0)
        assert "BER" in str(report)


class TestCdf:
    def test_empirical_cdf_monotone(self):
        points = empirical_cdf([3.0, 1.0, 2.0, 2.0])
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_duplicates_collapse(self):
        points = empirical_cdf([1.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(2 / 3)), (2.0, 1.0)]

    def test_cdf_at(self):
        assert cdf_at([1.0, 2.0, 3.0, 4.0], 2.5) == 0.5

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            empirical_cdf([])

    def test_histogram(self):
        counts = histogram([1.0, 1.5, 2.0], bin_width=1.0)
        assert counts == {1.0: 2, 2.0: 1}

    def test_histogram_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            histogram([1.0], bin_width=0)

    def test_summary(self):
        summary = summarize_latencies([10.0, 20.0, 30.0, 40.0])
        assert summary.minimum == 10.0
        assert summary.maximum == 40.0
        assert summary.median == 25.0
        assert summary.count == 4
        assert "med" in str(summary)


def _counters_with_miss_rates(rates):
    """WindowedCounters whose per-level miss profile equals ``rates``.

    ``rates`` maps 1-based level -> miss rate in steps of 1/10 (each level
    gets 10 accesses: ``10 * rate`` misses, the rest hits).
    """
    counters = WindowedCounters(window=64)
    time = 0
    for level, rate in rates.items():
        misses = round(rate * 10)
        for index in range(10):
            kind = EventKind.MISS if index < misses else EventKind.HIT
            counters.on_event(
                CacheEvent(time, kind, level, 0, 0, 0x1000 + 64 * time, False, False)
            )
            time += 1
    counters.finish()
    return counters


class TestDetection:
    def test_identical_profiles_benign(self):
        profile = _counters_with_miss_rates({1: 0.0, 2: 0.3, 3: 0.3})
        report = compare_miss_profiles(profile, profile)
        assert not report.distinguishable

    def test_large_delta_flags(self):
        suspect = _counters_with_miss_rates({1: 0.5, 2: 0.3, 3: 0.3})
        baseline = _counters_with_miss_rates({1: 0.0, 2: 0.3, 3: 0.3})
        report = compare_miss_profiles(suspect, baseline)
        assert report.distinguishable
        assert "DISTINGUISHABLE" in str(report)

    def test_windowed_counters_accepted_without_warning(self):
        suspect = _counters_with_miss_rates({1: 0.5, 2: 0.3, 3: 0.3})
        baseline = _counters_with_miss_rates({1: 0.0, 2: 0.3, 3: 0.3})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = compare_miss_profiles(suspect, baseline)
        assert report.distinguishable
        assert report.per_level_delta["L1D"] == pytest.approx(0.5)
        assert report.per_level_delta["L2"] == pytest.approx(0.0)

    def test_counters_respect_owner_selection(self):
        counters = WindowedCounters(window=64)
        # Owner 0 misses everything; owner 1 hits everything.
        for time in range(10):
            counters.on_event(
                CacheEvent(time, EventKind.MISS, 1, 0, 0, 64 * time, False, False)
            )
            counters.on_event(
                CacheEvent(time, EventKind.HIT, 1, 0, 1, 64 * time, False, False)
            )
        counters.finish()
        report = compare_miss_profiles(
            counters, counters, owner=0, level_names=("L1D",)
        )
        assert not report.distinguishable  # same counters either side
        assert counters.miss_profile(("L1D",), owner=0)["L1D"] == 1.0
        assert counters.miss_profile(("L1D",), owner=1)["L1D"] == 0.0

    def test_empty_profile_rejected(self):
        counters = _counters_with_miss_rates({1: 0.1})
        with pytest.raises(ConfigurationError):
            compare_miss_profiles(counters, counters, level_names=())

    def test_bad_threshold_rejected(self):
        counters = _counters_with_miss_rates({1: 0.1})
        with pytest.raises(ConfigurationError):
            compare_miss_profiles(counters, counters, threshold=2.0)

    def test_mapping_path_removed_with_helpful_error(self):
        # The deprecated plain-mapping path is a tombstone now: the
        # TypeError must name the WindowedCounters replacement.
        with pytest.raises(TypeError, match="WindowedCounters"):
            compare_miss_profiles(
                {"L1D": 0.1, "L2": 0.1, "LLC": 0.1},
                {"L1D": 0.1, "L2": 0.1, "LLC": 0.1},
            )
