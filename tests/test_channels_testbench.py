"""ChannelTestbench assembly and shared-buffer mapping."""

import random

import pytest

from repro.cache.configs import make_tiny_hierarchy
from repro.channels.testbench import ChannelTestbench, share_buffer
from repro.channels.testbench import TestbenchConfig as BenchConfig
from repro.common.errors import ConfigurationError
from repro.cpu.ops import Load
from repro.cpu.thread import as_program


class TestSpaces:
    def test_new_space_unique_pid(self):
        bench = ChannelTestbench()
        bench.new_space(pid=1)
        with pytest.raises(ConfigurationError):
            bench.new_space(pid=1)

    def test_space_lookup(self):
        bench = ChannelTestbench()
        space = bench.new_space(pid=3)
        assert bench.space(3) is space
        with pytest.raises(ConfigurationError):
            bench.space(4)

    def test_spaces_share_one_allocator(self):
        bench = ChannelTestbench()
        first = bench.new_space(pid=1)
        second = bench.new_space(pid=2)
        assert first.translate(0x1000) != second.translate(0x1000)


class TestTargetSet:
    def test_validates_requested_set(self):
        bench = ChannelTestbench()
        assert bench.pick_target_set(21) == 21
        with pytest.raises(ConfigurationError):
            bench.pick_target_set(64)

    def test_random_choice_in_range(self):
        bench = ChannelTestbench(BenchConfig(seed=5))
        chosen = bench.pick_target_set(None)
        assert 0 <= chosen < bench.l1_layout.num_sets


class TestHierarchySelection:
    def test_default_is_xeon(self):
        bench = ChannelTestbench()
        assert bench.hierarchy.l1.num_sets == 64

    def test_explicit_hierarchy_wins(self):
        tiny = make_tiny_hierarchy(rng=random.Random(0))
        bench = ChannelTestbench(hierarchy=tiny)
        assert bench.hierarchy is tiny

    def test_factory_used_when_configured(self):
        calls = []

        def factory(rng):
            calls.append(rng)
            return make_tiny_hierarchy(rng=rng)

        bench = ChannelTestbench(BenchConfig(hierarchy_factory=factory))
        assert calls
        assert bench.hierarchy.l1.num_sets == 4

    def test_overrides_applied(self):
        bench = ChannelTestbench(
            BenchConfig(hierarchy_overrides={"l1_policy": "fifo"})
        )
        assert type(bench.hierarchy.l1.sets[0].policy).__name__ == "FIFO"


class TestRun:
    def test_requires_threads(self):
        bench = ChannelTestbench()
        with pytest.raises(ConfigurationError):
            bench.run()

    def test_runs_registered_threads(self):
        bench = ChannelTestbench()
        space = bench.new_space(pid=0)
        done = []

        def program():
            yield Load(0x1000)
            done.append(True)

        bench.add_thread(0, space, as_program(program), name="p")
        core = bench.run()
        assert done
        assert core.elapsed_cycles() > 0


class TestShareBuffer:
    def test_pages_alias(self):
        bench = ChannelTestbench()
        first = bench.new_space(pid=1)
        second = bench.new_space(pid=2)
        base = first.allocate_buffer(8192)
        share_buffer(first, second, base, 8192)
        assert first.translate(base) == second.translate(base)
        assert first.translate(base + 4096) == second.translate(base + 4096)

    def test_non_shared_pages_stay_private(self):
        bench = ChannelTestbench()
        first = bench.new_space(pid=1)
        second = bench.new_space(pid=2)
        base = first.allocate_buffer(4096)
        share_buffer(first, second, base, 4096)
        assert first.translate(base + 4096) != second.translate(base + 4096)

    def test_size_validated(self):
        bench = ChannelTestbench()
        first = bench.new_space(pid=1)
        second = bench.new_space(pid=2)
        with pytest.raises(ConfigurationError):
            share_buffer(first, second, 0, 0)
